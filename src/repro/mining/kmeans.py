"""k-means clustering with k-means++ seeding (numpy, numeric features)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MiningError, NotFittedError


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation.

    Rows are dicts; ``features`` must be numeric and non-null (impute or
    drop first — clustering on silently-imputed values hides structure,
    so this class refuses nulls instead).
    """

    def __init__(self, k: int, max_iterations: int = 100, seed: int = 0,
                 tolerance: float = 1e-6):
        if k < 1:
            raise MiningError("k must be >= 1")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.tolerance = tolerance
        self._fitted = False

    def _matrix(self, rows: Sequence[dict], features: Sequence[str]) -> np.ndarray:
        matrix = np.zeros((len(rows), len(features)))
        for i, row in enumerate(rows):
            for j, feature in enumerate(features):
                value = row.get(feature)
                if value is None:
                    raise MiningError(
                        f"row {i} has null {feature!r}; impute before clustering"
                    )
                matrix[i, j] = float(value)
        return matrix

    def fit(self, rows: Sequence[dict], features: Sequence[str]) -> "KMeans":
        """Cluster rows; centroids are in standardised feature space."""
        if len(rows) < self.k:
            raise MiningError(f"cannot make {self.k} clusters from {len(rows)} rows")
        if not features:
            raise MiningError("no features supplied")
        self.features = list(features)
        X = self._matrix(rows, self.features)
        self._means = X.mean(axis=0)
        stds = X.std(axis=0)
        self._stds = np.where(stds < 1e-12, 1.0, stds)
        Z = (X - self._means) / self._stds

        rng = np.random.default_rng(self.seed)
        centroids = self._kmeanspp(Z, rng)
        for __ in range(self.max_iterations):
            distances = ((Z[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for c in range(self.k):
                members = Z[labels == c]
                if len(members):
                    new_centroids[c] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < self.tolerance:
                break
        self.centroids = centroids
        self.labels = labels.tolist()
        self.inertia = float(
            ((Z - centroids[labels]) ** 2).sum()
        )
        self._fitted = True
        return self

    def _kmeanspp(self, Z: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = len(Z)
        centroids = [Z[rng.integers(n)]]
        for __ in range(1, self.k):
            d2 = np.min(
                ((Z[:, None, :] - np.array(centroids)[None, :, :]) ** 2).sum(axis=2),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centroids.append(Z[rng.integers(n)])
                continue
            probs = d2 / total
            centroids.append(Z[rng.choice(n, p=probs)])
        return np.array(centroids)

    def predict(self, row: dict) -> int:
        """Cluster index of one row."""
        if not self._fitted:
            raise NotFittedError("KMeans used before fit()")
        x = self._matrix([row], self.features)[0]
        z = (x - self._means) / self._stds
        distances = ((self.centroids - z) ** 2).sum(axis=1)
        return int(distances.argmin())

    def cluster_sizes(self) -> dict[int, int]:
        """Cluster index → member count from the fit."""
        if not self._fitted:
            raise NotFittedError("KMeans used before fit()")
        sizes: dict[int, int] = {}
        for label in self.labels:
            sizes[label] = sizes.get(label, 0) + 1
        return sizes

    def centroid_profiles(self) -> list[dict[str, float]]:
        """Centroids mapped back to original feature units."""
        if not self._fitted:
            raise NotFittedError("KMeans used before fit()")
        raw = self.centroids * self._stds + self._means
        return [dict(zip(self.features, centroid.tolist())) for centroid in raw]
