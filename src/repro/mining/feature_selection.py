"""Feature selection: filter scores and the wrapper-filter hybrid.

The paper's reference [21] (Huda, Jelinek, Ray, Stranieri & Yearwood,
ISSNIP 2010) identifies cardiovascular-autonomic-neuropathy features with a
hybrid of wrapper and filter selection.  :func:`wrapper_filter_select`
follows that scheme: a cheap filter (information gain or chi-square) ranks
candidates, then a greedy forward wrapper evaluates the top candidates with
cross-validated accuracy of an actual classifier.  This powers the
Ewing-battery substitution experiment (bench X2).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Sequence

from repro.errors import MiningError
from repro.mining.metrics import entropy
from repro.mining.validation import cross_validate


def _discretize_if_numeric(values: list[object], bins: int = 4) -> list[object]:
    present = [v for v in values if v is not None]
    numeric = present and all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in present
    )
    if not numeric:
        return values
    low, high = float(min(present)), float(max(present))
    if low == high:
        return ["all" if v is not None else None for v in values]
    width = (high - low) / bins
    out: list[object] = []
    for v in values:
        if v is None:
            out.append(None)
        else:
            index = min(int((float(v) - low) / width), bins - 1)
            out.append(f"bin{index}")
    return out


def information_gain_scores(
    rows: Sequence[dict], target: str, features: Sequence[str]
) -> dict[str, float]:
    """Information gain of each feature about the target.

    Numeric features are equal-width binned first; nulls form no bin and
    are excluded from that feature's gain computation.
    """
    labelled = [row for row in rows if row.get(target) is not None]
    if not labelled:
        raise MiningError(f"no rows carry a {target!r} label")
    scores: dict[str, float] = {}
    for feature in features:
        values = _discretize_if_numeric([row.get(feature) for row in labelled])
        pairs = [
            (value, str(row[target]))
            for value, row in zip(values, labelled)
            if value is not None
        ]
        if not pairs:
            scores[feature] = 0.0
            continue
        labels = [label for __, label in pairs]
        base = entropy(labels)
        groups: dict[object, list[str]] = {}
        for value, label in pairs:
            groups.setdefault(value, []).append(label)
        conditional = sum(
            len(members) / len(pairs) * entropy(members)
            for members in groups.values()
        )
        scores[feature] = base - conditional
    return scores


def chi2_scores(
    rows: Sequence[dict], target: str, features: Sequence[str]
) -> dict[str, float]:
    """Chi-square statistic of each (binned) feature against the target."""
    labelled = [row for row in rows if row.get(target) is not None]
    if not labelled:
        raise MiningError(f"no rows carry a {target!r} label")
    scores: dict[str, float] = {}
    for feature in features:
        values = _discretize_if_numeric([row.get(feature) for row in labelled])
        pairs = [
            (value, str(row[target]))
            for value, row in zip(values, labelled)
            if value is not None
        ]
        if not pairs:
            scores[feature] = 0.0
            continue
        n = len(pairs)
        value_totals = Counter(v for v, __ in pairs)
        class_totals = Counter(c for __, c in pairs)
        observed = Counter(pairs)
        chi = 0.0
        for value in value_totals:
            for cls in class_totals:
                expected = value_totals[value] * class_totals[cls] / n
                if expected > 0:
                    chi += (observed.get((value, cls), 0) - expected) ** 2 / expected
        scores[feature] = chi
    return scores


def wrapper_filter_select(
    rows: Sequence[dict],
    target: str,
    candidates: Sequence[str],
    model_factory: Callable[[], object],
    max_features: int = 5,
    filter_top: int = 12,
    filter_scores: Callable[..., dict[str, float]] = information_gain_scores,
    k: int = 3,
    seed: int = 0,
    min_improvement: float = 1e-4,
) -> tuple[list[str], list[tuple[str, float]]]:
    """Hybrid wrapper-filter forward selection.

    1. *Filter*: rank ``candidates`` with ``filter_scores`` and keep the
       ``filter_top`` best (cheap; prunes the 273-attribute space).
    2. *Wrapper*: greedily add the feature whose inclusion most improves
       ``k``-fold CV accuracy of ``model_factory()``, stopping at
       ``max_features`` or when no addition improves by
       ``min_improvement``.

    Returns (selected features, trace of (feature, cv-accuracy) steps).
    """
    if not candidates:
        raise MiningError("no candidate features supplied")
    ranked = sorted(
        filter_scores(rows, target, candidates).items(),
        key=lambda pair: (-pair[1], pair[0]),
    )
    shortlist = [feature for feature, __ in ranked[:filter_top]]

    selected: list[str] = []
    trace: list[tuple[str, float]] = []
    best_score = -1.0
    while len(selected) < max_features:
        best_feature, best_candidate_score = None, best_score
        for feature in shortlist:
            if feature in selected:
                continue
            trial = selected + [feature]
            result = cross_validate(
                model_factory, rows, target, trial, k=k, seed=seed
            )
            score = result["mean_accuracy"]
            if score > best_candidate_score + min_improvement or (
                best_feature is None and not selected and score > best_candidate_score
            ):
                best_candidate_score = score
                best_feature = feature
        if best_feature is None:
            break
        selected.append(best_feature)
        best_score = best_candidate_score
        trace.append((best_feature, best_score))
    if not selected:
        # Guarantee at least the filter winner so callers always get a model.
        selected = shortlist[:1]
        result = cross_validate(model_factory, rows, target, selected, k=k, seed=seed)
        trace.append((selected[0], result["mean_accuracy"]))
    return selected, trace


def correlation_with(
    rows: Sequence[dict], feature_a: str, feature_b: str
) -> float:
    """Pearson correlation between two numeric features (pairwise complete)."""
    pairs = [
        (float(row[feature_a]), float(row[feature_b]))
        for row in rows
        if row.get(feature_a) is not None and row.get(feature_b) is not None
    ]
    if len(pairs) < 2:
        return 0.0
    xs = [a for a, __ in pairs]
    ys = [b for __, b in pairs]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
