"""Classification metrics and impurity measures."""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.errors import MiningError


def entropy(labels: Sequence[object]) -> float:
    """Shannon entropy (bits) of a label sequence."""
    n = len(labels)
    if n == 0:
        return 0.0
    counts = Counter(labels)
    return -sum((c / n) * math.log2(c / n) for c in counts.values())


def gini(labels: Sequence[object]) -> float:
    """Gini impurity of a label sequence."""
    n = len(labels)
    if n == 0:
        return 0.0
    counts = Counter(labels)
    return 1.0 - sum((c / n) ** 2 for c in counts.values())


class ConfusionMatrix:
    """Actual × predicted counts with per-class derived metrics."""

    def __init__(self, actual: Sequence[object], predicted: Sequence[object]):
        if len(actual) != len(predicted):
            raise MiningError(
                f"{len(actual)} actual labels vs {len(predicted)} predictions"
            )
        if not actual:
            raise MiningError("cannot build a confusion matrix from no labels")
        self.classes = sorted({str(a) for a in actual} | {str(p) for p in predicted})
        self._counts: dict[tuple[str, str], int] = {}
        for a, p in zip(actual, predicted):
            key = (str(a), str(p))
            self._counts[key] = self._counts.get(key, 0) + 1
        self.total = len(actual)

    def count(self, actual: object, predicted: object) -> int:
        """Cell count for (actual, predicted)."""
        return self._counts.get((str(actual), str(predicted)), 0)

    def accuracy(self) -> float:
        """Fraction predicted correctly."""
        correct = sum(self.count(c, c) for c in self.classes)
        return correct / self.total

    def precision(self, cls: object) -> float:
        """TP / (TP + FP) for one class (0 when never predicted)."""
        cls = str(cls)
        predicted_cls = sum(self.count(a, cls) for a in self.classes)
        if predicted_cls == 0:
            return 0.0
        return self.count(cls, cls) / predicted_cls

    def recall(self, cls: object) -> float:
        """TP / (TP + FN) for one class (0 when class absent)."""
        cls = str(cls)
        actual_cls = sum(self.count(cls, p) for p in self.classes)
        if actual_cls == 0:
            return 0.0
        return self.count(cls, cls) / actual_cls

    def f1(self, cls: object) -> float:
        """Harmonic mean of precision and recall for one class."""
        p = self.precision(cls)
        r = self.recall(cls)
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def macro_f1(self) -> float:
        """Unweighted mean F1 across classes."""
        return sum(self.f1(c) for c in self.classes) / len(self.classes)

    def to_text(self) -> str:
        """Render the matrix (rows = actual, columns = predicted)."""
        width = max(len(c) for c in self.classes)
        width = max(width, 6)
        header = "actual\\pred".ljust(width + 2) + " ".join(
            c.rjust(width) for c in self.classes
        )
        lines = [header]
        for a in self.classes:
            cells = " ".join(str(self.count(a, p)).rjust(width) for p in self.classes)
            lines.append(a.ljust(width + 2) + cells)
        return "\n".join(lines)


def accuracy(actual: Sequence[object], predicted: Sequence[object]) -> float:
    """Convenience wrapper over :class:`ConfusionMatrix`."""
    return ConfusionMatrix(actual, predicted).accuracy()


def precision(actual: Sequence[object], predicted: Sequence[object], cls: object) -> float:
    """Precision of one class."""
    return ConfusionMatrix(actual, predicted).precision(cls)


def recall(actual: Sequence[object], predicted: Sequence[object], cls: object) -> float:
    """Recall of one class."""
    return ConfusionMatrix(actual, predicted).recall(cls)


def f1_score(actual: Sequence[object], predicted: Sequence[object], cls: object) -> float:
    """F1 of one class."""
    return ConfusionMatrix(actual, predicted).f1(cls)
