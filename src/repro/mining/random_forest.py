"""Random forest: bagged decision trees with feature subsampling.

An ensemble extension over :class:`~repro.mining.decision_tree
.DecisionTreeClassifier` — each tree trains on a bootstrap sample and a
random feature subset; prediction is the majority vote, and
``predict_proba`` the vote share.  Out-of-bag accuracy comes free from
the bootstrap and is reported by :meth:`oob_accuracy`.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Sequence

from repro.errors import MiningError, NotFittedError
from repro.mining.decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees."""

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 8,
        min_samples_split: int = 4,
        feature_fraction: float | None = None,
        seed: int = 0,
    ):
        if n_trees < 1:
            raise MiningError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        #: None = sqrt(d) features per tree (the usual default)
        self.feature_fraction = feature_fraction
        self.seed = seed
        self._fitted = False

    def fit(
        self, rows: Sequence[dict], target: str, features: Sequence[str]
    ) -> "RandomForestClassifier":
        """Train the ensemble; records out-of-bag votes along the way."""
        if not rows:
            raise MiningError("cannot fit on an empty dataset")
        if not features:
            raise MiningError("no features supplied")
        labelled = [row for row in rows if row.get(target) is not None]
        if not labelled:
            raise MiningError(f"no rows carry a {target!r} label")
        self.target = target
        self.features = list(features)
        self.classes = sorted({str(row[target]) for row in labelled})

        rng = random.Random(self.seed)
        n = len(labelled)
        if self.feature_fraction is None:
            per_tree = max(1, round(math.sqrt(len(self.features))))
        else:
            if not 0 < self.feature_fraction <= 1:
                raise MiningError("feature_fraction must be in (0, 1]")
            per_tree = max(1, round(self.feature_fraction * len(self.features)))

        self._trees: list[tuple[DecisionTreeClassifier, list[str]]] = []
        oob_votes: dict[int, Counter] = {}
        for __ in range(self.n_trees):
            sample_indices = [rng.randrange(n) for __ in range(n)]
            in_bag = set(sample_indices)
            sample = [labelled[i] for i in sample_indices]
            tree_features = rng.sample(self.features, per_tree)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
            ).fit(sample, target, tree_features)
            self._trees.append((tree, tree_features))
            for i in range(n):
                if i not in in_bag:
                    label = tree.predict(labelled[i])
                    oob_votes.setdefault(i, Counter())[label] += 1

        correct = total = 0
        for i, votes in oob_votes.items():
            peak = max(votes.values())
            winner = min(label for label, count in votes.items() if count == peak)
            total += 1
            if winner == str(labelled[i][target]):
                correct += 1
        self._oob_accuracy = correct / total if total else None
        self._fitted = True
        return self

    def predict_proba(self, row: dict) -> dict[str, float]:
        """Vote share per class."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit()")
        votes = Counter(tree.predict(row) for tree, __ in self._trees)
        return {
            cls: votes.get(cls, 0) / self.n_trees for cls in self.classes
        }

    def predict(self, row: dict) -> str:
        """Majority vote (ties break alphabetically)."""
        probabilities = self.predict_proba(row)
        peak = max(probabilities.values())
        return min(c for c, p in probabilities.items() if p == peak)

    def predict_many(self, rows: Sequence[dict]) -> list[str]:
        """Vector form of :meth:`predict`."""
        return [self.predict(row) for row in rows]

    def oob_accuracy(self) -> float | None:
        """Out-of-bag accuracy estimate (None when every row was in-bag)."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit()")
        return self._oob_accuracy

    def feature_usage(self) -> dict[str, int]:
        """How many trees used each feature (a crude importance signal)."""
        if not self._fitted:
            raise NotFittedError("RandomForestClassifier used before fit()")
        usage = Counter()
        for __, tree_features in self._trees:
            usage.update(tree_features)
        return {feature: usage.get(feature, 0) for feature in self.features}
