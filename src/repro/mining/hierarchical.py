"""Agglomerative (bottom-up) hierarchical clustering.

Average-linkage by default; complete and single linkage also available.
O(n³) in the naive form used here, fine for the cohort-subset sizes the
paper's workflow isolates via OLAP before mining.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MiningError, NotFittedError

_LINKAGES = ("average", "complete", "single")


class AgglomerativeClustering:
    """Merge clusters until ``n_clusters`` remain."""

    def __init__(self, n_clusters: int = 2, linkage: str = "average"):
        if n_clusters < 1:
            raise MiningError("n_clusters must be >= 1")
        if linkage not in _LINKAGES:
            raise MiningError(
                f"unknown linkage {linkage!r} (valid: {', '.join(_LINKAGES)})"
            )
        self.n_clusters = n_clusters
        self.linkage = linkage
        self._fitted = False

    def fit(self, rows: Sequence[dict], features: Sequence[str]) -> "AgglomerativeClustering":
        """Cluster rows on standardised numeric features."""
        if len(rows) < self.n_clusters:
            raise MiningError(
                f"cannot make {self.n_clusters} clusters from {len(rows)} rows"
            )
        if not features:
            raise MiningError("no features supplied")
        self.features = list(features)
        X = np.zeros((len(rows), len(features)))
        for i, row in enumerate(rows):
            for j, feature in enumerate(features):
                value = row.get(feature)
                if value is None:
                    raise MiningError(
                        f"row {i} has null {feature!r}; impute before clustering"
                    )
                X[i, j] = float(value)
        means = X.mean(axis=0)
        stds = X.std(axis=0)
        stds = np.where(stds < 1e-12, 1.0, stds)
        Z = (X - means) / stds

        # pairwise distances
        diff = Z[:, None, :] - Z[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))

        clusters: dict[int, list[int]] = {i: [i] for i in range(len(rows))}
        #: merge journal: (cluster_a, cluster_b, distance)
        self.merges: list[tuple[int, int, float]] = []
        next_id = len(rows)
        while len(clusters) > self.n_clusters:
            best_pair, best_d = None, float("inf")
            ids = sorted(clusters)
            for ai in range(len(ids)):
                for bi in range(ai + 1, len(ids)):
                    a, b = ids[ai], ids[bi]
                    d = self._cluster_distance(dist, clusters[a], clusters[b])
                    if d < best_d:
                        best_d = d
                        best_pair = (a, b)
            a, b = best_pair  # type: ignore[misc]
            clusters[next_id] = clusters.pop(a) + clusters.pop(b)
            self.merges.append((a, b, best_d))
            next_id += 1

        self.labels = [0] * len(rows)
        for label, members in enumerate(sorted(clusters.values(), key=min)):
            for i in members:
                self.labels[i] = label
        self._fitted = True
        return self

    def _cluster_distance(
        self, dist: np.ndarray, a: list[int], b: list[int]
    ) -> float:
        block = dist[np.ix_(a, b)]
        if self.linkage == "average":
            return float(block.mean())
        if self.linkage == "complete":
            return float(block.max())
        return float(block.min())

    def cluster_sizes(self) -> dict[int, int]:
        """Cluster label → member count."""
        if not self._fitted:
            raise NotFittedError("AgglomerativeClustering used before fit()")
        sizes: dict[int, int] = {}
        for label in self.labels:
            sizes[label] = sizes.get(label, 0) + 1
        return sizes
