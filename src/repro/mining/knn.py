"""k-nearest-neighbour classification with a mixed-type distance.

Distance per feature: numeric features use range-normalised absolute
difference; categorical features a 0/1 overlap.  Missing values contribute
the maximum distance (1.0) — a conservative choice for screening data,
where an unrecorded test should not make two patients look similar.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.errors import MiningError, NotFittedError


class KNNClassifier:
    """Heterogeneous-distance kNN (a HEOM-style metric)."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise MiningError("k must be >= 1")
        self.k = k
        self._fitted = False

    def fit(
        self, rows: Sequence[dict], target: str, features: Sequence[str]
    ) -> "KNNClassifier":
        """Memorise the training rows and feature ranges."""
        if not rows:
            raise MiningError("cannot fit on an empty dataset")
        if not features:
            raise MiningError("no features supplied")
        self.target = target
        self.features = list(features)
        self._rows = [row for row in rows if row.get(target) is not None]
        if not self._rows:
            raise MiningError(f"no rows carry a {target!r} label")
        self._numeric: dict[str, tuple[float, float]] = {}
        for feature in self.features:
            present = [
                row[feature]
                for row in self._rows
                if row.get(feature) is not None
            ]
            if present and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in present
            ):
                low, high = float(min(present)), float(max(present))
                self._numeric[feature] = (low, max(high - low, 1e-12))
        self._fitted = True
        return self

    def distance(self, a: dict, b: dict) -> float:
        """Mean per-feature distance in [0, 1]."""
        if not self._fitted:
            raise NotFittedError("KNNClassifier used before fit()")
        total = 0.0
        for feature in self.features:
            va, vb = a.get(feature), b.get(feature)
            if va is None or vb is None:
                total += 1.0
            elif feature in self._numeric:
                low, span = self._numeric[feature]
                __ = low
                total += min(abs(float(va) - float(vb)) / span, 1.0)
            else:
                total += 0.0 if str(va) == str(vb) else 1.0
        return total / len(self.features)

    def neighbours(self, row: dict, k: int | None = None) -> list[tuple[float, dict]]:
        """The k nearest training rows as (distance, row), ascending."""
        k = k or self.k
        scored = [(self.distance(row, train), train) for train in self._rows]
        scored.sort(key=lambda pair: pair[0])
        return scored[:k]

    def predict(self, row: dict) -> str:
        """Majority vote of the k nearest neighbours."""
        votes = Counter(
            str(train[self.target]) for __, train in self.neighbours(row)
        )
        peak = max(votes.values())
        return min(label for label, n in votes.items() if n == peak)

    def predict_many(self, rows: Sequence[dict]) -> list[str]:
        """Vector form of :meth:`predict`."""
        return [self.predict(row) for row in rows]
