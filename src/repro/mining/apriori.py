"""Apriori frequent itemsets and association rules.

Rows are dicts of categorical attributes; each (attribute, value) pair is
an item, so a rule reads naturally as e.g.
``{reflex_knee=absent, fbg_band=high} => {diabetes=yes}`` — the shape of
"unexpected interaction" finding the paper's motivation section describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.errors import MiningError

Item = tuple[str, object]


def _transactions(
    rows: Sequence[dict], attributes: Sequence[str] | None
) -> list[frozenset[Item]]:
    out = []
    for row in rows:
        keys = attributes if attributes is not None else list(row)
        items = frozenset(
            (attr, row[attr]) for attr in keys if row.get(attr) is not None
        )
        out.append(items)
    return out


def apriori(
    rows: Sequence[dict],
    min_support: float = 0.1,
    attributes: Sequence[str] | None = None,
    max_length: int = 4,
) -> dict[frozenset[Item], float]:
    """Frequent itemsets with support >= ``min_support``.

    Returns itemset → support (fraction of rows containing it).  The
    classic level-wise candidate generation with subset pruning.
    """
    if not rows:
        raise MiningError("cannot mine an empty dataset")
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    transactions = _transactions(rows, attributes)
    n = len(transactions)

    # L1
    counts: dict[frozenset[Item], int] = {}
    for transaction in transactions:
        for item in transaction:
            key = frozenset([item])
            counts[key] = counts.get(key, 0) + 1
    frequent: dict[frozenset[Item], float] = {
        itemset: count / n
        for itemset, count in counts.items()
        if count / n >= min_support
    }
    current = list(frequent)

    length = 2
    while current and length <= max_length:
        # candidate generation: join itemsets sharing length-2 prefix items
        candidates: set[frozenset[Item]] = set()
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                union = current[i] | current[j]
                if len(union) == length:
                    # prune: every (length-1)-subset must be frequent
                    if all(
                        frozenset(sub) in frequent
                        for sub in combinations(union, length - 1)
                    ):
                        candidates.add(union)
        if not candidates:
            break
        counts = {c: 0 for c in candidates}
        for transaction in transactions:
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        new = {
            itemset: count / n
            for itemset, count in counts.items()
            if count / n >= min_support
        }
        frequent.update(new)
        current = list(new)
        length += 1
    return frequent


@dataclass(frozen=True)
class AssociationRule:
    """antecedent => consequent with its quality statistics."""

    antecedent: frozenset[Item]
    consequent: frozenset[Item]
    support: float
    confidence: float
    lift: float

    def render(self) -> str:
        """Human-readable rule text."""
        def items_text(items: frozenset[Item]) -> str:
            return "{" + ", ".join(
                f"{attr}={value}" for attr, value in sorted(items, key=str)
            ) + "}"

        return (
            f"{items_text(self.antecedent)} => {items_text(self.consequent)} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def association_rules(
    rows: Sequence[dict],
    min_support: float = 0.1,
    min_confidence: float = 0.6,
    attributes: Sequence[str] | None = None,
    max_length: int = 4,
) -> list[AssociationRule]:
    """Mine rules from frequent itemsets, sorted by lift descending."""
    if not 0.0 < min_confidence <= 1.0:
        raise MiningError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    frequent = apriori(rows, min_support, attributes, max_length)
    rules: list[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset, key=str), size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                ant_support = frequent.get(antecedent)
                con_support = frequent.get(consequent)
                if ant_support is None or con_support is None:
                    continue
                confidence = support / ant_support
                if confidence < min_confidence:
                    continue
                lift = confidence / con_support
                rules.append(
                    AssociationRule(antecedent, consequent, support, confidence, lift)
                )
    rules.sort(key=lambda rule: (-rule.lift, -rule.confidence, str(rule.antecedent)))
    return rules
