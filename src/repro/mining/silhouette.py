"""Silhouette analysis for clustering quality.

Gives the "how many patient subgroups are really here" answer a clinical
scientist needs before trusting a clustering — used with
:class:`~repro.mining.kmeans.KMeans` to pick k.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MiningError


def _standardised_matrix(rows: Sequence[dict], features: Sequence[str]) -> np.ndarray:
    matrix = np.zeros((len(rows), len(features)))
    for i, row in enumerate(rows):
        for j, feature in enumerate(features):
            value = row.get(feature)
            if value is None:
                raise MiningError(
                    f"row {i} has null {feature!r}; impute before scoring"
                )
            matrix[i, j] = float(value)
    means = matrix.mean(axis=0)
    stds = matrix.std(axis=0)
    stds = np.where(stds < 1e-12, 1.0, stds)
    return (matrix - means) / stds


def silhouette_samples(
    rows: Sequence[dict], features: Sequence[str], labels: Sequence[int]
) -> list[float]:
    """Per-row silhouette coefficients in [-1, 1]."""
    if len(rows) != len(labels):
        raise MiningError(f"{len(rows)} rows vs {len(labels)} labels")
    if len(set(labels)) < 2:
        raise MiningError("silhouette needs at least two clusters")
    Z = _standardised_matrix(rows, features)
    diff = Z[:, None, :] - Z[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=2))
    labels_array = np.asarray(labels)

    out: list[float] = []
    for i in range(len(rows)):
        own = labels_array[i]
        same = (labels_array == own)
        same[i] = False
        if not same.any():
            out.append(0.0)  # singleton cluster: defined as 0
            continue
        a = float(distances[i, same].mean())
        b = min(
            float(distances[i, labels_array == other].mean())
            for other in set(labels)
            if other != own
        )
        out.append((b - a) / max(a, b) if max(a, b) > 0 else 0.0)
    return out


def silhouette_score(
    rows: Sequence[dict], features: Sequence[str], labels: Sequence[int]
) -> float:
    """Mean silhouette coefficient across rows."""
    samples = silhouette_samples(rows, features, labels)
    return sum(samples) / len(samples)


def pick_k_by_silhouette(
    rows: Sequence[dict],
    features: Sequence[str],
    k_range: Sequence[int] = (2, 3, 4, 5),
    seed: int = 0,
) -> tuple[int, dict[int, float]]:
    """Fit k-means per candidate k; return (best k, score per k)."""
    from repro.mining.kmeans import KMeans

    scores: dict[int, float] = {}
    for k in k_range:
        if k < 2 or k > len(rows):
            continue
        model = KMeans(k, seed=seed).fit(rows, features)
        scores[k] = silhouette_score(rows, features, model.labels)
    if not scores:
        raise MiningError("no feasible k in the requested range")
    best = max(sorted(scores), key=lambda k: scores[k])
    return best, scores
