"""Binary logistic regression by gradient descent (numpy).

The "risk assessment based on multivariate regression modelling" that
paper §II describes as the status quo — implemented so the DD-DGMS
exploratory workflow can be compared against it on equal footing.
Categorical features are one-hot encoded automatically; numeric features
are standardised.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MiningError, NotFittedError


class LogisticRegressionClassifier:
    """L2-regularised binary logistic regression."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        iterations: int = 500,
        l2: float = 1e-3,
    ):
        if iterations < 1:
            raise MiningError("iterations must be >= 1")
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self._fitted = False

    def _expanded_columns(self) -> list[tuple[str, object | None]]:
        """Design-matrix columns: (feature, None) numeric or (feature, value)."""
        columns: list[tuple[str, object | None]] = []
        for feature in self.features:
            if feature in self._numeric:
                columns.append((feature, None))
            else:
                for value in self._vocab[feature]:
                    columns.append((feature, value))
        return columns

    def _raw_design(self, rows: Sequence[dict]) -> tuple[np.ndarray, np.ndarray]:
        columns = self._expanded_columns()
        raw = np.zeros((len(rows), len(columns)))
        mask = np.zeros_like(raw, dtype=bool)
        for i, row in enumerate(rows):
            for j, (feature, category) in enumerate(columns):
                value = row.get(feature)
                if value is None:
                    mask[i, j] = True
                elif category is None:
                    raw[i, j] = float(value)  # type: ignore[arg-type]
                else:
                    raw[i, j] = 1.0 if str(value) == category else 0.0
        return raw, mask

    def _design(self, rows: Sequence[dict]) -> np.ndarray:
        raw, mask = self._raw_design(rows)
        raw = np.where(mask, self._means, raw)  # mean imputation
        return (raw - self._means) / self._stds

    def fit(
        self, rows: Sequence[dict], target: str, features: Sequence[str]
    ) -> "LogisticRegressionClassifier":
        """Fit weights; the two observed class labels map to 0/1."""
        if not rows:
            raise MiningError("cannot fit on an empty dataset")
        if not features:
            raise MiningError("no features supplied")
        labelled = [row for row in rows if row.get(target) is not None]
        classes = sorted({str(row[target]) for row in labelled})
        if len(classes) != 2:
            raise MiningError(
                f"logistic regression is binary; got classes {classes}"
            )
        self.target = target
        self.features = list(features)
        self.classes = classes

        self._numeric: set[str] = set()
        self._vocab: dict[str, list[str]] = {}
        for feature in features:
            present = [
                row[feature] for row in labelled if row.get(feature) is not None
            ]
            if present and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in present
            ):
                self._numeric.add(feature)
            else:
                self._vocab[feature] = sorted({str(v) for v in present})
                if not self._vocab[feature]:
                    raise MiningError(f"feature {feature!r} is entirely null")

        raw, mask = self._raw_design(labelled)
        with np.errstate(invalid="ignore"):
            masked = np.where(mask, np.nan, raw)
            self._means = np.nanmean(masked, axis=0)
            self._means = np.where(np.isnan(self._means), 0.0, self._means)
            stds = np.nanstd(masked, axis=0)
        self._stds = np.where((np.isnan(stds)) | (stds < 1e-12), 1.0, stds)

        X = self._design(labelled)
        y = np.array([1.0 if str(r[target]) == classes[1] else 0.0 for r in labelled])
        n, d = X.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        for __ in range(self.iterations):
            z = X @ self.weights + self.bias
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
            grad_w = X.T @ (p - y) / n + self.l2 * self.weights
            grad_b = float((p - y).mean())
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        self._fitted = True
        return self

    def predict_proba(self, row: dict) -> dict[str, float]:
        """P(class) for both classes."""
        if not self._fitted:
            raise NotFittedError("LogisticRegressionClassifier used before fit()")
        x = self._design([row])[0]
        z = float(x @ self.weights + self.bias)
        p1 = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
        return {self.classes[0]: 1.0 - p1, self.classes[1]: p1}

    def predict(self, row: dict) -> str:
        """The more probable class."""
        probs = self.predict_proba(row)
        return max(sorted(probs), key=lambda c: probs[c])

    def predict_many(self, rows: Sequence[dict]) -> list[str]:
        """Vector form of :meth:`predict`."""
        return [self.predict(row) for row in rows]

    def coefficients(self) -> dict[str, float]:
        """Column → standardised weight (one-hot columns are ``feat=value``)."""
        if not self._fitted:
            raise NotFittedError("LogisticRegressionClassifier used before fit()")
        names = [
            feature if category is None else f"{feature}={category}"
            for feature, category in self._expanded_columns()
        ]
        return dict(zip(names, self.weights.tolist()))
