"""repro — reproduction of *Multivariate Data-Driven Decision Guidance for
Clinical Scientists* (Burstein, De Silva, Jelinek, Stranieri; ICDEW 2013).

The library implements the full DD-DGMS stack described in the paper:

* :mod:`repro.tabular` — columnar table engine (substrate, no pandas)
* :mod:`repro.storage` — embedded OLTP storage engine with WAL + indexes
* :mod:`repro.etl` — cleaning, discretisation, temporal abstraction,
  cardinality
* :mod:`repro.warehouse` — dynamic dimensional model (star/snowflake)
* :mod:`repro.olap` — cubes, slice/dice/drill/roll-up, MDX-subset language
* :mod:`repro.dgsql` — the classic-DGMS DG-SQL baseline
* :mod:`repro.mining` — classifiers, clustering, association rules, AWSum
* :mod:`repro.prediction` — similar-patient retrieval and disease-stage
  Markov trajectories
* :mod:`repro.optimize` — aggregate-consistency checks and treatment
  regimen optimisation
* :mod:`repro.knowledge` — findings, evidence accumulation, ontology and
  guideline generation
* :mod:`repro.viz` — terminal/SVG renderings of OLAP outcomes
* :mod:`repro.discri` — synthetic DiScRi diabetes-screening cohort
* :mod:`repro.dgms` — the DD-DGMS platform facade and its closed loop

Start with :func:`repro.open_system` or see ``examples/quickstart.py``::

    import repro

    system = repro.open_system(cohort)          # the DD-DGMS session
    grid = system.query().rows("age_band").columns("gender").execute()
    print(system.explain("SELECT ... FROM [discri]"))

:mod:`repro.obs` is the observability core (tracing, metrics, EXPLAIN)
and :mod:`repro.persistence` the unified save/load/recover surface.
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.errors import PersistenceError, ReproError

__all__ = [
    "ReproError",
    "PersistenceError",
    "open_system",
    "SystemConfig",
    "DDDGMS",
    "CacheConfig",
    "ResultCache",
    "CubeSnapshot",
    "ServingConfig",
    "ServingRuntime",
    "StorageConfig",
    "PartitioningSpec",
    "PlannerConfig",
    "QueryPlanner",
    "Deadline",
    "ServingOverloadError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "__version__",
]


def open_system(source, *, config: "SystemConfig | None" = None) -> "DDDGMS":
    """Open a DD-DGMS session over a raw visit-level cohort table.

    The recommended entry point: builds the full platform (operational
    store, ETL, warehouse, cube, knowledge base) and applies ``config``
    exactly once — observability sinks and the slow-query threshold are
    installed here, the serving knobs (result cache, thread budget) are
    wired in, and the figure-shaped aggregate lattice is precomputed when
    requested — so every subsequent ``system.query()`` /
    ``system.mdx()`` / ``system.explain()`` call is traced and routed
    consistently.
    """
    from repro import obs
    from repro.dgms.system import DDDGMS, SystemConfig

    settings = config if config is not None else SystemConfig()
    if settings.observability or settings.slow_query_threshold_s is not None:
        obs.configure_mode(
            settings.observability or "ring",
            slow_query_threshold_s=settings.slow_query_threshold_s,
        )
    if settings.max_workers is not None:
        from repro.serving.parallel import configure_workers

        configure_workers(settings.max_workers)
    system = DDDGMS(source, promotion_threshold=settings.promotion_threshold)
    if settings.planner is not True:
        # True is the constructor default (a fresh planner is already
        # attached); anything else replaces or detaches it
        system.attach_planner(settings.planner)
    if settings.storage is not None and settings.storage is not False:
        system.attach_storage(settings.storage)
    if settings.cache is not None and settings.cache is not False:
        system.attach_result_cache(settings.cache)
    if settings.serving is not None and settings.serving is not False:
        system.attach_serving(settings.serving)
    if settings.materialize_lattice:
        system.materialize_lattice()
    return system


_LAZY_EXPORTS = {
    "DDDGMS": ("repro.dgms.system", "DDDGMS"),
    "SystemConfig": ("repro.dgms.system", "SystemConfig"),
    "CacheConfig": ("repro.serving.cache", "CacheConfig"),
    "ResultCache": ("repro.serving.cache", "ResultCache"),
    "CubeSnapshot": ("repro.olap.cube", "CubeSnapshot"),
    "ServingConfig": ("repro.serving.admission", "ServingConfig"),
    "ServingRuntime": ("repro.serving.admission", "ServingRuntime"),
    "StorageConfig": ("repro.storage.columnar", "StorageConfig"),
    "PartitioningSpec": ("repro.storage.columnar", "PartitioningSpec"),
    "PlannerConfig": ("repro.planner", "PlannerConfig"),
    "QueryPlanner": ("repro.planner", "QueryPlanner"),
    "Deadline": ("repro.serving.resilience", "Deadline"),
    "ServingOverloadError": ("repro.errors", "ServingOverloadError"),
    "QueryTimeoutError": ("repro.errors", "QueryTimeoutError"),
    "QueryCancelledError": ("repro.errors", "QueryCancelledError"),
}


def __getattr__(name: str):
    # Lazy so that ``import repro`` stays light and cycle-free: the dgms
    # facade imports most of the library, and submodules import repro.obs.
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
