"""repro — reproduction of *Multivariate Data-Driven Decision Guidance for
Clinical Scientists* (Burstein, De Silva, Jelinek, Stranieri; ICDEW 2013).

The library implements the full DD-DGMS stack described in the paper:

* :mod:`repro.tabular` — columnar table engine (substrate, no pandas)
* :mod:`repro.storage` — embedded OLTP storage engine with WAL + indexes
* :mod:`repro.etl` — cleaning, discretisation, temporal abstraction,
  cardinality
* :mod:`repro.warehouse` — dynamic dimensional model (star/snowflake)
* :mod:`repro.olap` — cubes, slice/dice/drill/roll-up, MDX-subset language
* :mod:`repro.dgsql` — the classic-DGMS DG-SQL baseline
* :mod:`repro.mining` — classifiers, clustering, association rules, AWSum
* :mod:`repro.prediction` — similar-patient retrieval and disease-stage
  Markov trajectories
* :mod:`repro.optimize` — aggregate-consistency checks and treatment
  regimen optimisation
* :mod:`repro.knowledge` — findings, evidence accumulation, ontology and
  guideline generation
* :mod:`repro.viz` — terminal/SVG renderings of OLAP outcomes
* :mod:`repro.discri` — synthetic DiScRi diabetes-screening cohort
* :mod:`repro.dgms` — the DD-DGMS platform facade and its closed loop

Start with :class:`repro.dgms.DDDGMS` or see ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
