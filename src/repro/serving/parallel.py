"""Bounded thread-pool helpers for the serving layer.

All intra-query and lattice-build parallelism in the engine goes through
this module, so there is exactly one knob: the default worker count,
settable programmatically (:func:`configure_workers`), per call
(``max_workers=`` on the public APIs) or via the ``REPRO_WORKERS``
environment variable.  The default is **1** — fully serial, bit-identical
to the historical single-threaded engine — because parallelism is an
opt-in accelerator, never a semantic change: every parallel path in the
engine partitions work so each unit runs the *same* kernel on the *same*
slice as the serial path, making ``max_workers=1`` vs ``max_workers=N``
results exactly equal (asserted by ``tests/serving/test_parallel_parity``).

Pools are created per call and bounded by ``min(workers, len(items))``;
there is no long-lived shared executor to leak threads into forked
benchmark processes or to deadlock when parallel sections nest (a nested
section simply runs serially once the outer one consumed the budget — we
keep it simpler still: nested calls each get their own small pool).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment default for the worker count (an int; unset/empty → 1).
WORKERS_ENV = "REPRO_WORKERS"

#: Smallest number of groups for which the group-range fan-out engages;
#: below it the chunking overhead exceeds any win.  Tests lower it to
#: force the parallel path on tiny frames.
MIN_PARALLEL_GROUPS = 64

_default_workers: int | None = None


def _env_workers() -> int:
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def configure_workers(n: int | None) -> None:
    """Set the process-wide default worker count (``None`` → re-read env)."""
    global _default_workers
    _default_workers = None if n is None else max(1, int(n))


def default_workers() -> int:
    """The effective default worker count (configured, else ``REPRO_WORKERS``)."""
    return _default_workers if _default_workers is not None else _env_workers()


def resolve_workers(max_workers: int | None) -> int:
    """An explicit ``max_workers`` wins; ``None`` falls back to the default."""
    if max_workers is None:
        return default_workers()
    return max(1, int(max_workers))


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], max_workers: int | None = None
) -> list[R]:
    """``[fn(x) for x in items]`` over a bounded pool, results in order.

    Serial (no pool at all) when the resolved worker count is 1 or there
    is at most one item, so the serial path has zero threading overhead.
    Exceptions propagate exactly as in the serial loop (the first failing
    item's exception, with pending work cancelled by pool shutdown).
    """
    workers = min(resolve_workers(max_workers), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def split_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous ``[start, end)`` chunks.

    Chunks differ in length by at most one and never come back empty, so
    concatenating per-chunk results reassembles the serial order exactly.
    """
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        end = start + base + (1 if i < extra else 0)
        ranges.append((start, end))
        start = end
    return ranges


def map_group_ranges(
    fn: Callable[[int, int], list[R]],
    n_groups: int,
    max_workers: int | None = None,
    min_groups: int | None = None,
) -> "list[R] | None":
    """Fan ``fn(start, end)`` out over group-range chunks; concatenated result.

    Returns ``None`` when the fan-out should not engage (one worker, or
    fewer than ``min_groups`` groups) so callers fall through to their
    serial loop.  Each chunk computes the identical per-group values the
    serial loop would, so the concatenation is exactly the serial result.
    """
    workers = resolve_workers(max_workers)
    threshold = MIN_PARALLEL_GROUPS if min_groups is None else min_groups
    if workers <= 1 or n_groups < max(2, threshold):
        return None
    ranges = split_ranges(n_groups, workers)
    if len(ranges) <= 1:
        return None
    chunks = parallel_map(lambda r: fn(r[0], r[1]), ranges, max_workers=workers)
    out: list[R] = []
    for chunk in chunks:
        out.extend(chunk)
    return out
