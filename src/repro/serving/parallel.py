"""Bounded thread-pool helpers for the serving layer.

All intra-query and lattice-build parallelism in the engine goes through
this module, so there is exactly one knob: the default worker count,
settable programmatically (:func:`configure_workers`), per call
(``max_workers=`` on the public APIs) or via the ``REPRO_WORKERS``
environment variable.  The default is **1** — fully serial, bit-identical
to the historical single-threaded engine — because parallelism is an
opt-in accelerator, never a semantic change: every parallel path in the
engine partitions work so each unit runs the *same* kernel on the *same*
slice as the serial path, making ``max_workers=1`` vs ``max_workers=N``
results exactly equal (asserted by ``tests/serving/test_parallel_parity``).

Pools are created per call and bounded by ``min(workers, len(items))``;
there is no long-lived shared executor to leak threads into forked
benchmark processes or to deadlock when parallel sections nest (a nested
section simply runs serially once the outer one consumed the budget — we
keep it simpler still: nested calls each get their own small pool).

The fan-out is resilience-aware (PR 7):

* the calling query's :class:`~repro.serving.resilience.Deadline` is
  re-installed inside every worker (ContextVars do not cross thread-pool
  boundaries on their own), so kernel checkpoints keep firing off-thread;
* when one worker fails, the shared deadline is **cancelled** and the
  siblings drain at their next checkpoint instead of running to
  completion — the first real error is re-raised, never a secondary
  cancellation;
* the ``serving.pool`` fault point and the ``pool`` circuit breaker
  guard pool engagement: an injected pool fault (or an open breaker)
  degrades the call to the serial loop — identical results, just slower.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, Iterable, Sequence, TypeVar

from repro import obs
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.serving import resilience
from repro.serving.resilience import (
    Deadline,
    checkpoint,
    current_deadline,
    install_deadline,
    restore_deadline,
)
from repro.storage import faults
from repro.storage.faults import SimulatedCrash

T = TypeVar("T")
R = TypeVar("R")

#: items between cooperative checkpoints on the serial fallback loop
_SERIAL_CHECK_EVERY = 64

#: Environment default for the worker count (an int; unset/empty → 1).
WORKERS_ENV = "REPRO_WORKERS"

#: Smallest number of groups for which the group-range fan-out engages;
#: below it the chunking overhead exceeds any win.  Tests lower it to
#: force the parallel path on tiny frames.
MIN_PARALLEL_GROUPS = 64

_default_workers: int | None = None


def _env_workers() -> int:
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def configure_workers(n: int | None) -> None:
    """Set the process-wide default worker count (``None`` → re-read env)."""
    global _default_workers
    _default_workers = None if n is None else max(1, int(n))


def default_workers() -> int:
    """The effective default worker count (configured, else ``REPRO_WORKERS``)."""
    return _default_workers if _default_workers is not None else _env_workers()


def resolve_workers(max_workers: int | None) -> int:
    """An explicit ``max_workers`` wins; ``None`` falls back to the default."""
    if max_workers is None:
        return default_workers()
    return max(1, int(max_workers))


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    """The serial rung: plain loop with periodic cancellation checkpoints."""
    out: list[R] = []
    for i, item in enumerate(items):
        if i % _SERIAL_CHECK_EVERY == 0:
            checkpoint()
        out.append(fn(item))
    return out


def _engage_pool(brk: "resilience.CircuitBreaker") -> bool:
    """May this call use threads?  Consults the pool breaker + fault point.

    ``False`` degrades the call to the serial rung (same results).  An
    injected latency fault that exhausts the deadline propagates as the
    query's typed timeout *and* counts against the breaker — a stalled
    pool must eventually open it so later queries skip the stall.
    """
    if not brk.allow():
        obs.count("serving.pool.degraded")
        return False
    try:
        faults.fire("serving.pool")
    except (QueryTimeoutError, QueryCancelledError):
        brk.record_failure()
        raise
    except SimulatedCrash:
        raise
    except Exception:
        brk.record_failure()
        obs.count("serving.pool.degraded")
        return False
    return True


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], max_workers: int | None = None
) -> list[R]:
    """``[fn(x) for x in items]`` over a bounded pool, results in order.

    Serial (no pool at all) when the resolved worker count is 1 or there
    is at most one item, so the serial path has zero threading overhead;
    also serial when the ``pool`` circuit breaker is open or the
    ``serving.pool`` fault point injects an error (degradation ladder:
    parallel → serial, results identical).

    The caller's deadline is propagated into every worker.  On the first
    worker failure the fan-out is cancelled: siblings observe the shared
    cancel flag at their next kernel checkpoint and drain, then the
    *original* exception is re-raised (never a secondary cancellation
    from a drained sibling).
    """
    workers = min(resolve_workers(max_workers), len(items))
    if workers <= 1:
        return _serial_map(fn, items)
    brk = resilience.breaker("pool")
    if not _engage_pool(brk):
        return _serial_map(fn, items)

    # One shared child deadline for the whole fan-out: cancelling it (on a
    # sibling failure) reaches every worker, while the parent query's own
    # deadline/cancellation still propagates through the chain.
    parent = current_deadline()
    shared = parent.child() if parent is not None else Deadline()

    def run(item: T) -> R:
        token = install_deadline(shared)
        try:
            shared.check()  # don't start work for an already-dead fan-out
            return fn(item)
        finally:
            restore_deadline(token)

    first_error: BaseException | None = None
    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run, item) for item in items]
            wait(futures, return_when=FIRST_EXCEPTION)
            for fut in futures:
                if fut.done() and fut.exception() is not None:
                    first_error = fut.exception()
                    break
            if first_error is not None:
                shared.cancel("sibling worker failed")
                wait(futures)  # drain: workers exit at their next checkpoint
                obs.count("serving.pool.drains")
            else:
                results = [fut.result() for fut in futures]
    except RuntimeError:
        # pool.submit could not spawn a thread (interpreter shutdown,
        # thread limits) — distinct from a *worker* raising, which lands
        # in first_error.  The kernels are pure, so a serial re-run is
        # safe and correct.
        brk.record_failure()
        obs.count("serving.pool.degraded")
        return _serial_map(fn, items)
    if first_error is not None:
        raise first_error
    brk.record_success()
    return results


def split_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous ``[start, end)`` chunks.

    Chunks differ in length by at most one and never come back empty, so
    concatenating per-chunk results reassembles the serial order exactly.
    """
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        end = start + base + (1 if i < extra else 0)
        ranges.append((start, end))
        start = end
    return ranges


def map_group_ranges(
    fn: Callable[[int, int], list[R]],
    n_groups: int,
    max_workers: int | None = None,
    min_groups: int | None = None,
) -> "list[R] | None":
    """Fan ``fn(start, end)`` out over group-range chunks; concatenated result.

    Returns ``None`` when the fan-out should not engage (one worker, or
    fewer than ``min_groups`` groups) so callers fall through to their
    serial loop.  Each chunk computes the identical per-group values the
    serial loop would, so the concatenation is exactly the serial result.
    """
    workers = resolve_workers(max_workers)
    threshold = MIN_PARALLEL_GROUPS if min_groups is None else min_groups
    if workers <= 1 or n_groups < max(2, threshold):
        return None
    ranges = split_ranges(n_groups, workers)
    if len(ranges) <= 1:
        return None
    chunks = parallel_map(lambda r: fn(r[0], r[1]), ranges, max_workers=workers)
    out: list[R] = []
    for chunk in chunks:
        out.extend(chunk)
    return out
