"""Versioned query-result cache: (epoch, canonical plan) → result.

Clinical reporting traffic is dominated by *repeats*: many analysts drag
the same figure-shaped roll-ups, dashboards re-issue the same MDX on a
timer.  The cache memoises aggregate results keyed by the **epoch** the
answer was computed on plus a canonicalised plan key, so

* a hit is guaranteed byte-identical to a fresh recompute at that epoch
  (the key pins the exact flat view the result came from), and
* ingest invalidates **for free**: publishing a new epoch changes the key
  prefix, so stale entries simply stop matching and age out of the LRU —
  no invalidation scan, no lock coupling between writers and readers.

Budgeting is two-dimensional: an entry count cap and a byte budget
(estimated from the result tables' column buffers).  Eviction is LRU.
The cache is safe for concurrent readers and writers (one mutex around
the ordered map; entries are immutable once stored).

Incremental maintenance does not change any of this: a delta publish is
a full-fledged new epoch, so its answers get fresh keys and the previous
epoch's entries age out through the same ``keep_epochs`` window.  Delta
epochs can be much more frequent than rebuild epochs (every append
batch), so latency-sensitive deployments may want a wider
``keep_epochs`` to keep pinned long-running readers warm.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

from repro import obs


@dataclass(frozen=True)
class CacheConfig:
    """Budget for a :class:`ResultCache` (``SystemConfig(cache=...)``).

    ``max_bytes`` bounds the *estimated* resident size of cached result
    tables; ``max_entries`` bounds their count.  Both trigger LRU
    eviction.  ``keep_epochs`` is how many distinct epochs may coexist
    before entries from the oldest are dropped eagerly on publish (stale
    entries can never be *served* regardless — this only frees memory
    sooner than LRU would).
    """

    max_entries: int = 512
    max_bytes: int = 64 << 20
    keep_epochs: int = 2


@dataclass
class CacheStats:
    """Hit accounting for one cache (monotonic; snapshot for deltas)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: stores skipped because one result exceeded the whole byte budget
    oversize_rejections: int = 0

    @property
    def lookups(self) -> int:
        """All get() calls answered (hit or miss)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / lookups (0.0 when the cache was never consulted)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "oversize_rejections": self.oversize_rejections,
            "hit_rate": round(self.hit_rate, 4),
        }


def estimate_result_bytes(value: object) -> int:
    """Resident-size estimate of a cached result.

    Tables are costed from their column buffers (numpy data + validity
    mask, plus a per-string payload estimate for object columns); other
    values fall back to ``sys.getsizeof``.  Estimates only steer the
    byte budget — they never affect answers.  (Reaches into the table's
    ``_columns`` mapping: sizing is a serving concern the tabular layer
    should not have to know about.)
    """
    columns = getattr(value, "_columns", None)
    if isinstance(columns, dict):
        total = 0
        for column in columns.values():
            data = getattr(column, "data", None)
            valid = getattr(column, "valid", None)
            if data is None or valid is None:
                return max(sys.getsizeof(value), 1)
            total += int(valid.nbytes)
            if data.dtype == object:
                # O(1) three-point probe (first/middle/last value), scaled
                # to the column length: ~64 bytes pointer + str header per
                # value plus the probed payload.  put() runs this on every
                # miss, so a per-value sweep would dominate the cold path;
                # the budget only needs an estimate.
                n = int(data.size)
                if n:
                    per = 0
                    for j in (0, n >> 1, n - 1):
                        v = data[j]
                        per += 64 + (len(v) if isinstance(v, str) else 16)
                    total += (per * n) // 3
            else:
                total += int(data.nbytes)
        return max(total, 1)
    # crosstabs / reports carry a table inside; cost what we can see
    inner = getattr(value, "table", None)
    if inner is not None and inner is not value:
        return estimate_result_bytes(inner)
    return max(sys.getsizeof(value), 1)


class ResultCache:
    """Thread-safe LRU of immutable query results, keyed by epoch + plan.

    Keys are ``(epoch, plan_key)`` tuples where ``epoch`` is a globally
    unique published-epoch id (see :mod:`repro.serving.epoch`) and
    ``plan_key`` any hashable canonical description of the query.  Values
    must be treated as immutable by callers — the engine's ``Table`` API
    is functional, so results can be shared safely between threads.
    """

    def __init__(self, config: CacheConfig | None = None, **overrides):
        if config is None:
            config = CacheConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a CacheConfig or keyword overrides")
        self.config = config
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[int, Hashable], tuple[object, int]]" = (
            OrderedDict()
        )
        self._bytes = 0

    # -- reads ----------------------------------------------------------

    def get(self, epoch: int, plan_key: Hashable) -> object | None:
        """The cached result for (epoch, plan), or ``None`` on a miss."""
        key = (epoch, plan_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                obs.count("serving.cache.miss")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        obs.count("serving.cache.hit")
        return entry[0]

    def hit_rate(self) -> float:
        """Lifetime hit rate — the planner's cache-interplay signal.

        A workload the cache already answers gains little from
        materialized aggregates, so the adaptive materializer discounts
        plan frequencies by their observed cache hits; this global rate
        is the health-surface summary of the same signal.
        """
        with self._lock:
            return self.stats.hit_rate

    # -- writes ---------------------------------------------------------

    def put(self, epoch: int, plan_key: Hashable, value: object) -> None:
        """Store a result; evicts LRU entries past either budget."""
        nbytes = estimate_result_bytes(value)
        cfg = self.config
        if nbytes > cfg.max_bytes:
            with self._lock:
                self.stats.oversize_rejections += 1
            return
        key = (epoch, plan_key)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            self.stats.stores += 1
            while self._entries and (
                len(self._entries) > cfg.max_entries
                or self._bytes > cfg.max_bytes
            ):
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self.stats.evictions += 1
                obs.count("serving.cache.evictions")
            self._publish_gauges()

    def on_epoch_published(self, current_epoch: int) -> int:
        """Eagerly drop entries from epochs now out of the keep window.

        Stale entries can never be served (their key no longer matches);
        this merely releases their memory ahead of LRU aging.  Returns
        the number of entries dropped.
        """
        keep = max(1, self.config.keep_epochs)
        cutoff = current_epoch - keep
        dropped = 0
        with self._lock:
            for key in [k for k in self._entries if k[0] <= cutoff]:
                _, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
                dropped += 1
            if dropped:
                self.stats.evictions += dropped
            self._publish_gauges()
        if dropped:
            obs.count("serving.cache.epoch_drops", dropped)
        return dropped

    def clear(self) -> None:
        """Drop every entry (budget accounting included)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._publish_gauges()

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        """Estimated resident bytes of all cached results."""
        with self._lock:
            return self._bytes

    def keys(self) -> list[tuple[int, Hashable]]:
        """Current (epoch, plan) keys, LRU-oldest first."""
        with self._lock:
            return list(self._entries)

    def stats_snapshot(self) -> dict:
        """JSON-ready stats + occupancy (the ``serve-bench`` payload)."""
        with self._lock:
            occupancy = {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.config.max_entries,
                "max_bytes": self.config.max_bytes,
            }
        return {**self.stats.snapshot(), **occupancy}

    def _publish_gauges(self) -> None:
        # called with the lock held; skipped entirely unless tracing is on
        # (put() is on the query cold path, so even no-op calls add up)
        if obs.enabled():
            obs.set_gauge("serving.cache.entries", len(self._entries))
            obs.set_gauge("serving.cache.bytes", self._bytes)


def coerce_cache(
    cache: "ResultCache | CacheConfig | int | bool | None",
) -> ResultCache | None:
    """Normalise the ``SystemConfig(cache=...)`` spellings.

    ``None``/``False`` → no cache; ``True`` → default budget; an ``int``
    → byte budget; a :class:`CacheConfig` → that budget; a ready
    :class:`ResultCache` passes through (shared between systems).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, CacheConfig):
        return ResultCache(cache)
    if isinstance(cache, int):
        return ResultCache(CacheConfig(max_bytes=int(cache)))
    raise TypeError(
        f"cache must be a ResultCache, CacheConfig, byte budget int, bool "
        f"or None, got {type(cache).__name__}"
    )
