"""Bounded admission control for the query-serving path.

Unbounded queueing turns overload into latency collapse: every queued
query eventually runs, long after its caller gave up, stealing capacity
from queries that could still be answered in time.  The
:class:`AdmissionGate` bounds both dimensions instead:

* at most ``max_in_flight`` queries execute concurrently;
* at most ``max_queue`` more may *wait* (bounded by ``queue_timeout_s``
  and the query's own deadline);
* everything beyond that is **shed immediately** with a typed
  :class:`~repro.errors.ServingOverloadError` — the caller learns in
  well under 10 ms that the server is saturated, instead of after a
  multi-second queue tour.

:class:`ServingRuntime` packages the gate together with the circuit
breakers (one per rung of the degradation ladder) and the per-query
deadline installation; ``query_scope()`` is the single entry point the
query front-ends (`QueryBuilder`, MDX, DG-SQL) wrap around execution.
A re-entrancy guard makes nested engine calls (MDX tuple evaluation
calls ``cube.grand_total`` mid-query) ride the outer admission slot
rather than deadlocking against their own query.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from dataclasses import dataclass

from repro import obs
from repro.errors import ServingOverloadError
from repro.serving.resilience import (
    BreakerConfig,
    Deadline,
    breaker,
    deadline_scope,
)
from repro.storage.retry import get_policy

__all__ = [
    "ServingConfig",
    "AdmissionStats",
    "AdmissionGate",
    "ServingRuntime",
    "coerce_serving",
]


@dataclass(frozen=True)
class ServingConfig:
    """Limits for one serving runtime (``SystemConfig(serving=...)``).

    ``max_in_flight`` concurrent queries; ``max_queue`` more may wait up
    to ``queue_timeout_s`` for a slot.  ``default_deadline_s`` is applied
    to queries that arrive without their own deadline (``None`` =
    unbounded).  ``breaker_policy`` names a retry-policy registry entry
    (:func:`repro.storage.retry.get_policy`) whose knobs tune the
    circuit breakers: ``attempts`` → failure threshold, ``max_delay_s``
    → open-state reset delay.
    """

    max_in_flight: int = 8
    max_queue: int = 16
    queue_timeout_s: float = 1.0
    default_deadline_s: float | None = None
    breaker_policy: str = "serving.breaker"

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be > 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0")


@dataclass
class AdmissionStats:
    """Monotonic admission accounting (snapshot for deltas)."""

    admitted: int = 0
    queued: int = 0
    shed_queue_full: int = 0
    shed_timeout: int = 0

    def snapshot(self) -> dict:
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "shed_queue_full": self.shed_queue_full,
            "shed_timeout": self.shed_timeout,
        }


class AdmissionGate:
    """Bounded concurrency + bounded wait queue, FIFO-fair, sheds fast."""

    def __init__(self, config: ServingConfig):
        self.config = config
        self.stats = AdmissionStats()
        self._cond = threading.Condition()
        self._in_flight = 0
        self._waiting = 0

    @contextlib.contextmanager
    def admitted(self, deadline: Deadline | None = None):
        """Hold one execution slot for the ``with`` body.

        Sheds with :class:`ServingOverloadError` when the wait queue is
        full (immediately) or the slot wait exceeds ``queue_timeout_s``.
        A deadline expiring *while queued* raises its own typed error via
        ``deadline.check()`` — the query never runs.
        """
        self._acquire(deadline)
        try:
            yield self
        finally:
            self._release()

    def _acquire(self, deadline: Deadline | None) -> None:
        cfg = self.config
        with self._cond:
            if self._in_flight < cfg.max_in_flight:
                self._in_flight += 1
                self.stats.admitted += 1
                return
            if self._waiting >= cfg.max_queue:
                # the fast shed: no waiting, no lock churn beyond this
                self.stats.shed_queue_full += 1
                obs.count("serving.admission.shed")
                raise ServingOverloadError(
                    f"serving queue full ({self._in_flight} in flight, "
                    f"{self._waiting} queued); query shed"
                )
            self._waiting += 1
            self.stats.queued += 1
            obs.count("serving.admission.queued")
            budget = cfg.queue_timeout_s
            if deadline is not None:
                left = deadline.remaining()
                if left is not None:
                    budget = min(budget, left)
            try:
                got = self._cond.wait_for(
                    lambda: self._in_flight < cfg.max_in_flight, timeout=budget
                )
                if deadline is not None and (deadline.expired() or deadline.cancelled):
                    # queue expiry surfaces as the query's own timeout,
                    # not as overload — the server wasn't refusing, the
                    # query ran out of budget while waiting.  Hand the
                    # wakeup on so the slot isn't stranded with us.
                    self._cond.notify()
                    deadline.check()
                if not got:
                    self.stats.shed_timeout += 1
                    obs.count("serving.admission.shed")
                    raise ServingOverloadError(
                        f"no serving slot within {cfg.queue_timeout_s:.3f}s; "
                        f"query shed"
                    )
                self._in_flight += 1
                self.stats.admitted += 1
            finally:
                self._waiting -= 1

    def _release(self) -> None:
        with self._cond:
            self._in_flight -= 1
            self._cond.notify()

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "in_flight": self._in_flight,
                "waiting": self._waiting,
                "max_in_flight": self.config.max_in_flight,
                "max_queue": self.config.max_queue,
                **self.stats.snapshot(),
            }


# Re-entrancy guard: nested engine calls inside an already-admitted query
# (MDX member evaluation → cube.grand_total → aggregate) must not try to
# take a second slot — with max_in_flight saturated that is a deadlock of
# the query against itself.
_in_query: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_serving_in_query", default=False
)


class ServingRuntime:
    """Admission gate + breakers + deadline policy for one system.

    Attached to a :class:`~repro.olap.cube.Cube` (and re-attached across
    epoch publishes, like the result cache) so every front-end that
    executes through the cube shares one set of limits.
    """

    def __init__(self, config: ServingConfig | None = None, **overrides):
        if config is None:
            config = ServingConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ServingConfig or keyword overrides")
        self.config = config
        self.gate = AdmissionGate(config)
        policy = get_policy(config.breaker_policy)
        breaker_config = BreakerConfig(
            failure_threshold=policy.attempts,
            reset_after_s=policy.max_delay_s,
        )
        # grab-or-retune the global breakers so this runtime's policy wins
        self.breakers = {
            name: breaker(name, breaker_config)
            for name in ("lattice", "cache", "pool")
        }

    @contextlib.contextmanager
    def query_scope(
        self,
        *,
        deadline: Deadline | None = None,
        budget_s: float | None = None,
    ):
        """Admit + install a deadline around one query execution.

        Nested invocations (same thread, inside an admitted query) are
        pass-throughs: they reuse the outer slot and deadline.
        """
        if _in_query.get():
            yield None
            return
        if deadline is None:
            budget = (
                budget_s if budget_s is not None else self.config.default_deadline_s
            )
            deadline = Deadline(budget)
        token = _in_query.set(True)
        try:
            with self.gate.admitted(deadline):
                with deadline_scope(deadline):
                    # the admission wait may have consumed the whole budget
                    deadline.check()
                    yield deadline
        finally:
            _in_query.reset(token)

    def snapshot(self) -> dict:
        """JSON-ready gate + breaker state (``ingest_health()`` payload)."""
        return {
            "admission": self.gate.snapshot(),
            "breakers": {
                name: brk.snapshot() for name, brk in self.breakers.items()
            },
        }


def coerce_serving(
    serving: "ServingRuntime | ServingConfig | bool | None",
) -> ServingRuntime | None:
    """Normalise the ``SystemConfig(serving=...)`` spellings.

    ``None``/``False`` → no admission control (the PR-5 behaviour);
    ``True`` → default limits; a :class:`ServingConfig` → those limits; a
    ready :class:`ServingRuntime` passes through (shared between
    systems).
    """
    if serving is None or serving is False:
        return None
    if serving is True:
        return ServingRuntime()
    if isinstance(serving, ServingRuntime):
        return serving
    if isinstance(serving, ServingConfig):
        return ServingRuntime(serving)
    raise TypeError(
        f"serving must be a ServingRuntime, ServingConfig, bool or None, "
        f"got {type(serving).__name__}"
    )
