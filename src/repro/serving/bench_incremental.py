"""The ``bench-incremental`` harness (``python -m repro bench-incremental``).

Measures the incremental-maintenance claim (DESIGN.md §"Incremental
maintenance") and records it in ``BENCH_incremental.json``: publishing a
fixed-size delta batch costs O(batch + touched cells) regardless of how
much history the cube already holds, while a full rebuild re-scans the
whole fact table and grows linearly.

For each history scale (1x, 10x, … the base row count) the harness

* loads a star schema at that scale and materialises a lattice;
* repeatedly appends a fixed-size delta batch and times the **delta
  publish** — flatten of the appended slice, ``Cube.publish_delta`` and
  ``MaterializedCube.fold_delta`` — reporting the p50;
* times a **full rebuild** at the same scale — a from-scratch epoch
  build plus a fresh lattice materialisation — for the same p50;
* checks the parity oracle: the delta-folded lattice must be
  bit-identical to a from-scratch materialisation (the measures are
  integers, so even sums admit no rounding escape hatch).

The two headline numbers the CI gate reads:

* ``flatness_ratio`` — p50 delta publish at the largest scale over the
  smallest; the delta path passes when this stays within 1.5x while the
  history grows 10x;
* ``speedup_at_max_scale`` — full-rebuild p50 over delta p50 at the
  largest scale; the gate requires ≥ 3x.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.olap.cube import Cube
from repro.olap.materialized import MaterializedCube
from repro.tabular.table import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader

#: the synthetic star's lattice — mirrors the figure-shaped roll-ups
GROUPS: tuple[tuple[str, ...], ...] = (
    ("place.site",),
    ("place.site", "when.year"),
    ("place.ward", "when.month"),
    ("cohort.band", "when.year"),
    ("place.site", "cohort.band"),
)


def _rows(rng: np.random.Generator, n: int) -> Table:
    return Table.from_columns(
        {
            "site": [f"s{int(v)}" for v in rng.integers(0, 12, n)],
            "ward": [f"w{int(v)}" for v in rng.integers(0, 8, n)],
            "month": [int(v) for v in rng.integers(1, 13, n)],
            "year": [int(v) for v in rng.integers(2005, 2013, n)],
            "band": [f"b{int(v)}" for v in rng.integers(0, 6, n)],
            "stays": [int(v) for v in rng.integers(0, 50, n)],
            "score": [int(v) for v in rng.integers(0, 1000, n)],
        }
    )


def _loader() -> WarehouseLoader:
    return WarehouseLoader(
        "load", "visits",
        [
            DimensionSpec(Dimension("place", {"site": "str", "ward": "str"})),
            DimensionSpec(Dimension("when", {"month": "int", "year": "int"})),
            DimensionSpec(Dimension("cohort", {"band": "str"})),
        ],
        [Measure.of("stays", "int", "sum", additive=True),
         Measure.of("score", "int", "sum", additive=True)],
    )


def _bench_scale(
    scale: int, base_rows: int, delta_rows: int, repeats: int, seed: int
) -> dict:
    rng = np.random.default_rng(seed + scale)
    rows = base_rows * scale
    loader = _loader()
    loader.load(_rows(rng, rows))
    cube = Cube(loader.schema, managed=True)
    cube.publish()
    groups = [list(g) for g in GROUPS]
    lattice = MaterializedCube(cube).materialize(groups)

    delta_times: list[float] = []
    for _ in range(repeats):
        batch = _rows(rng, delta_rows)
        start_row = loader.schema.fact.num_rows
        loader.load(batch)
        start = time.perf_counter()
        delta_flat = loader.schema.flatten(start=start_row)
        state = cube.publish_delta(delta_flat)
        lattice = lattice.fold_delta(state, delta_flat)
        delta_times.append(time.perf_counter() - start)

    rebuild_times: list[float] = []
    for _ in range(repeats):
        fresh = Cube(loader.schema, managed=True)
        start = time.perf_counter()
        fresh.publish()
        MaterializedCube(fresh).materialize(groups)
        rebuild_times.append(time.perf_counter() - start)

    # parity oracle: the folded lattice vs a from-scratch materialisation
    fresh_lattice = MaterializedCube(cube).materialize(groups)
    parity = all(
        a.levels == b.levels and a.table.equals(b.table)
        for a, b in zip(lattice._nodes, fresh_lattice._nodes)
    )
    return {
        "scale": scale,
        "rows": rows,
        "delta_rows": delta_rows,
        "delta_publish_p50_s": round(statistics.median(delta_times), 6),
        "delta_publish_runs_s": [round(t, 6) for t in delta_times],
        "full_rebuild_p50_s": round(statistics.median(rebuild_times), 6),
        "full_rebuild_runs_s": [round(t, 6) for t in rebuild_times],
        "parity_ok": parity,
    }


def run_incremental_bench(
    base_rows: int = 20_000,
    delta_rows: int = 500,
    scales: tuple[int, ...] = (1, 10),
    repeats: int = 5,
    seed: int = 7,
    out: "Path | str" = "BENCH_incremental.json",
) -> dict:
    """Run every scale and write ``BENCH_incremental.json``."""
    results = [
        _bench_scale(scale, base_rows, delta_rows, repeats, seed)
        for scale in sorted(scales)
    ]
    lo, hi = results[0], results[-1]
    flatness = (
        hi["delta_publish_p50_s"] / lo["delta_publish_p50_s"]
        if lo["delta_publish_p50_s"] > 0 else None
    )
    speedup = (
        hi["full_rebuild_p50_s"] / hi["delta_publish_p50_s"]
        if hi["delta_publish_p50_s"] > 0 else None
    )
    payload = {
        "bench": "incremental",
        "config": {
            "base_rows": base_rows,
            "delta_rows": delta_rows,
            "scales": list(sorted(scales)),
            "repeats": repeats,
            "seed": seed,
            "nodes": len(GROUPS),
        },
        "cpu_count": os.cpu_count(),
        "scales": results,
        "flatness_ratio": round(flatness, 3) if flatness else None,
        "speedup_at_max_scale": round(speedup, 2) if speedup else None,
        "parity_ok": all(r["parity_ok"] for r in results),
    }
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_summary(payload: dict) -> str:
    lines = ["== incremental maintenance =="]
    for entry in payload["scales"]:
        lines.append(
            f"{entry['scale']:>4}x ({entry['rows']:>9,} rows): "
            f"delta publish p50 {entry['delta_publish_p50_s'] * 1e3:8.2f} ms   "
            f"full rebuild p50 {entry['full_rebuild_p50_s'] * 1e3:8.2f} ms"
        )
    lines.append(
        f"flatness ratio (delta p50, max/min scale): "
        f"{payload['flatness_ratio']}"
    )
    lines.append(
        f"speedup at max scale (rebuild / delta): "
        f"{payload['speedup_at_max_scale']}x"
    )
    lines.append(f"parity oracle: {'ok' if payload['parity_ok'] else 'FAILED'}")
    return "\n".join(lines)
