"""Concurrent query serving: epochs, result caching, bounded parallelism.

The serving layer makes the DD-DGMS safe and fast under many concurrent
readers with a live writer (the paper's "many clinical scientists over a
continuously refreshed warehouse" workload):

* **snapshot-isolated reads** — warehouse rebuilds are publish-on-commit:
  the writer builds the next flat view + lattice off to the side and
  atomically swaps an immutable epoch; queries pin the epoch they started
  on and never see a torn cube (:mod:`repro.serving.epoch`,
  :meth:`repro.olap.cube.Cube.snapshot`);
* a **versioned result cache** keyed by (epoch, canonical plan) with LRU
  and a byte budget, invalidated for free by the epoch bump
  (:mod:`repro.serving.cache`, wired via
  ``SystemConfig(cache=...)`` and surfaced in ``explain()``);
* **bounded parallelism** — lattice nodes materialise over a thread pool
  and large group-bys fan their per-group reductions out, with serial
  results guaranteed bit-identical (:mod:`repro.serving.parallel`);
* **overload safety** — a bounded admission gate sheds excess queries
  with a typed error, per-query deadlines cancel cooperatively at kernel
  chunk boundaries, and circuit breakers degrade broken dependencies one
  rung down the documented ladder (lattice → base scan, cache →
  recompute, parallel → serial) instead of failing queries
  (:mod:`repro.serving.admission`, :mod:`repro.serving.resilience`,
  wired via ``SystemConfig(serving=...)``).

``python -m repro serve-bench`` exercises the first three under load and
records the numbers in ``BENCH_serving.json``; ``python -m repro
bench-overload`` drives 4x oversubscription through injected
``serving.*`` faults and records the bounds in ``BENCH_overload.json``.
"""

from __future__ import annotations

from repro.serving.admission import (
    AdmissionGate,
    AdmissionStats,
    ServingConfig,
    ServingRuntime,
    coerce_serving,
)
from repro.serving.cache import (
    CacheConfig,
    CacheStats,
    ResultCache,
    coerce_cache,
    estimate_result_bytes,
)
from repro.serving.epoch import next_epoch_id
from repro.serving.parallel import (
    MIN_PARALLEL_GROUPS,
    WORKERS_ENV,
    configure_workers,
    default_workers,
    parallel_map,
    resolve_workers,
    split_ranges,
)
from repro.serving.resilience import (
    DEGRADATION_LADDER,
    BreakerConfig,
    CircuitBreaker,
    Deadline,
    active_degradations,
    breaker,
    breakers_snapshot,
    checkpoint,
    current_deadline,
    deadline_scope,
    reset_breakers,
)

__all__ = [
    "CacheConfig",
    "CacheStats",
    "ResultCache",
    "coerce_cache",
    "estimate_result_bytes",
    "next_epoch_id",
    "CubeSnapshot",
    "configure_workers",
    "default_workers",
    "resolve_workers",
    "parallel_map",
    "split_ranges",
    "MIN_PARALLEL_GROUPS",
    "WORKERS_ENV",
    "AdmissionGate",
    "AdmissionStats",
    "ServingConfig",
    "ServingRuntime",
    "coerce_serving",
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "checkpoint",
    "BreakerConfig",
    "CircuitBreaker",
    "breaker",
    "breakers_snapshot",
    "active_degradations",
    "reset_breakers",
    "DEGRADATION_LADDER",
]


def __getattr__(name: str):
    # CubeSnapshot lives beside Cube; import lazily to keep this package a
    # leaf (cube itself imports repro.serving.epoch).
    if name == "CubeSnapshot":
        from repro.olap.cube import CubeSnapshot

        return CubeSnapshot
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
