"""Deadlines, cooperative cancellation and circuit breakers for serving.

The read path must answer predictably even when it is overloaded or a
dependency is broken.  This module supplies the three primitives the
serving layer builds that guarantee from:

**Deadlines.**  A :class:`Deadline` is a per-query time budget plus a
cancel flag.  It travels through the executing query via a
:data:`contextvars.ContextVar`, so the group-by/join kernels, lattice
scans and ``parallel_map`` workers can call :func:`checkpoint` at chunk
boundaries without threading a handle through every signature.  An
expired deadline raises :class:`~repro.errors.QueryTimeoutError`; an
explicitly cancelled one raises
:class:`~repro.errors.QueryCancelledError`.  Checkpoints cost one
ContextVar read + one monotonic clock read — cheap enough for hot loops
at chunk granularity.

Deadlines form a chain: a worker thread gets a ``child()`` of the
query's deadline, so cancelling the parent cancels every worker, while
a worker can be cancelled alone (fan-out draining after a sibling
failure).  ``expires_at`` is the minimum over the chain.

**Circuit breakers.**  A :class:`CircuitBreaker` guards one dependency
(the materialised lattice, the result cache, the worker pool).  It is
*closed* (requests flow) until ``failure_threshold`` consecutive
failures open it; while *open* every ``allow()`` is refused until
``reset_after_s`` elapses, then one *half-open* probe is let through —
success closes the breaker, failure re-opens it.  Refusal never fails a
query: each guarded dependency has a rung below it on the
:data:`DEGRADATION_LADDER` (lattice → base scan, cache → recompute,
pool → serial) and the caller silently takes that rung.

Breakers live in a process-global registry (like the obs sinks and the
fault plan) so every cube epoch and every snapshot shares one view of a
dependency's health, and ``ingest_health()``/``explain()`` can report
active degradations without plumbing.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from dataclasses import dataclass, field

from repro import obs
from repro.errors import QueryCancelledError, QueryTimeoutError

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "checkpoint",
    "cooperative_sleep",
    "BreakerConfig",
    "CircuitBreaker",
    "breaker",
    "breakers_snapshot",
    "active_degradations",
    "reset_breakers",
    "DEGRADATION_LADDER",
]


# --------------------------------------------------------------------------
# Deadlines & cooperative cancellation
# --------------------------------------------------------------------------

class Deadline:
    """A cancellable time budget for one query (or one worker of one).

    ``budget_s=None`` means no time limit — the deadline then only
    carries the cancel flag.  ``parent`` chains deadlines: expiry and
    cancellation both propagate down the chain (the effective expiry is
    the earliest in the chain; a cancelled ancestor cancels every
    descendant).
    """

    __slots__ = ("expires_at", "parent", "_clock", "_cancelled", "_why")

    def __init__(
        self,
        budget_s: float | None = None,
        *,
        parent: "Deadline | None" = None,
        clock=time.monotonic,
    ):
        self._clock = clock
        self.parent = parent
        own = clock() + budget_s if budget_s is not None else None
        inherited = parent.expires_at if parent is not None else None
        if own is None:
            self.expires_at = inherited
        elif inherited is None:
            self.expires_at = own
        else:
            self.expires_at = min(own, inherited)
        self._cancelled = threading.Event()
        self._why = ""

    # -- state ----------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once this deadline (or any ancestor) was cancelled."""
        node: Deadline | None = self
        while node is not None:
            if node._cancelled.is_set():
                return True
            node = node.parent
        return False

    @property
    def cancel_reason(self) -> str:
        node: Deadline | None = self
        while node is not None:
            if node._cancelled.is_set():
                return node._why
            node = node.parent
        return ""

    def expired(self) -> bool:
        """True once the effective time budget has run out."""
        return self.expires_at is not None and self._clock() >= self.expires_at

    def remaining(self) -> float | None:
        """Seconds left (``None`` = unbounded, clamped at 0.0)."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self._clock())

    # -- transitions ----------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Flip the cancel flag; every checkpoint downstream raises."""
        self._why = reason
        self._cancelled.set()

    def child(self, budget_s: float | None = None) -> "Deadline":
        """A derived deadline for a worker thread (never loosens this one)."""
        return Deadline(budget_s, parent=self, clock=self._clock)

    # -- enforcement ----------------------------------------------------

    def check(self) -> None:
        """Raise the typed error if cancelled or expired, else return."""
        if self.cancelled:
            raise QueryCancelledError(
                f"query cancelled: {self.cancel_reason or 'cancelled'}"
            )
        if self.expired():
            raise QueryTimeoutError("query deadline exceeded")


_current: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_serving_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline governing the calling context (``None`` = unbounded)."""
    return _current.get()


def install_deadline(deadline: Deadline | None) -> contextvars.Token:
    """Low-level: bind ``deadline`` in this thread's context.

    Worker threads use this directly because ContextVars do not cross
    ``ThreadPoolExecutor`` boundaries; query code should prefer
    :func:`deadline_scope`.  Pass the returned token to
    :func:`restore_deadline`.
    """
    return _current.set(deadline)


def restore_deadline(token: contextvars.Token) -> None:
    """Undo a matching :func:`install_deadline`."""
    _current.reset(token)


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None):
    """Bind ``deadline`` as the current deadline for the ``with`` body."""
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def checkpoint() -> None:
    """Cooperative cancellation point: raise if the current query is done.

    Call at chunk boundaries in long-running loops.  Free (one ContextVar
    read) when no deadline is active.
    """
    deadline = _current.get()
    if deadline is not None:
        deadline.check()


def cooperative_sleep(seconds: float, *, step_s: float = 0.005) -> None:
    """Sleep in short steps, honouring the current deadline between steps.

    Used by the fault-injection ``slow``/``stall`` modes so an injected
    delay cannot outlive the query it is delaying: the checkpoint inside
    the loop raises the typed timeout as soon as the deadline expires.
    """
    end = time.monotonic() + seconds
    while True:
        checkpoint()
        left = end - time.monotonic()
        if left <= 0:
            return
        time.sleep(min(step_s, left))


# --------------------------------------------------------------------------
# Circuit breakers
# --------------------------------------------------------------------------

#: The documented rung each guarded dependency falls to when its breaker
#: opens.  Queries never fail because a breaker refused — they degrade.
DEGRADATION_LADDER = {
    "lattice": "base-scan",
    "cache": "recompute",
    "pool": "serial",
}

_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive failures open the breaker;
    ``reset_after_s`` later one half-open probe is admitted, and
    ``half_open_probes`` successes in that state close it again.
    """

    failure_threshold: int = 3
    reset_after_s: float = 5.0
    half_open_probes: int = 1


@dataclass
class BreakerStats:
    """Monotonic transition/outcome counters for one breaker."""

    successes: int = 0
    failures: int = 0
    rejections: int = 0
    opens: int = 0

    def snapshot(self) -> dict:
        return {
            "successes": self.successes,
            "failures": self.failures,
            "rejections": self.rejections,
            "opens": self.opens,
        }


class CircuitBreaker:
    """closed → (N consecutive faults) → open → (timeout) → half-open.

    Thread-safe; all transitions happen under one small lock.  Callers
    use the ``allow()`` / ``record_success()`` / ``record_failure()``
    triple around the guarded operation and take the degradation rung
    when ``allow()`` returns ``False``.
    """

    def __init__(
        self,
        name: str,
        config: BreakerConfig | None = None,
        *,
        clock=time.monotonic,
    ):
        self.name = name
        self.config = config or BreakerConfig()
        self.stats = BreakerStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = _CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_successes = 0
        self._probe_in_flight = False

    # -- queries --------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """May a request use the guarded dependency right now?"""
        with self._lock:
            self._maybe_half_open()
            if self._state == _CLOSED:
                return True
            if self._state == _HALF_OPEN and not self._probe_in_flight:
                # exactly one probe at a time; concurrent queries keep
                # taking the degraded rung until the probe reports back
                self._probe_in_flight = True
                return True
            self.stats.rejections += 1
            return False

    # -- outcomes -------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self.stats.successes += 1
            self._probe_in_flight = False
            if self._state == _HALF_OPEN:
                self._half_open_successes += 1
                if self._half_open_successes >= self.config.half_open_probes:
                    self._transition(_CLOSED)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.stats.failures += 1
            self._probe_in_flight = False
            self._consecutive_failures += 1
            if self._state == _HALF_OPEN:
                self._transition(_OPEN)
            elif (
                self._state == _CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._transition(_OPEN)

    def reset(self) -> None:
        """Force-close (tests and operator tooling)."""
        with self._lock:
            self._state = _CLOSED
            self._consecutive_failures = 0
            self._half_open_successes = 0
            self._probe_in_flight = False

    # -- internals (lock held) ------------------------------------------

    def _maybe_half_open(self) -> None:
        if (
            self._state == _OPEN
            and self._clock() - self._opened_at >= self.config.reset_after_s
        ):
            self._transition(_HALF_OPEN)

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        if state == _OPEN:
            self._opened_at = self._clock()
            self.stats.opens += 1
            obs.count(f"serving.breaker.{self.name}.open")
        elif state == _CLOSED:
            self._consecutive_failures = 0
            self._half_open_successes = 0
            obs.count(f"serving.breaker.{self.name}.close")
        else:  # half-open
            self._half_open_successes = 0
            self._probe_in_flight = False
        if obs.enabled():
            obs.set_gauge(
                f"serving.breaker.{self.name}.open_gauge",
                0 if state == _CLOSED else 1,
            )

    # -- introspection --------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "degrades_to": DEGRADATION_LADDER.get(self.name),
                **self.stats.snapshot(),
            }


_registry: dict[str, CircuitBreaker] = {}
_registry_lock = threading.Lock()


def breaker(name: str, config: BreakerConfig | None = None) -> CircuitBreaker:
    """The process-wide breaker for ``name`` (created on first use).

    An explicit ``config`` re-tunes an existing breaker in place (state
    and stats survive — only the thresholds change), so systems created
    with custom serving settings govern breakers other components
    already grabbed.
    """
    with _registry_lock:
        existing = _registry.get(name)
        if existing is None:
            existing = _registry[name] = CircuitBreaker(name, config)
        elif config is not None:
            existing.config = config
        return existing


def breakers_snapshot() -> dict:
    """JSON-ready state of every registered breaker."""
    with _registry_lock:
        items = list(_registry.items())
    return {name: brk.snapshot() for name, brk in items}


def active_degradations() -> dict:
    """``{dependency: rung}`` for every breaker not currently closed."""
    with _registry_lock:
        items = list(_registry.items())
    out = {}
    for name, brk in items:
        if brk.state != _CLOSED:
            out[name] = DEGRADATION_LADDER.get(name, "degraded")
    return out


def reset_breakers() -> None:
    """Force-close and forget every breaker (test isolation)."""
    with _registry_lock:
        for brk in _registry.values():
            brk.reset()
        _registry.clear()
