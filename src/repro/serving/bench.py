"""The ``serve-bench`` load harness (``python -m repro serve-bench``).

Measures the three serving-layer claims and records them in
``BENCH_serving.json``:

* **result cache** — repeated figure-shaped queries served from the
  versioned cache vs recomputed from the fact table (hit speedup and the
  cache hit-rate under a mixed workload);
* **parallel lattice** — wall time of materialising a many-node lattice
  over a large synthetic star schema with 1 worker vs N (the nodes are
  independent group-bys whose argsort/reduceat kernels release the GIL;
  the speedup column is only meaningful on multi-core hosts, so the
  payload records ``cpu_count`` alongside);
* **concurrent serving** — reader threads issuing queries against a live
  writer (ingest batches publishing new epochs), reporting aggregate
  queries/second, epochs published, and that no reader ever errored.

All numbers are best-of/total wall times on the current host — a load
report, not a pass/fail suite (the CI gates live in ``benchmarks/``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.olap.cube import Cube
from repro.serving.cache import ResultCache
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader
from repro.tabular.table import Table

#: figure-shaped query mix used by the cache and concurrency stages
QUERY_MIX: tuple[tuple[tuple[str, ...], dict], ...] = (
    (("conditions.age_band", "personal.gender"),
     {"patients": ("cardinality.patient_id", "nunique")}),
    (("conditions.age_band10", "conditions.diabetes_status"),
     {"mean_fbg": ("fbg", "mean"), "records": ("records", "size")}),
    (("personal.gender", "personal.family_history_diabetes"),
     {"mean_bmi": ("bmi", "mean")}),
    (("conditions.age_band10", "conditions.hypertension"),
     {"records": ("records", "size")}),
)


def _best_of(func, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def synthetic_star(rows: int, seed: int = 7) -> Cube:
    """A large star schema with cheap levels and GIL-friendly int measures.

    Dimension cardinalities stay small (≤ 32 members) so per-node output
    assembly is negligible and the materialisation cost is dominated by
    the factorise/argsort/reduceat kernels — the regime the parallel
    lattice build targets.
    """
    rng = np.random.default_rng(seed)
    source = Table.from_columns(
        {
            "site": [f"s{int(v)}" for v in rng.integers(0, 12, rows)],
            "ward": [f"w{int(v)}" for v in rng.integers(0, 8, rows)],
            "month": [int(v) for v in rng.integers(1, 13, rows)],
            "year": [int(v) for v in rng.integers(2005, 2013, rows)],
            "band": [f"b{int(v)}" for v in rng.integers(0, 6, rows)],
            "stays": [int(v) for v in rng.integers(0, 50, rows)],
            "score": [int(v) for v in rng.integers(0, 1000, rows)],
        }
    )
    loader = WarehouseLoader(
        "load", "visits",
        [
            DimensionSpec(Dimension("place", {"site": "str", "ward": "str"})),
            DimensionSpec(Dimension("when", {"month": "int", "year": "int"})),
            DimensionSpec(Dimension("cohort", {"band": "str"})),
        ],
        [Measure.of("stays", "int", "sum", additive=True),
         Measure.of("score", "int", "sum", additive=True)],
    )
    loader.load(source)
    return Cube(loader.schema)


#: lattice nodes for the synthetic star — enough independent group-bys to
#: keep every worker busy
SYNTHETIC_GROUPS: tuple[tuple[str, ...], ...] = (
    ("place.site",),
    ("place.ward",),
    ("when.month",),
    ("when.year",),
    ("cohort.band",),
    ("place.site", "when.year"),
    ("place.ward", "when.month"),
    ("cohort.band", "when.year"),
    ("place.site", "cohort.band"),
    ("when.month", "when.year"),
    ("place.ward", "cohort.band"),
    ("place.site", "when.month"),
)


def bench_parallel_lattice(
    rows: int = 200_000, workers: int = 4, repeats: int = 3
) -> dict:
    """Materialise the synthetic lattice serially vs over ``workers`` threads."""
    from repro.olap.materialized import MaterializedCube

    cube = synthetic_star(rows)
    cube.flat  # build the epoch once; both variants then time pure node builds
    groups = [list(g) for g in SYNTHETIC_GROUPS]

    def build(n: int) -> None:
        MaterializedCube(cube).materialize(groups, max_workers=n)

    serial = _best_of(lambda: build(1), repeats)
    parallel = _best_of(lambda: build(workers), repeats)
    return {
        "rows": rows,
        "nodes": len(groups),
        "workers": workers,
        "serial_s": round(serial, 4),
        "parallel_s": round(parallel, 4),
        "speedup": round(serial / parallel, 2) if parallel > 0 else None,
    }


def bench_result_cache(system, repeats: int = 5) -> dict:
    """Repeated-query latency with the versioned cache vs recomputing."""
    cache = ResultCache()
    queries = [(list(levels), dict(aggs)) for levels, aggs in QUERY_MIX]

    def run_all() -> None:
        for levels, aggs in queries:
            system.cube.aggregate(levels, aggs)

    system.cube.attach_result_cache(None)
    uncached = _best_of(run_all, repeats)

    system.attach_result_cache(cache)
    run_all()  # populate at the current epoch
    warm = _best_of(run_all, repeats)
    system.cube.attach_result_cache(None)
    return {
        "queries": len(queries),
        "uncached_s": round(uncached, 6),
        "cached_s": round(warm, 6),
        "speedup": round(uncached / warm, 1) if warm > 0 else None,
        "cache": cache.stats_snapshot(),
    }


def bench_concurrent_serving(
    system, make_batch, readers: int = 8, duration_s: float = 2.0
) -> dict:
    """Readers hammer the query mix while a writer ingests live batches."""
    stop = threading.Event()
    counts = [0] * readers
    errors: list[str] = []
    queries = [(list(levels), dict(aggs)) for levels, aggs in QUERY_MIX]

    def reader(slot: int) -> None:
        i = 0
        while not stop.is_set():
            levels, aggs = queries[i % len(queries)]
            try:
                system.cube.aggregate(levels, aggs)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                errors.append(f"reader[{slot}]: {exc!r}")
                return
            counts[slot] += 1
            i += 1

    epochs_before = system.epoch
    batches = 0
    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(readers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    try:
        while time.perf_counter() - start < duration_s:
            system.ingest_visits(make_batch())
            batches += 1
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    elapsed = time.perf_counter() - start
    total = sum(counts)
    return {
        "readers": readers,
        "duration_s": round(elapsed, 2),
        "queries_answered": total,
        "queries_per_s": round(total / elapsed, 1) if elapsed > 0 else None,
        "writer_batches": batches,
        "epochs_published": system.epoch - epochs_before,
        "reader_errors": errors,
    }


def run_serving_bench(
    patients: int = 200,
    seed: int = 42,
    lattice_rows: int = 200_000,
    workers: int = 4,
    readers: int = 8,
    duration_s: float = 2.0,
    out: "Path | str" = "BENCH_serving.json",
) -> dict:
    """Run all three stages and write ``BENCH_serving.json``."""
    from repro.dgms.system import DDDGMS
    from repro.discri.generator import DiScRiGenerator, offset_identifiers

    cohort = DiScRiGenerator(n_patients=patients, seed=seed).generate()
    system = DDDGMS(cohort)

    next_seed = [seed + 1]

    def make_batch() -> Table:
        batch = DiScRiGenerator(
            n_patients=25, seed=next_seed[0]
        ).generate()
        next_seed[0] += 1
        max_pid = int(max(system.source.column("patient_id").to_list()))
        max_vid = int(max(system.source.column("visit_id").to_list()))
        return offset_identifiers(batch, max_pid, max_vid)

    payload = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": ".".join(map(str, __import__("sys").version_info[:3])),
        },
        "cohort": {"patients": patients, "rows": cohort.num_rows},
        "result_cache": bench_result_cache(system),
        "parallel_lattice": bench_parallel_lattice(
            rows=lattice_rows, workers=workers
        ),
        "concurrent_serving": bench_concurrent_serving(
            system, make_batch, readers=readers, duration_s=duration_s
        ),
    }
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_summary(payload: dict) -> str:
    """Human-readable one-screen summary of a bench payload."""
    cache = payload["result_cache"]
    lat = payload["parallel_lattice"]
    conc = payload["concurrent_serving"]
    lines = [
        f"host: {payload['host']['cpu_count']} cpu(s), "
        f"python {payload['host']['python']}",
        f"result cache:   {cache['uncached_s'] * 1e3:.1f} ms uncached -> "
        f"{cache['cached_s'] * 1e3:.2f} ms cached "
        f"({cache['speedup']}x, hit rate {cache['cache']['hit_rate']:.0%})",
        f"lattice build:  {lat['nodes']} nodes over {lat['rows']} rows: "
        f"{lat['serial_s']:.2f} s serial -> {lat['parallel_s']:.2f} s "
        f"with {lat['workers']} workers ({lat['speedup']}x)",
        f"concurrency:    {conc['readers']} readers x {conc['duration_s']} s "
        f"against a live writer: {conc['queries_answered']} queries "
        f"({conc['queries_per_s']}/s), {conc['epochs_published']} epochs "
        f"published, {len(conc['reader_errors'])} errors",
    ]
    if (payload["host"]["cpu_count"] or 1) < 2:
        lines.append(
            "note: single-cpu host; the parallel-lattice speedup needs "
            ">=2 cores to show"
        )
    return "\n".join(lines)
