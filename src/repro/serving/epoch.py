"""Epoch identity for snapshot-isolated reads.

An **epoch** is one committed version of the analytical state: a fully
built flat view plus the caches derived from it (group-bys, qualified
attributes, an optional materialised lattice).  Writers build the next
epoch off to the side and publish it with a single atomic reference swap
(:meth:`repro.olap.cube.Cube.publish`); in-flight readers keep the epoch
they pinned and never observe a torn rebuild.

Epoch ids come from one process-wide monotonic counter rather than a
per-cube sequence, so an id names a unique committed state across every
cube a process ever publishes.  That makes the ids safe as result-cache
key prefixes even when ingest replaces the whole ``Cube`` object (the
same :class:`~repro.serving.cache.ResultCache` is re-attached to the new
cube and old entries can never alias the new state).

Delta publishes (:meth:`repro.olap.cube.Cube.publish_delta`, DESIGN.md
§"Incremental maintenance") allocate epoch ids from this same counter:
an incrementally extended state is a *new* epoch in every respect —
snapshot pinning, cache keying, lattice freshness tagging — even though
its flat view shares the previous epoch's buffers until first read.
"""

from __future__ import annotations

import itertools
import threading

_counter = itertools.count(1)
_lock = threading.Lock()


def next_epoch_id() -> int:
    """Allocate the next process-unique epoch id (thread-safe, monotonic)."""
    with _lock:
        return next(_counter)


def peek_epoch_id() -> int:
    """The most recently allocated epoch id (0 before any allocation).

    Diagnostic only — another thread may allocate immediately after.
    """
    with _lock:
        # count objects expose their next value in repr; cheaper to copy
        probe = _counter.__reduce__()[1][0]
    return probe - 1
