"""The ``bench-overload`` harness (``python -m repro bench-overload``).

Measures the overload-safety claims (DESIGN.md §"Overload & degradation")
and records them in ``BENCH_overload.json``.  Three phases against one
DD-DGMS with a lattice, a result cache and admission control attached:

* **shed** — saturate the admission gate (slot holders + queue fillers),
  then probe with real queries: every probe must be shed with a typed
  :class:`~repro.errors.ServingOverloadError` in under 10 ms — overload
  must never make rejection slow;
* **chaos** — ``oversubscription``× more reader threads than admission
  slots loop the figure-shaped query mix while ``serving.cache`` errors,
  ``serving.pool`` errors and ``serving.scan`` slow-downs are injected.
  Every admitted query must either complete *correctly* (checked against
  recompute-oracle fingerprints taken before the chaos; the epoch never
  moves, so any mismatch is a wrong or stale answer) or fail with a
  typed error; the p99 latency of completed queries must stay within
  1.5× the deadline;
* **deadline** — a stalled result cache (2 s injected stall) against a
  short per-query budget: each probe must raise
  :class:`~repro.errors.QueryTimeoutError` within budget + grace, proving
  cooperative cancellation bounds tail latency even inside a stall.

The CI gate reads ``ok`` per phase and the top-level ``ok``.
"""

from __future__ import annotations

import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.discri.generator import DiScRiGenerator
from repro.dgms.system import DDDGMS
from repro.errors import QueryTimeoutError, ServingOverloadError
from repro.serving.admission import ServingConfig, ServingRuntime
from repro.serving.resilience import reset_breakers
from repro.storage import faults
from repro.storage.faults import FaultPlan, FaultRule

#: admitted-query p99 must stay within this multiple of the deadline
P99_DEADLINE_FACTOR = 1.5
#: a shed must be diagnosed and rejected faster than this
SHED_BOUND_MS = 10.0
#: slack on top of the budget for the deadline phase (scheduler jitter)
DEADLINE_GRACE_S = 0.5


def _queries(system: DDDGMS) -> list:
    """The figure-shaped mix as zero-argument thunks returning crosstabs."""
    return [
        lambda: system.query().rows("age_band").columns("gender")
        .count_records("attendances")
        .where("personal.family_history_diabetes", "yes").execute(),
        lambda: system.query().rows("age_band10").columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes").execute(),
        lambda: system.query().rows("age_band10").columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes").execute(),
        lambda: system.query().rows("age_band").columns("gender")
        .count_records("attendances").execute(),
        lambda: system.query().rows("ht_years_band").columns("gender")
        .count_records("cases")
        .where("conditions.hypertension", "yes").execute(),
        lambda: system.query().rows("age_band10").columns("gender")
        .count_records("attendances").execute(),
    ]


def _fingerprint(grid) -> tuple:
    """Order-insensitive identity of a crosstab (the recompute oracle)."""
    return (
        tuple(sorted(grid.row_keys)),
        tuple(sorted(grid.col_keys)),
        tuple(sorted(grid.cells.items())),
    )


def _pct(samples: list[float], q: float) -> float | None:
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _bench_shed(runtime: ServingRuntime, system: DDDGMS, probes: int) -> dict:
    """Saturate the gate, then time queue-full rejections."""
    config = runtime.config
    release = threading.Event()
    threads: list[threading.Thread] = []

    def occupy() -> None:
        try:
            with runtime.gate.admitted(None):
                release.wait(timeout=30.0)
        except ServingOverloadError:  # pragma: no cover - timing fallback
            pass

    def spawn(count: int, ready) -> None:
        for _ in range(count):
            t = threading.Thread(target=occupy, daemon=True)
            t.start()
            threads.append(t)
        deadline = time.monotonic() + 10.0
        while not ready(runtime.gate.snapshot()):
            if time.monotonic() > deadline:  # pragma: no cover - stuck gate
                raise RuntimeError("admission gate failed to saturate")
            time.sleep(0.001)

    shed_ms: list[float] = []
    admitted_probes = 0
    try:
        spawn(config.max_in_flight,
              lambda s: s["in_flight"] >= config.max_in_flight)
        spawn(config.max_queue, lambda s: s["waiting"] >= config.max_queue)
        query = _queries(system)[0]
        for _ in range(probes):
            start = time.perf_counter()
            try:
                query()
                admitted_probes += 1
            except ServingOverloadError:
                shed_ms.append((time.perf_counter() - start) * 1e3)
    finally:
        release.set()
        for t in threads:
            t.join(timeout=30.0)

    max_ms = max(shed_ms) if shed_ms else None
    return {
        "probes": probes,
        "shed": len(shed_ms),
        "admitted_probes": admitted_probes,
        "shed_p50_ms": round(statistics.median(shed_ms), 3) if shed_ms else None,
        "shed_max_ms": round(max_ms, 3) if max_ms is not None else None,
        "bound_ms": SHED_BOUND_MS,
        "ok": (
            admitted_probes == 0
            and len(shed_ms) == probes
            and max_ms is not None
            and max_ms < SHED_BOUND_MS
        ),
    }


def _bench_chaos(
    runtime: ServingRuntime,
    system: DDDGMS,
    oracle: list[tuple],
    readers: int,
    duration_s: float,
) -> dict:
    """Oversubscribed readers under injected serving faults."""
    queries = _queries(system)
    plan = FaultPlan([
        FaultRule(point="serving.cache", mode="error", nth=0),
        FaultRule(point="serving.pool", mode="error", nth=0),
        FaultRule(point="serving.scan", mode="slow", nth=0, delay_s=0.002),
    ])
    lock = threading.Lock()
    latencies_ms: list[float] = []
    counts = {"completed": 0, "wrong": 0, "shed": 0,
              "timeouts": 0, "unexpected": 0}
    stop_at = time.monotonic() + duration_s

    def reader(worker: int) -> None:
        i = worker
        while time.monotonic() < stop_at:
            index = i % len(queries)
            i += 1
            start = time.perf_counter()
            try:
                grid = queries[index]()
            except ServingOverloadError:
                with lock:
                    counts["shed"] += 1
                continue
            except QueryTimeoutError:
                with lock:
                    counts["timeouts"] += 1
                continue
            except Exception:  # pragma: no cover - the bench's failure mode
                with lock:
                    counts["unexpected"] += 1
                continue
            elapsed_ms = (time.perf_counter() - start) * 1e3
            correct = _fingerprint(grid) == oracle[index]
            with lock:
                latencies_ms.append(elapsed_ms)
                counts["completed"] += 1
                if not correct:
                    counts["wrong"] += 1

    with faults.injected(plan):
        threads = [
            threading.Thread(target=reader, args=(w,), daemon=True)
            for w in range(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=duration_s + 30.0)

    deadline_s = runtime.config.default_deadline_s or 1.0
    p99_bound_ms = deadline_s * P99_DEADLINE_FACTOR * 1e3
    p99 = _pct(latencies_ms, 0.99)
    return {
        "readers": readers,
        "duration_s": duration_s,
        **counts,
        "p50_ms": round(_pct(latencies_ms, 0.5), 3) if latencies_ms else None,
        "p99_ms": round(p99, 3) if p99 is not None else None,
        "p99_bound_ms": p99_bound_ms,
        "breakers": {
            name: brk.snapshot() for name, brk in runtime.breakers.items()
        },
        "ok": (
            counts["completed"] > 0
            and counts["wrong"] == 0
            and counts["unexpected"] == 0
            and p99 is not None
            and p99 <= p99_bound_ms
        ),
    }


def _bench_deadline(system: DDDGMS, probes: int, budget_s: float) -> dict:
    """A stalled cache against a short budget: timeouts must be bounded."""
    plan = FaultPlan([FaultRule(point="serving.cache", mode="stall", nth=0)])
    elapsed_ms: list[float] = []
    timeouts = 0
    with faults.injected(plan):
        for _ in range(probes):
            start = time.perf_counter()
            try:
                (system.query().rows("age_band").columns("gender")
                 .count_records("attendances").within(budget_s).execute())
            except QueryTimeoutError:
                timeouts += 1
            elapsed_ms.append((time.perf_counter() - start) * 1e3)

    bound_ms = (budget_s + DEADLINE_GRACE_S) * 1e3
    max_ms = max(elapsed_ms) if elapsed_ms else None
    return {
        "probes": probes,
        "budget_ms": budget_s * 1e3,
        "timeouts": timeouts,
        "max_elapsed_ms": round(max_ms, 3) if max_ms is not None else None,
        "bound_ms": bound_ms,
        "ok": (
            timeouts == probes
            and max_ms is not None
            and max_ms <= bound_ms
        ),
    }


def run_overload_bench(
    patients: int = 150,
    seed: int = 42,
    oversubscription: int = 4,
    duration_s: float = 2.0,
    shed_probes: int = 50,
    out: "Path | str" = "BENCH_overload.json",
) -> dict:
    """Run all three phases and write ``BENCH_overload.json``."""
    config = ServingConfig(
        max_in_flight=4,
        max_queue=8,
        queue_timeout_s=0.5,
        default_deadline_s=1.0,
    )
    reset_breakers()
    cohort = DiScRiGenerator(n_patients=patients, seed=seed).generate()
    system = DDDGMS(cohort)
    system.attach_result_cache(True)
    system.materialize_lattice()

    # the recompute oracle: fingerprints at the (fixed) serving epoch,
    # taken before any fault is armed or any limit attached
    oracle = [_fingerprint(query()) for query in _queries(system)]

    # the shed phase gets a long queue timeout so the queue fillers
    # outlast every probe — the queue stays provably full throughout
    shed_runtime = system.attach_serving(ServingConfig(
        max_in_flight=config.max_in_flight,
        max_queue=config.max_queue,
        queue_timeout_s=30.0,
        default_deadline_s=config.default_deadline_s,
    ))
    shed = _bench_shed(shed_runtime, system, probes=shed_probes)
    runtime = system.attach_serving(config)
    reset_breakers()
    chaos = _bench_chaos(
        runtime, system, oracle,
        readers=oversubscription * config.max_in_flight,
        duration_s=duration_s,
    )
    reset_breakers()
    deadline = _bench_deadline(system, probes=3, budget_s=0.3)
    reset_breakers()

    payload = {
        "bench": "overload",
        "config": {
            "patients": patients,
            "seed": seed,
            "oversubscription": oversubscription,
            "duration_s": duration_s,
            "max_in_flight": config.max_in_flight,
            "max_queue": config.max_queue,
            "queue_timeout_s": config.queue_timeout_s,
            "default_deadline_s": config.default_deadline_s,
        },
        "cpu_count": os.cpu_count(),
        "shed": shed,
        "chaos": chaos,
        "deadline": deadline,
        "admission": runtime.gate.snapshot(),
        "ok": shed["ok"] and chaos["ok"] and deadline["ok"],
    }
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_summary(payload: dict) -> str:
    shed, chaos, deadline = (
        payload["shed"], payload["chaos"], payload["deadline"]
    )
    lines = ["== overload safety =="]
    lines.append(
        f"shed:     {shed['shed']}/{shed['probes']} rejected, "
        f"max {shed['shed_max_ms']} ms (bound {shed['bound_ms']} ms) "
        f"-> {'ok' if shed['ok'] else 'FAILED'}"
    )
    lines.append(
        f"chaos:    {chaos['completed']} completed / {chaos['wrong']} wrong / "
        f"{chaos['shed']} shed / {chaos['timeouts']} timed out; "
        f"p99 {chaos['p99_ms']} ms (bound {chaos['p99_bound_ms']:.0f} ms) "
        f"-> {'ok' if chaos['ok'] else 'FAILED'}"
    )
    lines.append(
        f"deadline: {deadline['timeouts']}/{deadline['probes']} timed out, "
        f"max {deadline['max_elapsed_ms']} ms "
        f"(bound {deadline['bound_ms']:.0f} ms) "
        f"-> {'ok' if deadline['ok'] else 'FAILED'}"
    )
    lines.append(f"overall: {'ok' if payload['ok'] else 'FAILED'}")
    return "\n".join(lines)
