"""Span sinks: where finished root span trees go.

Three built-ins cover the paper platform's needs: a bounded in-memory
ring (programmatic inspection, ``repro stats``), a JSON-lines file
(offline analysis of a long run), and a human-readable console stream
(debugging a single query).  All receive the *root* span of a finished
tree; children are reachable through it.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import Protocol, TextIO

from repro.obs.trace import Span


class Sink(Protocol):
    """Anything that accepts finished root spans."""

    def emit(self, span: Span) -> None:
        """Receive one finished root span (with its whole subtree)."""
        ...  # pragma: no cover - protocol


class RingBufferSink:
    """Keeps the newest ``capacity`` root spans in memory."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        """Append, evicting the oldest when full."""
        self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        """Retained root spans, oldest first."""
        return list(self._spans)

    def last(self) -> Span | None:
        """The most recent root span, if any."""
        return self._spans[-1] if self._spans else None

    def clear(self) -> None:
        """Drop every retained span."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


class JsonLinesSink:
    """Appends one JSON object per root span to a file.

    The handle is opened lazily and kept open; call :meth:`close` (or use
    the tracer only inside a bounded scope) when the file must be
    complete.  Lines are self-contained JSON, so a reader can tail the
    file while the process runs.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: TextIO | None = None

    def emit(self, span: Span) -> None:
        """Serialise the tree as one line."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(span.to_dict()) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the file handle (safe to call repeatedly)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ConsoleSink:
    """Prints finished trees as indented text.

    ``min_duration_ms`` suppresses noise: only trees at least that slow
    are printed (0 = everything, the "full verbosity" CI mode).
    """

    def __init__(self, stream: TextIO | None = None, min_duration_ms: float = 0.0):
        self.stream = stream if stream is not None else sys.stderr
        self.min_duration_ms = min_duration_ms

    def emit(self, span: Span) -> None:
        """Render the tree when slow enough to matter."""
        if span.duration_ms >= self.min_duration_ms:
            print(span.render(), file=self.stream)
