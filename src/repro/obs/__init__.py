"""Observability core: tracing, metrics, EXPLAIN — dependency-free.

One module-level switch governs the whole subsystem.  Disabled (the
default), every instrumentation point in the engine costs a single
early-return — :func:`span` hands back a shared no-op singleton and the
metric helpers return before touching the registry — so production hot
paths carry their probes for free (asserted by
``benchmarks/bench_obs_overhead.py``).  Enabled via :func:`configure`
(or ``REPRO_OBS`` in the environment), span trees flow to the configured
sinks, query latencies land in fixed-bucket histograms, and queries
slower than the threshold are captured by the slow-query log.

Typical wiring (the :func:`repro.open_system` facade does this for you)::

    from repro import obs

    ring = obs.RingBufferSink()
    obs.configure(sinks=[ring], slow_query_threshold_s=0.5)
    ...                       # run queries
    print(ring.last().render())          # the last query's span tree
    print(obs.metrics().render())        # counters / histograms
    print(obs.slow_log().render())       # offenders over the threshold

EXPLAIN (:mod:`repro.obs.explain`) is independent of the global switch:
it records one query under a context-local tracer, so
``QueryBuilder.explain()`` and ``EXPLAIN SELECT ...`` work even in a
fully disabled process.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.obs.explain import ExplainReport, PlanNode, profile
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.sinks import ConsoleSink, JsonLinesSink, RingBufferSink, Sink
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    activate,
    current_span,
    current_tracer,
)

__all__ = [
    "Span", "Tracer", "NullSpan", "NULL_SPAN", "activate",
    "current_span", "current_tracer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "LATENCY_BUCKETS_S",
    "Sink", "RingBufferSink", "JsonLinesSink", "ConsoleSink",
    "SlowQuery", "SlowQueryLog",
    "PlanNode", "ExplainReport", "profile",
    "configure", "configure_from_env", "configure_mode", "disable", "enabled",
    "span", "count", "observe", "set_gauge", "metrics", "slow_log", "tracer",
    "warn_once", "reset_warn_once",
]

#: Environment switch: "" / "0" off; "1" or "ring" → ring sink;
#: "console" → indented trees on stderr; "jsonl:<path>" → JSON lines.
OBS_ENV = "REPRO_OBS"
#: Environment override for the slow-query threshold, in seconds.
OBS_SLOW_ENV = "REPRO_OBS_SLOW_S"


class _State:
    __slots__ = ("on", "tracer", "registry", "slowlog")

    def __init__(self) -> None:
        self.on = False
        self.tracer: Tracer | None = None
        self.registry = MetricsRegistry()
        self.slowlog = SlowQueryLog()


_STATE = _State()


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def configure(
    *,
    sinks: Sequence[Sink] = (),
    slow_query_threshold_s: float | None = None,
    registry: MetricsRegistry | None = None,
) -> Tracer:
    """Enable observability globally; returns the installed tracer.

    ``sinks`` receive every finished root span tree; queries slower than
    ``slow_query_threshold_s`` (default: keep the current threshold) land
    in the slow-query log.  Calling again replaces the configuration.
    """
    if registry is not None:
        _STATE.registry = registry
    if slow_query_threshold_s is not None:
        _STATE.slowlog.threshold_s = slow_query_threshold_s
    _STATE.tracer = Tracer(sinks=list(sinks), slow_log=_STATE.slowlog)
    _STATE.on = True
    return _STATE.tracer


def disable() -> None:
    """Turn the subsystem off (the no-op fast path); metrics are retained."""
    _STATE.on = False
    _STATE.tracer = None


def enabled() -> bool:
    """True when observability is globally on."""
    return _STATE.on


def configure_from_env(environ: dict | None = None) -> bool:
    """Apply ``REPRO_OBS`` / ``REPRO_OBS_SLOW_S``; returns True if enabled.

    Used by the CLI and the test harness so a whole run can be traced
    without code changes (CI runs the tier-1 suite under
    ``REPRO_OBS=console`` to catch instrumentation-path-only crashes).
    """
    env = environ if environ is not None else os.environ
    mode = env.get(OBS_ENV, "")
    threshold = env.get(OBS_SLOW_ENV, "").strip()
    slow_s = float(threshold) if threshold else None
    return configure_mode(mode, slow_query_threshold_s=slow_s)


def configure_mode(
    mode: str, *, slow_query_threshold_s: float | None = None
) -> bool:
    """Configure from a mode string; returns True if tracing is now on.

    Modes mirror ``REPRO_OBS``: ``""``/``"0"``/``"off"`` disable;
    ``"1"``/``"ring"`` buffer span trees in memory; ``"console"`` prints
    them to stderr; ``"jsonl:<path>"`` appends them as JSON lines.
    """
    mode = mode.strip().lower()
    if mode in ("", "0", "false", "no", "off"):
        disable()
        return False
    if mode in ("1", "true", "yes", "on", "ring"):
        sinks: list[Sink] = [RingBufferSink()]
    elif mode == "console":
        sinks = [ConsoleSink()]
    elif mode.startswith("jsonl:"):
        sinks = [JsonLinesSink(mode.split(":", 1)[1])]
    else:
        raise ValueError(
            f"unrecognised {OBS_ENV}={mode!r} "
            "(use 1|ring|console|jsonl:<path>|0)"
        )
    configure(sinks=sinks, slow_query_threshold_s=slow_query_threshold_s)
    return True


# ---------------------------------------------------------------------------
# Hot-path API
# ---------------------------------------------------------------------------


def span(name: str, **attrs: object) -> Span | NullSpan:
    """A context-managed timed span, or the no-op singleton when off.

    A context-local tracer (installed by :func:`activate` — EXPLAIN,
    tests) takes precedence over the global one, so a single query can be
    recorded inside an otherwise untraced process.
    """
    tracer = current_tracer()
    if tracer is None:
        tracer = _STATE.tracer
        if tracer is None:
            return NULL_SPAN
    return tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    if _STATE.on:
        _STATE.registry.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op while disabled)."""
    if _STATE.on:
        _STATE.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if _STATE.on:
        _STATE.registry.gauge(name).set(value)


#: keys already warned through :func:`warn_once` this process
_warned_once: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit a one-shot :class:`RuntimeWarning` keyed by ``key``.

    The counter ``key`` is incremented on *every* call (so chaos runs can
    assert on repeat degradations) but the warning itself fires once per
    process — a silently-degrading subsystem announces itself without
    spamming every subsequent operation.  Returns ``True`` when the
    warning was actually emitted.
    """
    import warnings

    count(key)
    if key in _warned_once:
        return False
    _warned_once.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)
    return True


def reset_warn_once(key: str | None = None) -> None:
    """Forget one (or every) :func:`warn_once` key — test hygiene hook."""
    if key is None:
        _warned_once.clear()
    else:
        _warned_once.discard(key)


def metrics() -> MetricsRegistry:
    """The global registry (readable even while disabled)."""
    return _STATE.registry


def slow_log() -> SlowQueryLog:
    """The global slow-query log."""
    return _STATE.slowlog


def tracer() -> Tracer | None:
    """The globally installed tracer (None while disabled)."""
    return _STATE.tracer
