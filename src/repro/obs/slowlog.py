"""Slow-query log: root query spans slower than a threshold.

Only spans carrying a ``query`` attribute are considered — the facade's
query entry points (builder, MDX, DG-SQL) tag their root spans with the
query text, so internal maintenance spans (checkpoints, rebuilds) never
pollute the log.  Entries are kept in a bounded ring, newest last.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.obs.trace import Span


@dataclass(frozen=True)
class SlowQuery:
    """One logged offender."""

    when: float          # epoch seconds at detection
    name: str            # root span name (query / mdx / dgsql)
    query: str           # the query text
    duration_s: float

    def render(self) -> str:
        """One log line."""
        stamp = time.strftime("%H:%M:%S", time.localtime(self.when))
        return f"{stamp}  {self.duration_s * 1e3:8.1f} ms  {self.name}  {self.query}"


class SlowQueryLog:
    """Bounded record of query spans exceeding ``threshold_s``."""

    def __init__(self, threshold_s: float = 1.0, capacity: int = 128):
        if threshold_s < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_s = threshold_s
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)

    def consider(self, span: Span) -> bool:
        """Record the span if it is a query and slow; returns True if logged."""
        query = span.attrs.get("query")
        if query is None or span.duration_s < self.threshold_s:
            return False
        self._entries.append(
            SlowQuery(time.time(), span.name, str(query), span.duration_s)
        )
        return True

    @property
    def entries(self) -> list[SlowQuery]:
        """Logged queries, oldest first."""
        return list(self._entries)

    def render(self) -> str:
        """The whole log as text (empty string when clean)."""
        return "\n".join(entry.render() for entry in self._entries)

    def clear(self) -> None:
        """Forget everything."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
