"""Counters, gauges and fixed-bucket histograms.

The registry is deliberately primitive: plain Python objects mutated
in-process, no locks (the engine is single-threaded per the storage
layer's contract), no label cartesians — a metric name is the full
identity.  Histograms use fixed upper-bound buckets so percentile
estimates cost O(buckets) and memory stays constant regardless of
observation volume; exact min/max/sum/count ride along for calibration.
"""

from __future__ import annotations

import bisect
import math

#: Default latency buckets (seconds): ~100 µs to 10 s, roughly log-spaced.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative)."""
        self.value += n

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (snapshot sizes, cache entry counts, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def snapshot(self) -> dict:
        """JSON-ready state."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket distribution with percentile estimates.

    ``buckets`` are inclusive upper bounds in ascending order; a final
    implicit +inf bucket catches everything above the last bound.
    Percentiles interpolate linearly inside the containing bucket (the
    Prometheus ``histogram_quantile`` convention), so they are estimates
    bounded by bucket width — good enough for latency monitoring, not for
    billing.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_S):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {name!r}: buckets must be strictly ascending")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0 < p <= 100), 0 when empty."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self.buckets):
                    return self.max  # +inf bucket: best bound we have
                low = self.buckets[i - 1] if i else 0.0
                high = self.buckets[i]
                fraction = (rank - cumulative) / bucket_count
                return low + (high - low) * fraction
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> dict:
        """JSON-ready summary (count, mean, p50/p95/p99, min/max)."""
        if self.count == 0:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name → metric, with get-or-create accessors.

    Requesting an existing name with a different metric type raises — a
    typo'd call site would otherwise silently split a series.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_S
    ) -> Histogram:
        """Get or create a histogram (``buckets`` applies on first creation)."""
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self, prefix: str = "") -> list[str]:
        """Registered metric names, sorted; optionally prefix-filtered."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """Name → JSON-ready state, sorted by name.

        ``prefix`` narrows to one subsystem's series (e.g. ``"ingest."``
        for quarantine/retry/degradation health).
        """
        return {
            name: self._metrics[name].snapshot() for name in self.names(prefix)
        }

    def render(self, prefix: str = "") -> str:
        """Human-readable table, one metric per line."""
        lines = []
        for name, snap in self.snapshot(prefix).items():
            kind = snap.pop("type")
            if kind == "histogram" and snap.get("count"):
                detail = (
                    f"count={snap['count']} mean={snap['mean']:.6f} "
                    f"p50={snap['p50']:.6f} p95={snap['p95']:.6f} "
                    f"max={snap['max']:.6f}"
                )
            else:
                detail = " ".join(f"{k}={v}" for k, v in snap.items())
            lines.append(f"{name:<48} {kind:<10} {detail}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric (tests and fresh sessions)."""
        self._metrics.clear()
