"""Query plans and profiles: the EXPLAIN machinery.

EXPLAIN here is *measured*, not estimated: the query actually runs once
under a context-local recording tracer (so it works even when global
tracing is off), and the captured span tree — which stage took how long,
how many rows were scanned, whether the aggregate came from a lattice
node or a base fact scan — is re-shaped into a :class:`PlanNode` tree.
The result grid rides along in the :class:`ExplainReport`, so callers
can show the numbers next to the plan that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.sinks import RingBufferSink
from repro.obs.trace import Span, Tracer, activate


@dataclass
class PlanNode:
    """One stage of an executed query plan."""

    op: str
    duration_ms: float
    attrs: dict = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)
    error: str | None = None

    @classmethod
    def from_span(cls, span: Span) -> "PlanNode":
        """Re-shape a finished span subtree into a plan tree."""
        return cls(
            op=span.name,
            duration_ms=round(span.duration_ms, 4),
            attrs=dict(span.attrs),
            children=[cls.from_span(c) for c in span.children],
            error=span.error,
        )

    def walk(self) -> Iterator["PlanNode"]:
        """This node then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, op: str) -> "PlanNode | None":
        """First node whose op equals ``op`` (depth-first), if any."""
        for node in self.walk():
            if node.op == op:
                return node
        return None

    def to_dict(self) -> dict:
        """JSON-ready rendering."""
        payload: dict[str, object] = {"op": self.op, "duration_ms": self.duration_ms}
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def to_text(self, indent: int = 0, timings: bool = True) -> str:
        """Indented plan tree; ``timings=False`` gives a stable golden form."""
        pad = "  " * indent
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        line = f"{pad}-> {self.op}"
        if attrs:
            line += f" ({attrs})"
        if timings:
            line += f"  [{self.duration_ms:.3f} ms]"
        if self.error is not None:
            line += f"  !{self.error}"
        lines = [line]
        lines.extend(c.to_text(indent + 1, timings) for c in self.children)
        return "\n".join(lines)


@dataclass
class ExplainReport:
    """A measured plan plus the grid the measured run produced."""

    query: str
    plan: PlanNode
    result: object | None = None

    @property
    def total_ms(self) -> float:
        """End-to-end wall time of the profiled execution."""
        return self.plan.duration_ms

    def to_text(self, timings: bool = True) -> str:
        """Query, plan tree and totals as displayable text."""
        header = self.query
        if not header.lstrip().upper().startswith("EXPLAIN"):
            header = f"EXPLAIN {header}"
        lines = [header, self.plan.to_text(timings=timings)]
        if timings:
            lines.append(f"total: {self.total_ms:.3f} ms")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready rendering (plan only; the grid renders itself)."""
        return {"query": self.query, "plan": self.plan.to_dict()}

    def partition_stats(self) -> dict | None:
        """Partition-pruning summary from the base scan, if one ran.

        Returns ``{partitions_scanned, partitions_pruned, segments_total,
        partitions}`` where ``partitions`` lists per-partition detail
        (segment id, band/bucket key, estimated vs actual rows, ms) —
        ``None`` when the query answered without a partitioned base scan
        (lattice hit, cache hit, or no partitioned store attached).
        """
        import json

        for node in self.plan.walk():
            if node.op != "scan.base":
                continue
            attrs = node.attrs
            if "partitions_scanned" not in attrs:
                continue
            detail = attrs.get("partition_detail")
            return {
                "partitions_scanned": attrs["partitions_scanned"],
                "partitions_pruned": attrs["partitions_pruned"],
                "segments_total": attrs["segments_total"],
                "partitions": json.loads(detail) if detail else [],
            }
        return None

    def cost_stats(self) -> list[dict]:
        """Estimated vs. actual cost per planned stage, if a planner ran.

        One entry per plan node that carries an ``est_cost_ms``
        estimate (the cost-based planner stamps it onto
        ``lattice.lookup`` and ``scan.base`` spans at decision time):
        ``{op, est_cost_ms, actual_ms, ...}`` plus whichever routing
        attributes the stage recorded (``route``, ``outcome``,
        ``fallback_reason``, ``node``, ``est_rows``).  Empty when no
        planner is attached — estimates are opt-in, measurements are
        not.
        """
        entries = []
        for node in self.plan.walk():
            if "est_cost_ms" not in node.attrs:
                continue
            entry = {
                "op": node.op,
                "est_cost_ms": node.attrs["est_cost_ms"],
                "actual_ms": node.duration_ms,
            }
            for key in (
                "route", "outcome", "fallback_reason", "node", "est_rows",
                "node_cells", "planned",
            ):
                if key in node.attrs:
                    entry[key] = node.attrs[key]
            entries.append(entry)
        return entries

    def fallback_reasons(self) -> list[str]:
        """Every ``fallback_reason`` recorded in the plan, in plan order.

        Distinguishes *why* a stage fell back to the base scan:
        ``"epoch_mismatch"`` (staleness guard), ``"no_covering_node"``
        (lattice coverage miss) or ``"planner_cost"`` (the cost-based
        router preferred the pruned scan).
        """
        return [
            node.attrs["fallback_reason"]
            for node in self.plan.walk()
            if "fallback_reason" in node.attrs
        ]

    def __str__(self) -> str:
        return self.to_text()


def profile(root_name: str, fn: Callable[[], object], **attrs: object) -> tuple[object, PlanNode]:
    """Run ``fn`` once under a recording tracer; return (result, plan).

    The recording tracer is installed for the current context only, so a
    profiled run records its full span tree regardless of (and without
    disturbing) the global observability configuration.
    """
    ring = RingBufferSink(capacity=1)
    tracer = Tracer(sinks=[ring])
    with activate(tracer):
        with tracer.span(root_name, **attrs):
            result = fn()
    root = ring.last()
    assert root is not None  # the span above always lands in the ring
    return result, PlanNode.from_span(root)
