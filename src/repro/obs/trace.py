"""Nested timed spans with contextvar propagation.

A :class:`Span` measures one operation; entering a span makes it the
*current* span (per :mod:`contextvars` context, so concurrent tasks do not
interleave their trees) and any span opened inside becomes its child.
When a **root** span closes, the finished tree is handed to the owning
:class:`Tracer`'s sinks and, when the tree is slower than the configured
threshold and carries a ``query`` attribute, to the slow-query log.

The disabled path is the design constraint: every hot-path call site goes
through :func:`repro.obs.span`, which returns the module-level
:data:`NULL_SPAN` singleton when no tracer is active.  That singleton's
``__enter__``/``__exit__``/``set`` do nothing and allocate nothing, so
instrumentation left in production code costs one attribute check per
operation — asserted by ``benchmarks/bench_obs_overhead.py``.

Spans deliberately record wall time only (``time.perf_counter_ns``); this
is a single-process analytical engine, so there is no clock-domain or
cross-host correlation to worry about.
"""

from __future__ import annotations

import contextvars
import time
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sinks import Sink
    from repro.obs.slowlog import SlowQueryLog

#: The span currently open in this context (None at top level).
_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: A tracer forced active for this context (EXPLAIN / tests), overriding
#: the globally configured one.
_context_tracer: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "repro_obs_context_tracer", default=None
)


class NullSpan:
    """The do-nothing span: a reusable context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: object) -> "NullSpan":
        """Ignore attributes (mirrors :meth:`Span.set`)."""
        return self

    @property
    def recording(self) -> bool:
        """Never recording."""
        return False


#: Shared no-op instance returned whenever tracing is off.
NULL_SPAN = NullSpan()


class Span:
    """One timed operation, with attributes and child spans."""

    __slots__ = (
        "name", "attrs", "children", "tracer",
        "start_ns", "end_ns", "error", "_token",
    )

    def __init__(self, name: str, tracer: "Tracer", attrs: dict | None = None):
        self.name = name
        self.tracer = tracer
        self.attrs: dict[str, object] = attrs or {}
        self.children: list[Span] = []
        self.start_ns = 0
        self.end_ns = 0
        self.error: str | None = None
        self._token: contextvars.Token | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        parent = _current_span.get()
        if parent is not None:
            parent.children.append(self)
        self._token = _current_span.set(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if exc is not None:
            # Record the failure but never swallow it: the span tree shows
            # exactly which stage raised, with its partial timings intact.
            self.error = f"{type(exc).__name__}: {exc}"
        if self._token is not None:
            was_root = self._token.old_value in (None, contextvars.Token.MISSING)
            _current_span.reset(self._token)
            self._token = None
            if was_root:
                self.tracer._finish_root(self)
        return False

    # -- data --------------------------------------------------------------

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (rows scanned, cache outcome, ...)."""
        self.attrs.update(attrs)
        return self

    @property
    def recording(self) -> bool:
        """True — attribute computation is worth the cost here."""
        return True

    @property
    def duration_s(self) -> float:
        """Wall time in seconds (0 until the span closes)."""
        if not self.end_ns:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e9

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds."""
        return self.duration_s * 1e3

    def walk(self) -> Iterator["Span"]:
        """This span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self) -> dict:
        """JSON-ready rendering of the subtree."""
        payload: dict[str, object] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.attrs:
            payload["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def render(self, indent: int = 0) -> str:
        """Human-readable indented tree."""
        pad = "  " * indent
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        line = f"{pad}{self.name}  {self.duration_ms:.3f} ms"
        if attrs:
            line += f"  [{attrs}]"
        if self.error is not None:
            line += f"  !{self.error}"
        lines = [line]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_ms:.3f} ms, {len(self.children)} children)"


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Produces spans and routes finished root trees to sinks.

    One tracer is installed globally by :func:`repro.obs.configure`;
    :func:`activate` can force another for the current context (how
    EXPLAIN records a single query without enabling tracing globally).
    """

    def __init__(
        self,
        sinks: "list[Sink] | None" = None,
        slow_log: "SlowQueryLog | None" = None,
    ):
        self.sinks: list[Sink] = list(sinks or [])
        self.slow_log = slow_log

    def span(self, name: str, **attrs: object) -> Span:
        """Open a new (not yet entered) span owned by this tracer."""
        return Span(name, self, attrs or None)

    def _finish_root(self, root: Span) -> None:
        for sink in self.sinks:
            sink.emit(root)
        if self.slow_log is not None:
            self.slow_log.consider(root)


def current_tracer() -> Tracer | None:
    """The context-forced tracer, if any (global fallback lives in repro.obs)."""
    return _context_tracer.get()


class activate:
    """Context manager forcing ``tracer`` active for the current context.

    Nested use restores the previous tracer on exit.  Used by EXPLAIN and
    by tests that must record regardless of global configuration.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Tracer:
        self._token = _context_tracer.set(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is not None:
            _context_tracer.reset(self._token)
            self._token = None
        return False


def current_span() -> Span | None:
    """The innermost open span in this context (None when idle)."""
    return _current_span.get()
