"""The route chooser and the :class:`QueryPlanner` facade.

Per covered query the router compares every candidate route's estimated
cost and picks the cheapest:

=================  ==========================  =======================
route              work units                  historical preference
=================  ==========================  =======================
materialized node  cells of the covering node  smallest covering node
partial rollup     (same — a coarser query      (same node, rolled up)
                   over the same node)
pruned base scan   zone-map estimated rows     only when nothing covers
=================  ==========================  =======================

While the cost model is cold the router reproduces the historical
preference *exactly* (smallest covering node, else base scan), so a
planner-attached cube with no recorded workload behaves byte- and
counter-identically to one without a planner.  Decisions carry their
estimate and reason into the ``lattice.lookup`` span, where
``explain()`` shows them next to the measured time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro import obs
from repro.planner.cost import CostModel
from repro.planner.stats import (
    PlanSignature,
    WorkloadStats,
    classify_request,
    estimate_base_rows,
)
from repro.serving.resilience import current_deadline


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs for one :class:`QueryPlanner` (``SystemConfig(planner=...)``).

    ``min_samples`` is how many observed executions *per route kind*
    the cost model needs before the router may override the historical
    route preference.  ``budget_nodes`` / ``budget_cells`` bound the
    adaptive materializer's selection (see
    :func:`repro.planner.adaptive.select_nodes`); ``min_gain_fraction``
    is its diminishing-returns stop.  ``enabled=False`` keeps recording
    statistics but never changes a route — the observe-only mode.
    """

    enabled: bool = True
    min_samples: int = 5
    budget_nodes: int = 4
    budget_cells: int | None = None
    min_gain_fraction: float = 0.0


@dataclass(frozen=True)
class RouteDecision:
    """One routing decision, ready to be stamped onto the plan span."""

    #: ``"node"`` (answer from ``node_index``) or ``"base"`` (scan)
    kind: str
    #: index into the candidate covering-node list (``None`` for base)
    node_index: int | None
    #: the chosen route's estimated cost
    est_cost_ms: float
    #: ``"cold_stats"`` (historical preference kept) or ``"cost"``
    reason: str
    #: every candidate considered, as ``(label, est_ms)`` — for debugging
    alternatives: tuple[tuple[str, float], ...] = ()
    #: the chosen estimate exceeds the query's remaining deadline — the
    #: serving tier's deadline still governs; this only flags the risk
    deadline_risk: bool = False


class QueryPlanner:
    """Statistics + cost model + router, attachable to a cube.

    One planner instance survives epoch publishes and cube rebuilds
    (like the result cache and serving runtime): the workload it learns
    belongs to the system, not to one epoch.
    """

    def __init__(self, config: PlannerConfig | None = None):
        self.config = config or PlannerConfig()
        self.stats = WorkloadStats()
        self.cost = CostModel(self.stats, min_samples=self.config.min_samples)
        self._lock = threading.Lock()
        #: routing decision counts by ``f"{kind}:{reason}"``
        self.route_counts: dict[str, int] = {}

    # -- recording (hot path, every query) ------------------------------

    def classify(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters,
        records: str,
        fact_measures,
    ) -> PlanSignature:
        """The request's :class:`PlanSignature` (see ``classify_request``)."""
        return classify_request(
            levels, aggregations, filters, records, fact_measures
        )

    def note_query(
        self,
        key: Hashable,
        signature: PlanSignature,
        base_rows: int,
        *,
        cache_hit: bool = False,
    ) -> None:
        """Record one served request for the adaptive materializer."""
        self.stats.note_query(key, signature, base_rows, cache_hit=cache_hit)

    def observe_route(self, kind: str, ms: float, units: int) -> None:
        """Record one measured route execution for calibration."""
        self.stats.observe_route(kind, ms, units)

    def estimate_base_rows(self, state, filters) -> int:
        """Zone-map (or flat-view) row estimate for the base route."""
        return estimate_base_rows(state, filters)

    # -- routing --------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when the router may override the historical preference."""
        return self.config.enabled and self.cost.calibrated()

    def choose_route(
        self,
        candidates: Sequence[tuple[str, int]],
        base_rows: int,
    ) -> RouteDecision | None:
        """Pick the cheapest route for one covered query.

        ``candidates`` is the covering nodes smallest-first as
        ``(label, cells)`` — the historical preference is index 0.
        Returns ``None`` when routing is disabled outright; a
        ``cold_stats`` decision mirroring the historical preference
        when the model is not yet calibrated.
        """
        if not self.config.enabled or not candidates:
            return None
        base_est = self.cost.estimate_base_ms(base_rows)
        node_ests = [
            (label, self.cost.estimate_node_ms(cells))
            for label, cells in candidates
        ]
        alternatives = tuple(node_ests) + (("base_scan", base_est),)
        if not self.cost.calibrated():
            decision = RouteDecision(
                kind="node",
                node_index=0,
                est_cost_ms=node_ests[0][1],
                reason="cold_stats",
                alternatives=alternatives,
            )
        else:
            best_index = min(
                range(len(node_ests)), key=lambda i: node_ests[i][1]
            )
            if base_est < node_ests[best_index][1]:
                decision = RouteDecision(
                    kind="base",
                    node_index=None,
                    est_cost_ms=base_est,
                    reason="cost",
                    alternatives=alternatives,
                )
            else:
                decision = RouteDecision(
                    kind="node",
                    node_index=best_index,
                    est_cost_ms=node_ests[best_index][1],
                    reason="cost",
                    alternatives=alternatives,
                )
        deadline = current_deadline()
        remaining = deadline.remaining() if deadline is not None else None
        if remaining is not None and decision.est_cost_ms > remaining * 1000.0:
            decision = RouteDecision(
                kind=decision.kind,
                node_index=decision.node_index,
                est_cost_ms=decision.est_cost_ms,
                reason=decision.reason,
                alternatives=decision.alternatives,
                deadline_risk=True,
            )
        label = f"{decision.kind}:{decision.reason}"
        with self._lock:
            self.route_counts[label] = self.route_counts.get(label, 0) + 1
        obs.count(f"planner.route.{decision.kind}")
        return decision

    # -- health ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready planner state for ``ingest_health()["planner"]``."""
        with self._lock:
            routes = dict(sorted(self.route_counts.items()))
        return {
            "enabled": self.config.enabled,
            "active": self.active,
            "cost_model": self.cost.snapshot(),
            "workload": self.stats.snapshot(),
            "routes_chosen": routes,
            "budget": {
                "nodes": self.config.budget_nodes,
                "cells": self.config.budget_cells,
            },
        }


def coerce_planner(
    value: "QueryPlanner | PlannerConfig | bool | None",
) -> "QueryPlanner | None":
    """Every ``SystemConfig(planner=...)`` spelling to a planner or None.

    ``True`` builds one with defaults, a :class:`PlannerConfig`
    configures a fresh one, a ready :class:`QueryPlanner` is shared
    as-is (its learned workload included), ``None``/``False`` disables
    planning entirely.
    """
    if value is None or value is False:
        return None
    if value is True:
        return QueryPlanner()
    if isinstance(value, PlannerConfig):
        return QueryPlanner(value)
    if isinstance(value, QueryPlanner):
        return value
    raise TypeError(
        "planner= takes a QueryPlanner, a PlannerConfig, True/False or None, "
        f"not {type(value).__name__}"
    )
