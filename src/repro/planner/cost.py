"""The cost model: recorded statistics in, estimated milliseconds out.

One formula per route, deliberately simple enough to reason about in a
test (DESIGN.md §"Cost-based planning"):

    est_ms(route, units) = max(floor_ms(route), units * rate(route))

where ``rate`` is the observed mean ms per work unit (cells for a
lattice-node answer, estimated rows for a base scan) and ``floor`` is
the cheapest call ever observed for that route — the fixed overhead a
tiny query cannot go below.  Until a route has ``min_samples``
observations the model is *cold* and uses conservative built-in rates;
cold estimates are surfaced like any other (so EXPLAIN always shows
``est_cost_ms``) but the router refuses to override the historical
route preference on them.

``ACCURACY_FACTOR`` is the declared bound the regression suite holds
calibrated estimates to: on a workload the model was calibrated on,
``est_cost_ms`` stays within this factor of the measured stage time.
"""

from __future__ import annotations

from repro.planner.stats import WorkloadStats

#: cold-start rate guesses (ms per unit), used before calibration: a
#: few million flat-view rows or lattice cells per second — the right
#: order of magnitude for the vectorized kernels on one core
COLD_BASE_MS_PER_ROW = 5e-4
COLD_NODE_MS_PER_CELL = 5e-4

#: cold-start fixed overhead per answered query, ms
COLD_FLOOR_MS = 0.05

#: declared estimate accuracy: calibrated estimates stay within this
#: multiplicative factor of the measured time on the calibrating
#: workload (asserted by tests/planner/test_cost_model.py)
ACCURACY_FACTOR = 50.0


class CostModel:
    """Per-route cost estimates over one :class:`WorkloadStats` ledger."""

    ACCURACY_FACTOR = ACCURACY_FACTOR

    def __init__(self, stats: WorkloadStats, min_samples: int = 5):
        self.stats = stats
        self.min_samples = max(1, int(min_samples))

    # -- calibration state ---------------------------------------------

    def route_calibrated(self, kind: str) -> bool:
        """True once ``kind`` has enough samples to trust its rate."""
        return self.stats.calibrated(kind, self.min_samples)

    def calibrated(self) -> bool:
        """True once *every* route kind is calibrated.

        The router only overrides the historical fixed preference when
        both sides of the comparison rest on observed rates — comparing
        a measured route against a guessed one would let one cold
        default flip every decision.
        """
        return all(self.route_calibrated(kind) for kind in WorkloadStats.KINDS)

    # -- estimates ------------------------------------------------------

    def _estimate(
        self, kind: str, units: int, cold_rate: float
    ) -> float:
        if self.route_calibrated(kind):
            rate = self.stats.rate(kind)
            floor = self.stats.floor(kind)
        else:
            rate, floor = cold_rate, COLD_FLOOR_MS
        return max(floor, max(int(units), 0) * rate)

    def estimate_node_ms(self, cells: int) -> float:
        """Estimated ms to answer from a lattice node of ``cells`` cells."""
        return self._estimate("node", cells, COLD_NODE_MS_PER_CELL)

    def estimate_base_ms(self, rows: int) -> float:
        """Estimated ms for a (pruned) base scan over ``rows`` est. rows."""
        return self._estimate("base", rows, COLD_BASE_MS_PER_ROW)

    def snapshot(self) -> dict:
        """JSON-ready calibration summary."""
        return {
            "calibrated": self.calibrated(),
            "min_samples": self.min_samples,
            "accuracy_factor": self.ACCURACY_FACTOR,
            "routes": {
                kind: {
                    "calibrated": self.route_calibrated(kind),
                    "ms_per_unit": round(self.stats.rate(kind), 9),
                    "floor_ms": round(self.stats.floor(kind), 4),
                }
                for kind in WorkloadStats.KINDS
            },
        }
