"""Workload-adaptive lattice-node selection (HRU-style greedy).

Candidate nodes are the distinct *wanted sets* of the recorded workload
(grouping levels plus filter columns — exactly what a covering node
must materialize).  Each candidate is scored by the benefit it would
buy the whole workload:

    benefit(node) = sum over covered plans of
        max(0, current_cost(plan) - est_node_ms(node)) * weight(plan)

where ``current_cost`` starts at the plan's estimated base-scan cost
and drops as nodes are selected, and ``weight`` is the plan's observed
frequency minus its result-cache hits (a query the cache already
answers buys nothing from materialization).  Selection is the greedy
algorithm of Harinarayan/Rajaraman/Ullman: repeatedly take the highest
positive-benefit candidate that fits the remaining node/cell budget,
re-scoring after each pick, optionally stopping early when the marginal
gain falls below ``min_gain_fraction`` of the first pick's gain (the
diminishing-returns stop a skewed workload earns).

Node sizes are estimated without building anything: a node over levels
``L`` has at most ``min(flat_rows, product of per-level cardinalities)``
cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.planner.cost import CostModel
from repro.planner.stats import PlanSignature, WorkloadStats


@dataclass(frozen=True)
class NodeCandidate:
    """One scoreable lattice node."""

    levels: tuple[str, ...]
    est_cells: int


@dataclass
class Selection:
    """The adaptive materializer's output: what to build and why."""

    #: level groups to materialize, selection order
    groups: list[list[str]]
    #: per-selected-node report: levels, est_cells, benefit_ms, plans
    report: list[dict]
    #: candidates considered but not selected (for health/debugging)
    rejected: int
    budget_nodes: int
    budget_cells: int | None

    @property
    def est_cells_total(self) -> int:
        return sum(entry["est_cells"] for entry in self.report)

    def to_dict(self) -> dict:
        return {
            "groups": [list(g) for g in self.groups],
            "report": list(self.report),
            "rejected": self.rejected,
            "budget_nodes": self.budget_nodes,
            "budget_cells": self.budget_cells,
            "est_cells_total": self.est_cells_total,
        }


def _candidates(
    records: Iterable[tuple[object, PlanSignature, int, int, int]],
    available_levels: set[str],
    cardinality: Callable[[str], int],
    flat_rows: int,
) -> tuple[list[NodeCandidate], dict[tuple[str, ...], list[tuple[int, int]]]]:
    """Distinct wanted-sets → candidates, plus per-plan (weight, rows).

    Plans that are not materializable, carry no grouping/filter levels,
    or mention levels the current epoch does not have are skipped — the
    router would never send them to a node anyway.
    """
    card_cache: dict[str, int] = {}

    def card(level: str) -> int:
        value = card_cache.get(level)
        if value is None:
            value = card_cache[level] = max(1, int(cardinality(level)))
        return value

    plans: dict[tuple[str, ...], list[tuple[int, int]]] = {}
    for _key, signature, weight, _hits, base_rows in records:
        if not signature.materializable or not signature.wanted:
            continue
        if not set(signature.wanted) <= available_levels:
            continue
        if weight <= 0:
            continue
        plans.setdefault(signature.wanted, []).append((weight, base_rows))

    candidates = []
    for wanted in sorted(plans):
        cells = 1
        for level in wanted:
            cells *= card(level)
            if cells >= flat_rows:
                cells = flat_rows
                break
        candidates.append(NodeCandidate(wanted, max(1, int(cells))))
    return candidates, plans


def select_nodes(
    stats: WorkloadStats,
    cost: CostModel,
    *,
    available_levels: Iterable[str],
    cardinality: Callable[[str], int],
    flat_rows: int,
    budget_nodes: int,
    budget_cells: int | None = None,
    min_gain_fraction: float = 0.0,
) -> Selection:
    """Greedy benefit-maximal node selection under a node/cell budget.

    Deterministic: candidates tie-break by (smaller estimated size,
    level names), and the recorded-workload snapshot is itself sorted.
    A cold or empty workload selects nothing — the safe default, since
    an unmaterialized lattice simply answers from base scans.
    """
    budget_nodes = max(0, int(budget_nodes))
    records = stats.query_records()
    candidates, plans = _candidates(
        records, set(available_levels), cardinality, max(1, int(flat_rows))
    )
    selected: list[NodeCandidate] = []
    report: list[dict] = []
    if not candidates or budget_nodes == 0:
        return Selection([], [], len(candidates), budget_nodes, budget_cells)

    # current best cost per plan (wanted-set, index into its entry list)
    current: dict[tuple[tuple[str, ...], int], float] = {}
    for wanted, entries in plans.items():
        for i, (_weight, base_rows) in enumerate(entries):
            current[(wanted, i)] = cost.estimate_base_ms(base_rows)

    remaining_cells = budget_cells
    chosen: set[tuple[str, ...]] = set()
    first_gain: float | None = None
    while len(selected) < budget_nodes:
        best: tuple[float, int, tuple[str, ...]] | None = None
        best_candidate: NodeCandidate | None = None
        for candidate in candidates:
            if candidate.levels in chosen:
                continue
            if remaining_cells is not None and candidate.est_cells > remaining_cells:
                continue
            node_ms = cost.estimate_node_ms(candidate.est_cells)
            gain = 0.0
            for wanted, entries in plans.items():
                if not set(wanted) <= set(candidate.levels):
                    continue
                for i, (weight, _rows) in enumerate(entries):
                    saved = current[(wanted, i)] - node_ms
                    if saved > 0:
                        gain += saved * weight
            rank = (-gain, candidate.est_cells, candidate.levels)
            if gain > 0 and (best is None or rank < best):
                best = rank
                best_candidate = candidate
        if best_candidate is None:
            break
        gain = -best[0]
        if first_gain is None:
            first_gain = gain
        elif min_gain_fraction > 0 and gain < first_gain * min_gain_fraction:
            break  # diminishing returns: the rest is not worth a node
        chosen.add(best_candidate.levels)
        selected.append(best_candidate)
        if remaining_cells is not None:
            remaining_cells -= best_candidate.est_cells
        node_ms = cost.estimate_node_ms(best_candidate.est_cells)
        covered_plans = 0
        for wanted, entries in plans.items():
            if not set(wanted) <= set(best_candidate.levels):
                continue
            covered_plans += len(entries)
            for i in range(len(entries)):
                key = (wanted, i)
                if node_ms < current[key]:
                    current[key] = node_ms
        report.append(
            {
                "levels": list(best_candidate.levels),
                "est_cells": best_candidate.est_cells,
                "benefit_ms": round(gain, 3),
                "plans_covered": covered_plans,
            }
        )

    return Selection(
        [list(c.levels) for c in selected],
        report,
        len(candidates) - len(selected),
        budget_nodes,
        budget_cells,
    )
