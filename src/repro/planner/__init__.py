"""Workload-adaptive materialization and cost-based query planning.

The obs layer records per-stage timings, the result cache records hit
rates, and the partitioned store's zone maps estimate rows before a
scan — this package is the consumer those statistics were waiting for
(DESIGN.md §"Cost-based planning"):

* :class:`~repro.planner.stats.WorkloadStats` folds every served query
  into per-plan frequencies and per-route cost calibrations;
* :class:`~repro.planner.cost.CostModel` turns the calibrations into
  estimated milliseconds per candidate route, with honest cold-start
  defaults;
* :class:`~repro.planner.router.RouteChooser` picks the cheapest of
  {materialized node, partial rollup, pruned base scan} per query and
  falls back to the historical fixed preference while stats are cold;
* :class:`~repro.planner.adaptive.select_nodes` scores lattice nodes
  from the observed workload (benefit = saved cost x frequency,
  HRU-style greedy under a node/cell budget) — the engine behind
  ``DDDGMS.materialize_lattice(policy="adaptive")``.

:class:`QueryPlanner` bundles the three and attaches to a cube via
:meth:`repro.olap.cube.Cube.attach_planner`; attached, every query's
plan carries ``est_cost_ms`` next to the measured stage time, so
mis-estimates are visible in ``explain()`` and assertable in tests.
"""

from repro.planner.adaptive import NodeCandidate, Selection, select_nodes
from repro.planner.bench import format_summary, run_planner_bench
from repro.planner.cost import CostModel
from repro.planner.router import (
    PlannerConfig,
    QueryPlanner,
    RouteDecision,
    coerce_planner,
)
from repro.planner.stats import (
    PlanSignature,
    WorkloadStats,
    classify_request,
    estimate_base_rows,
)

__all__ = [
    "CostModel",
    "NodeCandidate",
    "PlanSignature",
    "PlannerConfig",
    "QueryPlanner",
    "RouteDecision",
    "Selection",
    "WorkloadStats",
    "classify_request",
    "coerce_planner",
    "estimate_base_rows",
    "format_summary",
    "run_planner_bench",
    "select_nodes",
]
