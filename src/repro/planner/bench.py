"""The ``plan-bench`` harness (``python -m repro plan-bench``).

Measures the adaptive-materialization claim (DESIGN.md §"Cost-based
planning") and records it in ``BENCH_planner.json``: on a skewed 80/20
workload, materializing only the workload's hot nodes — chosen by the
HRU-style greedy selector from recorded statistics — answers the
workload nearly as fast as materializing everything, while spending a
fraction of the node budget.

One synthetic star, one deterministic query sequence, three configs:

* **lattice-off** — every query is a base scan.  Running this config
  first doubles as the *seed workload*: the attached planner records
  plan frequencies and calibrates its base-scan rate from it.
* **lattice-on** — every distinct query shape gets a materialized
  node: the latency floor, at maximum storage cost.
* **adaptive** — :func:`repro.planner.adaptive.select_nodes` picks
  nodes from the recorded workload under a node budget; the planner
  routes covered queries through them and the rest fall back to
  zone-map-pruned base scans.

The workload is 80% two hot heavy roll-ups, the rest coarser roll-ups
of the same dimensions (covered by the hot nodes) plus a small tail of
uncovered-but-selective queries — the shape clinical dashboard traffic
actually has, and the shape the 1.2x-of-full gate needs to be honest
about: the tail pays real scans in the adaptive config.

Headline numbers the CI gate reads: ``speedup_vs_off`` (>= 2x),
``ratio_vs_on`` (<= 1.2x), ``budget_fraction_used`` (<= 0.5) and the
``parity_ok`` oracle (every adaptive answer byte-identical to the base
scan).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.olap.cube import Cube
from repro.olap.materialized import MaterializedCube
from repro.planner.adaptive import select_nodes
from repro.planner.router import PlannerConfig, QueryPlanner
from repro.tabular.expressions import col
from repro.tabular.table import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


def _rows(rng: np.random.Generator, n: int) -> Table:
    return Table.from_columns(
        {
            "site": [f"s{int(v)}" for v in rng.integers(0, 12, n)],
            "ward": [f"w{int(v)}" for v in rng.integers(0, 8, n)],
            "month": [int(v) for v in rng.integers(1, 13, n)],
            "year": [int(v) for v in rng.integers(2005, 2013, n)],
            "band": [f"b{int(v)}" for v in rng.integers(0, 6, n)],
            "stays": [int(v) for v in rng.integers(0, 50, n)],
            "score": [int(v) for v in rng.integers(0, 1000, n)],
        }
    )


def _loader() -> WarehouseLoader:
    return WarehouseLoader(
        "load", "visits",
        [
            DimensionSpec(Dimension("place", {"site": "str", "ward": "str"})),
            DimensionSpec(Dimension("when", {"month": "int", "year": "int"})),
            DimensionSpec(Dimension("cohort", {"band": "str"})),
        ],
        [Measure.of("stays", "int", "sum", additive=True),
         Measure.of("score", "int", "sum", additive=True)],
    )


#: (levels, aggregations, filter factory) per query shape.  The hot
#: shapes are *filtered* roll-ups — the dashboard "one cohort / one
#: site" slice — which matters for the measurement: unfiltered group-bys
#: hit the cube's per-epoch factorization cache and cost almost nothing
#: even as base scans, so an honest base-vs-node comparison needs
#: predicates that force a fresh filter + group-by per query.
HOT_SHAPES = (
    (
        ["place.site", "when.year"],
        {"stays": ("stays", "sum"), "n": ("records", "size")},
        (lambda: col("cohort.band").eq("b2")),
    ),
    (
        ["cohort.band", "when.month"],
        {"score": ("score", "sum"), "mean_score": ("score", "mean")},
        (lambda: col("place.ward").eq("w3")),
    ),
)
COVERED_SHAPES = (
    (["place.site"], {"stays": ("stays", "sum")}, None),
    (["when.year"], {"n": ("records", "size")}, None),
    (["cohort.band"], {"score": ("score", "max")}, None),
    (["when.month"], {"score": ("score", "sum")}, None),
)
#: the uncovered tail: ward-level slices of one year — selective enough
#: that the year-banded store prunes 7/8 of the segments
UNCOVERED_SHAPES = tuple(
    (
        ["place.ward"],
        {"stays": ("stays", "sum")},
        (lambda year=year: col("when.year").eq(year)),
    )
    for year in (2006, 2009)
)
ALL_SHAPES = HOT_SHAPES + COVERED_SHAPES + UNCOVERED_SHAPES


def _workload(rng: np.random.Generator, queries: int) -> list[int]:
    """Shape index per query: 80% hot, 15% covered roll-ups, 5% tail."""
    picks = []
    for _ in range(queries):
        r = rng.random()
        if r < 0.8:
            picks.append(int(rng.integers(0, len(HOT_SHAPES))))
        elif r < 0.95:
            picks.append(
                len(HOT_SHAPES) + int(rng.integers(0, len(COVERED_SHAPES)))
            )
        else:
            picks.append(
                len(HOT_SHAPES) + len(COVERED_SHAPES)
                + int(rng.integers(0, len(UNCOVERED_SHAPES)))
            )
    return picks


def _run_workload(cube: Cube, sequence: list[int]) -> float:
    started = time.perf_counter()
    for index in sequence:
        levels, aggregations, predicate = ALL_SHAPES[index]
        filters = predicate() if predicate is not None else None
        cube.aggregate(levels, aggregations, filters=filters)
    return time.perf_counter() - started


def _build_cube(rows: Table) -> Cube:
    from repro.storage.columnar import PartitioningSpec, StorageConfig

    loader = _loader()
    loader.load(rows)
    cube = Cube(loader.schema, managed=True)
    cube.attach_storage(
        StorageConfig(
            partitioning=PartitioningSpec(band_column="when.year", band_width=1)
        )
    )
    cube.publish()
    return cube


def run_planner_bench(
    rows: int = 24_000,
    queries: int = 300,
    repeats: int = 3,
    budget_nodes: int = 8,
    seed: int = 11,
    out: "Path | str" = "BENCH_planner.json",
) -> dict:
    """Run the three configs and write ``BENCH_planner.json``."""
    rng = np.random.default_rng(seed)
    data = _rows(rng, rows)
    sequence = _workload(rng, queries)

    # -- lattice off: base scans, and the planner's seed workload -------
    cube = _build_cube(data)
    planner = QueryPlanner(PlannerConfig(budget_nodes=budget_nodes))
    cube.attach_planner(planner)
    t_off = statistics.median(
        _run_workload(cube, sequence) for _ in range(repeats)
    )

    # -- full lattice: every distinct shape materialized ----------------
    full_groups = []
    seen = set()
    for levels, _aggs, predicate in ALL_SHAPES:
        wanted = set(levels)
        if predicate is not None:
            wanted |= set(predicate().columns())
        key = tuple(sorted(wanted))
        if key not in seen:
            seen.add(key)
            full_groups.append(list(key))
    full_lattice = MaterializedCube(cube).materialize(full_groups)
    cube.attach_lattice(full_lattice)
    t_on = statistics.median(
        _run_workload(cube, sequence) for _ in range(repeats)
    )

    # -- adaptive: greedy selection from the recorded workload ----------
    state = cube._current_state()
    selection = select_nodes(
        planner.stats,
        planner.cost,
        available_levels=state.qattrs,
        cardinality=lambda level: len(state.flat.column(level).unique()),
        flat_rows=state.num_rows,
        budget_nodes=budget_nodes,
        min_gain_fraction=0.1,
    )
    adaptive_lattice = MaterializedCube(cube).materialize(selection.groups)
    cube.attach_lattice(adaptive_lattice)
    t_adaptive = statistics.median(
        _run_workload(cube, sequence) for _ in range(repeats)
    )

    # -- parity oracle: every shape, adaptive route vs base scan --------
    parity = True
    for levels, aggregations, predicate in ALL_SHAPES:
        filters = predicate() if predicate is not None else None
        routed = cube.aggregate(levels, aggregations, filters=filters)
        oracle = cube._aggregate_base(levels, aggregations, filters=filters)
        parity = parity and routed.equals(oracle)

    speedup = t_off / t_adaptive if t_adaptive > 0 else None
    ratio = t_adaptive / t_on if t_on > 0 else None
    budget_fraction = (
        len(selection.groups) / budget_nodes if budget_nodes else 0.0
    )
    gates = {
        "speedup_vs_off_min": 2.0,
        "ratio_vs_on_max": 1.2,
        "budget_fraction_max": 0.5,
    }
    ok = bool(
        parity
        and speedup is not None
        and speedup >= gates["speedup_vs_off_min"]
        and ratio is not None
        and ratio <= gates["ratio_vs_on_max"]
        and budget_fraction <= gates["budget_fraction_max"]
    )
    payload = {
        "bench": "planner",
        "config": {
            "rows": rows,
            "queries": queries,
            "repeats": repeats,
            "budget_nodes": budget_nodes,
            "seed": seed,
            "shapes": len(ALL_SHAPES),
        },
        "cpu_count": os.cpu_count(),
        "lattice_off_s": round(t_off, 6),
        "lattice_on_s": round(t_on, 6),
        "adaptive_s": round(t_adaptive, 6),
        "speedup_vs_off": round(speedup, 2) if speedup else None,
        "ratio_vs_on": round(ratio, 3) if ratio else None,
        "nodes_full": len(full_groups),
        "nodes_selected": len(selection.groups),
        "budget_nodes": budget_nodes,
        "budget_fraction_used": round(budget_fraction, 3),
        "selection": selection.to_dict(),
        "planner": planner.snapshot(),
        "parity_ok": parity,
        "gates": gates,
        "ok": ok,
    }
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def format_summary(payload: dict) -> str:
    lines = ["== cost-based planning / adaptive materialization =="]
    lines.append(
        f"workload: {payload['config']['queries']} queries over "
        f"{payload['config']['rows']:,} rows, "
        f"{payload['config']['shapes']} shapes (80/20 skew)"
    )
    lines.append(
        f"lattice off {payload['lattice_off_s'] * 1e3:9.1f} ms   "
        f"full lattice {payload['lattice_on_s'] * 1e3:9.1f} ms   "
        f"adaptive {payload['adaptive_s'] * 1e3:9.1f} ms"
    )
    lines.append(
        f"adaptive vs off: {payload['speedup_vs_off']}x faster   "
        f"vs full: {payload['ratio_vs_on']}x   "
        f"nodes {payload['nodes_selected']}/{payload['budget_nodes']} budget "
        f"({payload['nodes_full']} full)"
    )
    lines.append(f"parity oracle: {'ok' if payload['parity_ok'] else 'FAILED'}")
    lines.append(f"gates: {'ok' if payload['ok'] else 'FAILED'}")
    return "\n".join(lines)
