"""Recorded workload statistics: what the cost model learns from.

Two ledgers, one lock:

* **per-plan frequencies** — every served aggregate request, keyed by
  its canonical :func:`repro.olap.cube.plan_key`, with the wanted
  level set, the measures it needs, whether a lattice node *could*
  answer it, how often it repeated and how often the result cache
  already had it.  The adaptive materializer reads these.
* **per-route calibrations** — observed ``(milliseconds, work units)``
  samples per route kind (``"node"`` in cells, ``"base"`` in rows).
  The cost model's ms/unit rates come from here.

Recording is deliberately cheap (a dict update under one mutex) because
it runs on every query of a planner-attached cube; everything expensive
(scoring, selection) happens at publish time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence


@dataclass(frozen=True)
class PlanSignature:
    """The planner-relevant shape of one aggregate request.

    ``wanted`` is the sorted union of grouping levels and filter
    columns — exactly the set a covering lattice node must materialize.
    ``materializable`` is False for requests no node can ever answer
    (``nunique``, level-valued aggregation targets).
    """

    wanted: tuple[str, ...]
    measures: tuple[str, ...]
    materializable: bool


def classify_request(
    levels: Sequence[str],
    aggregations: Mapping[str, tuple[str, str]],
    filters,
    records: str,
    fact_measures,
) -> PlanSignature:
    """Reduce a request to its :class:`PlanSignature`.

    Mirrors :meth:`MaterializedCube._covering_node`'s coverage rule so
    the adaptive materializer only proposes nodes the router can use.
    """
    wanted = set(levels)
    if filters is not None:
        wanted |= set(filters.columns())
    measures: set[str] = set()
    materializable = True
    for target, func in aggregations.values():
        if func == "nunique":
            materializable = False  # distinct counts do not roll up
        elif target != records:
            if target in fact_measures:
                measures.add(target)
            else:
                materializable = False  # level-valued target: base only
    return PlanSignature(
        tuple(sorted(wanted)), tuple(sorted(measures)), materializable
    )


def estimate_base_rows(state, filters) -> int:
    """Pre-scan row estimate for answering from the base table.

    Store-backed epochs ask the zone maps (pruned segments cost
    nothing, equality predicates scale by distinct counts); monolithic
    epochs can only offer the full flat-view row count.  Never scans.
    """
    store = getattr(state, "store", None)
    if store is not None and filters is not None:
        return store.estimate_rows(filters)
    return int(state.num_rows)


class _Calibration:
    """Running ms-per-unit samples for one route kind."""

    __slots__ = ("samples", "total_ms", "total_units", "min_ms")

    def __init__(self) -> None:
        self.samples = 0
        self.total_ms = 0.0
        self.total_units = 0
        self.min_ms = float("inf")

    def add(self, ms: float, units: int) -> None:
        self.samples += 1
        self.total_ms += ms
        self.total_units += max(int(units), 1)
        if ms < self.min_ms:
            self.min_ms = ms

    @property
    def rate(self) -> float:
        """Mean milliseconds per work unit over every sample."""
        return self.total_ms / self.total_units if self.total_units else 0.0

    @property
    def floor(self) -> float:
        """Cheapest observed call — the fixed-overhead estimate."""
        return self.min_ms if self.samples else 0.0

    def snapshot(self) -> dict:
        return {
            "samples": self.samples,
            "total_ms": round(self.total_ms, 3),
            "total_units": self.total_units,
            "ms_per_unit": round(self.rate, 9),
            "floor_ms": round(self.floor, 4) if self.samples else None,
        }


class _QueryRecord:
    """Frequency ledger entry for one distinct plan."""

    __slots__ = (
        "signature", "count", "cache_hits", "base_rows",
    )

    def __init__(self, signature: PlanSignature) -> None:
        self.signature = signature
        self.count = 0
        self.cache_hits = 0
        #: largest base-scan row estimate seen for this plan — the rows
        #: the query costs when no node answers it
        self.base_rows = 0

    @property
    def weight(self) -> int:
        """Queries that actually paid for a compute (cache misses)."""
        return max(self.count - self.cache_hits, 0)


class WorkloadStats:
    """Thread-safe recorded-workload ledger (see module docstring)."""

    #: route kinds with calibrations: lattice-node answers are costed
    #: per cell, base scans per (estimated) row
    KINDS = ("node", "base")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queries: dict[Hashable, _QueryRecord] = {}
        self._calibrations = {kind: _Calibration() for kind in self.KINDS}

    # -- recording ------------------------------------------------------

    def note_query(
        self,
        key: Hashable,
        signature: PlanSignature,
        base_rows: int,
        *,
        cache_hit: bool = False,
    ) -> None:
        """Fold one served request into the frequency ledger."""
        with self._lock:
            record = self._queries.get(key)
            if record is None:
                record = self._queries[key] = _QueryRecord(signature)
            record.count += 1
            if cache_hit:
                record.cache_hits += 1
            if base_rows > record.base_rows:
                record.base_rows = int(base_rows)

    def observe_route(self, kind: str, ms: float, units: int) -> None:
        """Fold one measured route execution into its calibration."""
        calibration = self._calibrations.get(kind)
        if calibration is None:
            return
        with self._lock:
            calibration.add(float(ms), units)

    # -- reading --------------------------------------------------------

    def calibrated(self, kind: str, min_samples: int) -> bool:
        """True once ``kind`` has at least ``min_samples`` observations."""
        return self._calibrations[kind].samples >= min_samples

    def rate(self, kind: str) -> float:
        """Observed mean ms per unit for ``kind`` (0.0 when cold)."""
        return self._calibrations[kind].rate

    def floor(self, kind: str) -> float:
        """Cheapest observed ms for ``kind`` (0.0 when cold)."""
        return self._calibrations[kind].floor

    def query_records(self) -> "list[tuple[Hashable, PlanSignature, int, int, int]]":
        """Stable snapshot: ``(key, signature, weight, cache_hits, base_rows)``.

        Sorted heaviest-first so selection and health output are
        deterministic regardless of arrival order.
        """
        with self._lock:
            rows = [
                (key, r.signature, r.weight, r.cache_hits, r.base_rows)
                for key, r in self._queries.items()
            ]
        rows.sort(key=lambda row: (-row[2], row[1].wanted, repr(row[0])))
        return rows

    def snapshot(self) -> dict:
        """JSON-ready state for ``ingest_health()["planner"]``."""
        with self._lock:
            tracked = len(self._queries)
            total = sum(r.count for r in self._queries.values())
            cache_hits = sum(r.cache_hits for r in self._queries.values())
            calibrations = {
                kind: c.snapshot() for kind, c in self._calibrations.items()
            }
        return {
            "plans_tracked": tracked,
            "queries_recorded": total,
            "cache_hits_recorded": cache_hits,
            "calibrations": calibrations,
        }
