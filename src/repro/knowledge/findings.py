"""Finding and evidence records — the units the knowledge base manages."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import KnowledgeBaseError


class FindingKind(str, Enum):
    """Where a finding came from — one per DD-DGMS feature."""

    AGGREGATE = "aggregate"          # OLAP/reporting outcome
    TREND = "trend"                  # temporal pattern
    PREDICTION = "prediction"        # validated predictive relationship
    OPTIMIZATION = "optimization"    # optimisation outcome
    ASSOCIATION = "association"      # mined rule / interaction
    FEEDBACK = "feedback"            # clinician-entered judgement


@dataclass(frozen=True)
class Evidence:
    """One piece of support for a finding."""

    source: str                       # e.g. "bench_fig5", "OLAP query", author
    description: str
    weight: float = 1.0               # relative strength (sample size proxy)
    recorded: _dt.date | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise KnowledgeBaseError("evidence weight must be positive")


@dataclass
class Finding:
    """A candidate piece of clinical knowledge with its evidence trail."""

    key: str                          # stable identifier, e.g. "fig5.gender_age"
    kind: FindingKind
    statement: str                    # the human-readable claim
    evidence: list[Evidence] = field(default_factory=list)
    status: str = "candidate"         # candidate | promoted | retired
    tags: frozenset[str] = frozenset()

    def total_weight(self) -> float:
        """Accumulated evidence weight."""
        return sum(e.weight for e in self.evidence)

    def add_evidence(self, evidence: Evidence) -> None:
        """Attach more support."""
        if self.status == "retired":
            raise KnowledgeBaseError(
                f"finding {self.key!r} is retired; reopen it before adding "
                "evidence"
            )
        self.evidence.append(evidence)

    def describe(self) -> str:
        """One line: status, weight, statement."""
        return (
            f"[{self.status}/{self.kind.value} w={self.total_weight():g}] "
            f"{self.statement}"
        )
