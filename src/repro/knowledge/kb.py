"""The knowledge base: accumulation, promotion, querying."""

from __future__ import annotations

from typing import Iterable

from repro.errors import KnowledgeBaseError, PromotionError
from repro.knowledge.findings import Evidence, Finding, FindingKind


class KnowledgeBase:
    """Findings keyed by stable identifiers, with a promotion threshold.

    A finding stays a *candidate* (warehouse-resident, in the paper's
    terms) until its accumulated evidence weight reaches
    ``promotion_threshold``; ``promote_ready()`` then moves it into the
    knowledge base proper.  Promotion is explicit rather than automatic so
    a curator (the clinical scientist) stays in the loop.
    """

    def __init__(self, promotion_threshold: float = 3.0):
        if promotion_threshold <= 0:
            raise KnowledgeBaseError("promotion threshold must be positive")
        self.promotion_threshold = promotion_threshold
        self._findings: dict[str, Finding] = {}

    # ------------------------------------------------------------------

    def record(
        self,
        key: str,
        kind: FindingKind,
        statement: str,
        evidence: Evidence,
        tags: Iterable[str] = (),
    ) -> Finding:
        """Record (or reinforce) a finding.

        A new key creates a candidate finding; an existing key accumulates
        the evidence.  Re-recording with a different statement raises —
        the same key must mean the same claim.
        """
        existing = self._findings.get(key)
        if existing is not None:
            if existing.statement != statement:
                raise KnowledgeBaseError(
                    f"finding {key!r} already exists with a different "
                    f"statement: {existing.statement!r}"
                )
            existing.add_evidence(evidence)
            return existing
        finding = Finding(
            key=key,
            kind=kind,
            statement=statement,
            evidence=[evidence],
            tags=frozenset(tags),
        )
        self._findings[key] = finding
        return finding

    def get(self, key: str) -> Finding:
        """Fetch one finding."""
        try:
            return self._findings[key]
        except KeyError:
            raise KnowledgeBaseError(f"no finding with key {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._findings

    def __len__(self) -> int:
        return len(self._findings)

    # ------------------------------------------------------------------

    def ready_for_promotion(self) -> list[Finding]:
        """Candidates whose evidence weight reached the threshold."""
        return [
            f
            for f in self._findings.values()
            if f.status == "candidate"
            and f.total_weight() >= self.promotion_threshold
        ]

    def promote(self, key: str) -> Finding:
        """Promote one finding; raises when evidence is insufficient."""
        finding = self.get(key)
        if finding.status == "promoted":
            return finding
        if finding.total_weight() < self.promotion_threshold:
            raise PromotionError(
                f"finding {key!r} has weight {finding.total_weight():g} "
                f"< threshold {self.promotion_threshold:g}"
            )
        finding.status = "promoted"
        return finding

    def promote_ready(self) -> list[Finding]:
        """Promote everything that qualifies; returns what was promoted."""
        promoted = []
        for finding in self.ready_for_promotion():
            promoted.append(self.promote(finding.key))
        return promoted

    def retire(self, key: str, reason: str) -> Finding:
        """Retire a finding (superseded or contradicted)."""
        finding = self.get(key)
        finding.add_evidence(
            Evidence(source="curator", description=f"retired: {reason}", weight=1e-9)
        )
        finding.status = "retired"
        return finding

    # ------------------------------------------------------------------

    def candidates(self) -> list[Finding]:
        """All candidate findings, heaviest evidence first."""
        return self._by_status("candidate")

    def promoted(self) -> list[Finding]:
        """All promoted findings, heaviest evidence first."""
        return self._by_status("promoted")

    def by_tag(self, tag: str) -> list[Finding]:
        """Findings carrying a tag (any status)."""
        return sorted(
            (f for f in self._findings.values() if tag in f.tags),
            key=lambda f: -f.total_weight(),
        )

    def by_kind(self, kind: FindingKind) -> list[Finding]:
        """Findings of one kind (any status)."""
        return sorted(
            (f for f in self._findings.values() if f.kind is kind),
            key=lambda f: -f.total_weight(),
        )

    def _by_status(self, status: str) -> list[Finding]:
        return sorted(
            (f for f in self._findings.values() if f.status == status),
            key=lambda f: -f.total_weight(),
        )

    def describe(self) -> str:
        """Terminal dump of the whole base."""
        lines = [
            f"KnowledgeBase: {len(self)} findings "
            f"({len(self.promoted())} promoted, threshold "
            f"{self.promotion_threshold:g})"
        ]
        for finding in sorted(
            self._findings.values(), key=lambda f: (f.status, -f.total_weight())
        ):
            lines.append("  " + finding.describe())
        return "\n".join(lines)
