"""Knowledge base (paper §IV, "Knowledge Base").

"Outcomes from all the above features are the building blocks of knowledge
... These outcomes are initially maintained within the warehouse and
transferred into a knowledge base when sufficient data-based evidence is
accumulated.  A mature knowledge base can be useful to address knowledge
management concerns such as ontology generation, training and guidelines
development."

* :mod:`repro.knowledge.findings` — typed finding records with evidence.
* :mod:`repro.knowledge.kb` — accumulation, the promotion threshold, and
  status lifecycle (candidate → promoted / retired).
* :mod:`repro.knowledge.ontology` — concept hierarchy generated from the
  warehouse's dimensions and discretisation schemes.
* :mod:`repro.knowledge.guidelines` — guideline drafting from promoted
  findings.
"""

from repro.knowledge.findings import Evidence, Finding, FindingKind
from repro.knowledge.kb import KnowledgeBase
from repro.knowledge.ontology import Concept, Ontology, ontology_from_schema
from repro.knowledge.guidelines import Guideline, draft_guidelines
from repro.knowledge.persistence import load_knowledge_base, save_knowledge_base

__all__ = [
    "Evidence",
    "Finding",
    "FindingKind",
    "KnowledgeBase",
    "Concept",
    "Ontology",
    "ontology_from_schema",
    "Guideline",
    "draft_guidelines",
    "save_knowledge_base",
    "load_knowledge_base",
]
