"""Ontology generation from the dimensional model.

A mature knowledge base "can be useful to address knowledge management
concerns such as ontology generation" (paper §IV).  The warehouse already
encodes most of a domain ontology: dimensions are top concepts, their
attributes sub-concepts, hierarchy levels *is-refined-by* chains, and
discretisation schemes enumerate qualitative value concepts.  This module
extracts that structure into an explicit concept graph (networkx).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import KnowledgeBaseError
from repro.etl.discretization import DiscretizationScheme
from repro.warehouse.star import StarSchema


@dataclass(frozen=True)
class Concept:
    """One node of the ontology."""

    name: str
    kind: str  # "dimension" | "attribute" | "value" | "root"

    def __str__(self) -> str:
        return f"{self.name} ({self.kind})"


@dataclass
class Ontology:
    """A directed concept graph with typed edges.

    Edge relations: ``has_attribute`` (dimension → attribute),
    ``refined_by`` (coarse level → finer level), ``has_value``
    (attribute → qualitative value).
    """

    name: str
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def add_concept(self, concept: Concept) -> None:
        """Insert a node (idempotent)."""
        self.graph.add_node(concept.name, kind=concept.kind)

    def relate(self, parent: str, child: str, relation: str) -> None:
        """Insert a typed edge; both concepts must exist."""
        for node in (parent, child):
            if node not in self.graph:
                raise KnowledgeBaseError(f"unknown concept {node!r}")
        self.graph.add_edge(parent, child, relation=relation)

    def children(self, concept: str, relation: str | None = None) -> list[str]:
        """Direct children, optionally filtered by relation."""
        out = []
        for __, child, data in self.graph.out_edges(concept, data=True):
            if relation is None or data.get("relation") == relation:
                out.append(child)
        return sorted(out)

    def concepts_of_kind(self, kind: str) -> list[str]:
        """All concept names of one kind."""
        return sorted(
            n for n, data in self.graph.nodes(data=True) if data.get("kind") == kind
        )

    def is_consistent(self) -> bool:
        """No cycles — an ontology's refinement graph must be a DAG."""
        return nx.is_directed_acyclic_graph(self.graph)

    def to_text(self) -> str:
        """Indented tree rendering from the root."""
        lines: list[str] = []

        def render(node: str, depth: int) -> None:
            kind = self.graph.nodes[node].get("kind", "?")
            lines.append("  " * depth + f"{node} [{kind}]")
            for child in self.children(node):
                render(child, depth + 1)

        roots = [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]
        for root in sorted(roots):
            render(root, 0)
        return "\n".join(lines)


def ontology_from_schema(
    schema: StarSchema,
    schemes: dict[str, DiscretizationScheme] | None = None,
) -> Ontology:
    """Generate the concept graph from a star schema.

    ``schemes`` maps attribute names to their discretisation schemes so
    their bin labels become value concepts.
    """
    ontology = Ontology(schema.name)
    root = Concept(schema.name, "root")
    ontology.add_concept(root)
    schemes = schemes or {}
    for dim_name, dimension in schema.dimensions.items():
        dim_concept = Concept(dim_name, "dimension")
        ontology.add_concept(dim_concept)
        ontology.relate(schema.name, dim_name, "has_dimension")
        for attr in dimension.attributes:
            attr_name = f"{dim_name}.{attr}"
            ontology.add_concept(Concept(attr_name, "attribute"))
            ontology.relate(dim_name, attr_name, "has_attribute")
            scheme = schemes.get(attr)
            if scheme is not None:
                for label in scheme.labels:
                    value_name = f"{attr_name}={label}"
                    ontology.add_concept(Concept(value_name, "value"))
                    ontology.relate(attr_name, value_name, "has_value")
        for hierarchy in dimension.hierarchies.values():
            for coarse, fine in zip(hierarchy.levels, hierarchy.levels[1:]):
                ontology.relate(
                    f"{dim_name}.{coarse}", f"{dim_name}.{fine}", "refined_by"
                )
    return ontology
