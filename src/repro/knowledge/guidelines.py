"""Guideline drafting from promoted findings.

The end of the paper's knowledge-management cycle: promoted,
evidence-backed findings become draft clinical guidelines a scientist can
review — each guideline lists its supporting findings and total evidence
weight, keeping the provenance chain intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KnowledgeBaseError
from repro.knowledge.findings import Finding
from repro.knowledge.kb import KnowledgeBase


@dataclass
class Guideline:
    """A draft recommendation assembled from promoted findings."""

    title: str
    recommendation: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def evidence_weight(self) -> float:
        """Total weight across supporting findings."""
        return sum(f.total_weight() for f in self.findings)

    def to_text(self) -> str:
        """Render with provenance."""
        lines = [
            f"GUIDELINE: {self.title}",
            f"  Recommendation: {self.recommendation}",
            f"  Evidence weight: {self.evidence_weight:g} "
            f"({len(self.findings)} findings)",
        ]
        for finding in self.findings:
            lines.append(f"    - {finding.statement} [{finding.key}]")
        return "\n".join(lines)


def draft_guidelines(
    kb: KnowledgeBase,
    groupings: dict[str, tuple[str, str]],
) -> list[Guideline]:
    """Build one guideline per entry of ``groupings``.

    ``groupings`` maps guideline title → (tag, recommendation text); every
    *promoted* finding carrying the tag supports that guideline.  Entries
    with no promoted support are skipped — a guideline cannot rest on
    candidates.
    """
    if not groupings:
        raise KnowledgeBaseError("no guideline groupings supplied")
    guidelines = []
    for title, (tag, recommendation) in groupings.items():
        supporting = [f for f in kb.by_tag(tag) if f.status == "promoted"]
        if not supporting:
            continue
        guidelines.append(
            Guideline(title=title, recommendation=recommendation, findings=supporting)
        )
    guidelines.sort(key=lambda g: -g.evidence_weight)
    return guidelines
