"""Knowledge-base persistence: JSON save/load.

The paper's knowledge base is the long-lived artefact of the platform —
findings accumulate across trials and years, so they must outlive any one
process.  Plain JSON keeps the store reviewable by the curator; the file
is replaced atomically (temp + fsync + rename) and format-2 files carry a
CRC32 over the findings so silent corruption is detected on load.
Format-1 files (no checksum) still load.
"""

from __future__ import annotations

import datetime as _dt
import json
import warnings
from pathlib import Path

from repro.errors import KnowledgeBaseError
from repro.knowledge.findings import Evidence, Finding, FindingKind
from repro.knowledge.kb import KnowledgeBase
from repro.storage.durable import atomic_write_bytes, crc32_hex

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = frozenset({1, 2})


def save_knowledge_base(kb: KnowledgeBase, path: str | Path) -> None:
    """Deprecated spelling of the unified :func:`repro.persistence.save`."""
    warnings.warn(
        "save_knowledge_base() is deprecated; use repro.persistence.save()",
        DeprecationWarning,
        stacklevel=2,
    )
    _save_knowledge_base(kb, path)


def _save_knowledge_base(kb: KnowledgeBase, path: str | Path) -> None:
    """Serialise the whole base (findings, evidence, statuses) to JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "promotion_threshold": kb.promotion_threshold,
        "findings": [
            {
                "key": finding.key,
                "kind": finding.kind.value,
                "statement": finding.statement,
                "status": finding.status,
                "tags": sorted(finding.tags),
                "evidence": [
                    {
                        "source": e.source,
                        "description": e.description,
                        "weight": e.weight,
                        "recorded": e.recorded.isoformat() if e.recorded else None,
                    }
                    for e in finding.evidence
                ],
            }
            for finding in sorted(kb._findings.values(), key=lambda f: f.key)
        ],
    }
    payload["checksum"] = crc32_hex(
        json.dumps(payload["findings"], sort_keys=True).encode("utf-8")
    )
    atomic_write_bytes(
        Path(path),
        json.dumps(payload, indent=2).encode("utf-8"),
        point="kb.write",
    )


def load_knowledge_base(path: str | Path) -> KnowledgeBase:
    """Deprecated spelling of the unified :func:`repro.persistence.load`."""
    warnings.warn(
        "load_knowledge_base() is deprecated; use repro.persistence.load()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_knowledge_base(path)


def _load_knowledge_base(path: str | Path) -> KnowledgeBase:
    """Reconstruct a base from :func:`_save_knowledge_base` output."""
    file_path = Path(path)
    if not file_path.exists():
        raise KnowledgeBaseError(f"no knowledge base at {file_path}")
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise KnowledgeBaseError(
            f"{file_path} is corrupt (not valid JSON): {exc}"
        )
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise KnowledgeBaseError(
            f"unsupported knowledge-base format {version!r} "
            f"(expected one of {sorted(_SUPPORTED_VERSIONS)})"
        )
    stored_checksum = payload.get("checksum")
    if version >= 2 and stored_checksum is not None:
        actual = crc32_hex(
            json.dumps(payload["findings"], sort_keys=True).encode("utf-8")
        )
        if actual != stored_checksum:
            raise KnowledgeBaseError(
                f"{file_path} fails its checksum "
                f"(stored {stored_checksum}, actual {actual})"
            )
    kb = KnowledgeBase(promotion_threshold=payload["promotion_threshold"])
    for raw in payload["findings"]:
        finding = Finding(
            key=raw["key"],
            kind=FindingKind(raw["kind"]),
            statement=raw["statement"],
            evidence=[
                Evidence(
                    source=e["source"],
                    description=e["description"],
                    weight=e["weight"],
                    recorded=(
                        _dt.date.fromisoformat(e["recorded"])
                        if e["recorded"]
                        else None
                    ),
                )
                for e in raw["evidence"]
            ],
            status=raw["status"],
            tags=frozenset(raw["tags"]),
        )
        kb._findings[finding.key] = finding
    return kb
