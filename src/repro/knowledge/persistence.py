"""Knowledge-base persistence: JSON save/load.

The paper's knowledge base is the long-lived artefact of the platform —
findings accumulate across trials and years, so they must outlive any one
process.  Plain JSON keeps the store reviewable by the curator.
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path

from repro.errors import KnowledgeBaseError
from repro.knowledge.findings import Evidence, Finding, FindingKind
from repro.knowledge.kb import KnowledgeBase

_FORMAT_VERSION = 1


def save_knowledge_base(kb: KnowledgeBase, path: str | Path) -> None:
    """Serialise the whole base (findings, evidence, statuses) to JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "promotion_threshold": kb.promotion_threshold,
        "findings": [
            {
                "key": finding.key,
                "kind": finding.kind.value,
                "statement": finding.statement,
                "status": finding.status,
                "tags": sorted(finding.tags),
                "evidence": [
                    {
                        "source": e.source,
                        "description": e.description,
                        "weight": e.weight,
                        "recorded": e.recorded.isoformat() if e.recorded else None,
                    }
                    for e in finding.evidence
                ],
            }
            for finding in sorted(kb._findings.values(), key=lambda f: f.key)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_knowledge_base(path: str | Path) -> KnowledgeBase:
    """Reconstruct a base from :func:`save_knowledge_base` output."""
    file_path = Path(path)
    if not file_path.exists():
        raise KnowledgeBaseError(f"no knowledge base at {file_path}")
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise KnowledgeBaseError(
            f"unsupported knowledge-base format {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    kb = KnowledgeBase(promotion_threshold=payload["promotion_threshold"])
    for raw in payload["findings"]:
        finding = Finding(
            key=raw["key"],
            kind=FindingKind(raw["kind"]),
            statement=raw["statement"],
            evidence=[
                Evidence(
                    source=e["source"],
                    description=e["description"],
                    weight=e["weight"],
                    recorded=(
                        _dt.date.fromisoformat(e["recorded"])
                        if e["recorded"]
                        else None
                    ),
                )
                for e in raw["evidence"]
            ],
            status=raw["status"],
            tags=frozenset(raw["tags"]),
        )
        kb._findings[finding.key] = finding
    return kb
