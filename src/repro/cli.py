"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — simulate a DiScRi cohort and write it as CSV;
* ``report``   — build the DD-DGMS and write the markdown trial report;
* ``mdx``      — run an MDX query against the cohort's cube (an
  ``EXPLAIN`` prefix prints the measured plan instead of the grid);
* ``figures``  — print the paper's Fig 4/5/6 reproductions;
* ``stats``    — run the figure workload under tracing and print the
  metrics registry, ingest health, slow-query log and last span tree;
* ``quarantine`` — list, inspect or re-drive dead-letter rows of a
  durable system (``list`` / ``show <id>`` / ``redrive [--set k=v]``);
* ``serve-bench`` — serving load harness: result-cache speedup, parallel
  lattice materialisation, and reader threads against a live writer;
  writes ``BENCH_serving.json``;
* ``bench-incremental`` — incremental maintenance harness: p50 delta
  publish latency vs history scale and vs a full rebuild, plus the
  delta/rebuild parity oracle; writes ``BENCH_incremental.json``;
* ``bench-overload`` — overload harness: admission-gate shed latency,
  4x-oversubscribed readers under injected serving chaos with a
  recompute oracle, and deadline enforcement under a stalled cache;
  writes ``BENCH_overload.json``;
* ``bench-partition`` — partitioned-storage harness: pruned-vs-full
  byte parity on both kernel paths, zone-map scan speedup at 10x rows,
  and dict/RLE encoding memory savings; writes ``BENCH_partition.json``;
* ``plan-bench`` — cost-based planning harness: workload-adaptive
  materialization vs lattice-off and full-lattice on a skewed 80/20
  workload, with a byte-parity route oracle; writes
  ``BENCH_planner.json``;
* ``sweep`` — chaos scenario sweep: the full closed loop (ingest, OLAP,
  mining, prediction, optimisation, feedback-fold) fleet-run under a
  fault matrix with crash isolation, per-scenario deadlines and a
  resumable ledger; writes ``BENCH_scenarios.json``.

A cohort can come from ``--cohort file.csv`` (as written by ``generate``)
or be simulated on the fly with ``--patients/--seed``.  Every command
honours ``REPRO_OBS`` / ``REPRO_OBS_SLOW_S`` (see :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import sys
from pathlib import Path

from repro import obs
from repro.dgms.report import generate_trial_report
from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator
from repro.etl.quarantine import QuarantineStore
from repro.olap.operations import drill_down
from repro.tabular.csvio import read_csv, write_csv
from repro.tabular.table import Table


def _add_cohort_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cohort", type=Path, default=None,
        help="cohort CSV (as written by 'generate'); omit to simulate",
    )
    parser.add_argument("--patients", type=int, default=300,
                        help="patients to simulate when no --cohort is given")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation seed")


def _load_cohort(args: argparse.Namespace) -> Table:
    if args.cohort is not None:
        return read_csv(args.cohort)
    return DiScRiGenerator(n_patients=args.patients, seed=args.seed).generate()


def _cmd_generate(args: argparse.Namespace) -> int:
    cohort = DiScRiGenerator(n_patients=args.patients, seed=args.seed).generate()
    write_csv(cohort, args.out)
    print(
        f"wrote {cohort.num_rows} attendances of "
        f"{cohort.column('patient_id').n_unique()} patients "
        f"({len(cohort.column_names)} columns) to {args.out}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    system = DDDGMS(_load_cohort(args))
    generate_trial_report(system, path=args.out)
    print(f"trial report written to {args.out}")
    return 0


def _cmd_mdx(args: argparse.Namespace) -> int:
    system = DDDGMS(_load_cohort(args))
    result = system.mdx(args.query)
    if isinstance(result, obs.ExplainReport):
        print(result.to_text())
    else:
        print(result.to_text(with_totals=args.totals))
    return 0


def _run_figure_workload(system: DDDGMS) -> None:
    """The Fig 4–6 query mix, exercised once for ``stats``."""
    system.query().rows("age_band").columns("gender").count_records(
        "attendances"
    ).where("personal.family_history_diabetes", "yes").execute()
    system.query().rows("age_band10").columns("gender").count_distinct(
        "cardinality.patient_id", name="patients"
    ).where("conditions.diabetes_status", "yes").execute()
    system.query().rows("age_band10").columns("ht_years_band").count_records(
        "cases"
    ).where("conditions.hypertension", "yes").execute()
    system.mdx(
        "SELECT [personal].[gender].MEMBERS ON COLUMNS, "
        "[conditions].[age_band].MEMBERS ON ROWS FROM [discri] "
        "WHERE [personal].[family_history_diabetes].[yes]"
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    ring = obs.RingBufferSink()
    obs.configure(sinks=[ring], slow_query_threshold_s=args.slow)
    if args.durable is not None:
        system = DDDGMS.recover(args.durable)
    else:
        # a quarantine sink makes the command resilient to dirty cohort
        # CSVs: bad rows land in the (in-memory) dead-letter store and
        # show up under "ingest health" instead of aborting the command
        system = DDDGMS(_load_cohort(args), quarantine=QuarantineStore())
    if args.lattice:
        system.materialize_lattice()
    if args.serving:
        system.attach_serving(True)
    _run_figure_workload(system)

    print("== metrics ==")
    print(obs.metrics().render())
    print("\n== ingest health ==")
    health = system.ingest_health()
    for key, value in health.items():
        if key in ("maintenance", "serving"):
            continue  # given their own sections below
        print(f"{key:<24} {value}")
    print("\n== maintenance ==")
    maintenance = health.get("maintenance") or {}
    for key in sorted(maintenance):
        print(f"{key:<24} {maintenance[key]}")
    lattice = system.cube.lattice
    if lattice is not None:
        print("\n== lattice ==")
        for key, value in lattice.snapshot().items():
            print(f"{key:<24} {value}")
        print(f"{'summary':<24} {lattice.stats.summary()}")
    serving = health.get("serving")
    if serving is not None:
        print("\n== serving ==")
        for key in sorted(serving["admission"]):
            print(f"admission.{key:<14} {serving['admission'][key]}")
        for name, snap in sorted(serving["breakers"].items()):
            print(f"breaker.{name:<16} {snap['state']} "
                  f"(failures={snap['failures']}, opens={snap['opens']}, "
                  f"degrades_to={snap['degrades_to']})")
    if health.get("degradations"):
        print(f"\n{'degradations':<24} {','.join(health['degradations'])}")
    last = ring.last()
    if last is not None:
        print("\n== last span tree ==")
        print(last.render())
    slow = obs.slow_log()
    print(f"\n== slow queries (> {slow.threshold_s:g} s) ==")
    print(slow.render() if len(slow) else "(none)")
    return 0


def _coerce_cli_value(text: str):
    """``--set`` value syntax: int, float, ISO date, ``null`` or string."""
    text = text.strip()
    if text.lower() in ("null", "none"):
        return None
    for parse in (int, float, _dt.date.fromisoformat):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _cmd_quarantine(args: argparse.Namespace) -> int:
    root = Path(args.root)
    if args.action == "redrive":
        system = DDDGMS.recover(root)
        repair = None
        if args.set:
            changes = {}
            for pair in args.set:
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    print(f"bad --set {pair!r} (expected column=value)",
                          file=sys.stderr)
                    return 2
                changes[key.strip()] = _coerce_cli_value(value)

            def repair(row, changes=changes):
                return {**row, **changes}

        report = system.redrive_quarantine(repair=repair)
        print(report.summary())
        print(f"{len(system.quarantine)} rows remain quarantined")
        # rows that re-quarantined mean the repair did not take: surface
        # it in the exit code so scripts notice
        return 3 if report.requeued > 0 else 0

    store = QuarantineStore.open(root / "quarantine")
    try:
        if args.action == "show":
            if args.entry_id is None:
                print("quarantine show needs an entry id", file=sys.stderr)
                return 2
            entry = store.get(args.entry_id)
            print(entry.describe())
            for key in sorted(entry.row):
                print(f"  {key:<28} {entry.row[key]!r}")
            return 0
        # list (the default)
        entries = store.rows()
        print(f"{len(entries)} quarantined rows "
              f"(by step: {store.counts('step') or '{}'})")
        for entry in entries:
            print(f"  {entry.describe()}")
        return 0
    finally:
        store.close()


def _cmd_dictionary(args: argparse.Namespace) -> int:
    from repro.discri.dictionary import generate_data_dictionary

    cohort = _load_cohort(args) if args.with_stats else None
    generate_data_dictionary(cohort, path=args.out)
    print(f"data dictionary written to {args.out}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    system = DDDGMS(_load_cohort(args))

    print("Fig 4 — family history of diabetes by age group and gender")
    fig4 = (
        system.olap().rows("age_band").columns("gender")
        .count_records("attendances")
        .where("personal.family_history_diabetes", "yes")
        .execute().sorted_rows()
    )
    print(fig4.to_text(with_totals=True))

    print("\nFig 5 — diabetics by age band and gender (drilled to 5-year bands)")
    coarse = (
        system.olap().rows("age_band10").columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes").build()
    )
    fig5 = drill_down(coarse, system.cube, "age_band10").execute(
        system.cube
    ).sorted_rows()
    print(fig5.to_text(with_totals=True))

    print("\nFig 6 — years since HT diagnosis by age band (drilled)")
    ht = (
        system.olap().rows("age_band10").columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes").build()
    )
    fig6 = drill_down(ht, system.cube, "age_band10").execute(
        system.cube
    ).sorted_rows()
    print(fig6.to_text(with_totals=True))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serving.bench import format_summary, run_serving_bench

    payload = run_serving_bench(
        patients=args.patients,
        seed=args.seed,
        lattice_rows=args.lattice_rows,
        workers=args.workers,
        readers=args.readers,
        duration_s=args.duration,
        out=args.out,
    )
    print(format_summary(payload))
    print(f"full results written to {args.out}")
    return 0


def _cmd_bench_incremental(args: argparse.Namespace) -> int:
    from repro.serving.bench_incremental import (
        format_summary,
        run_incremental_bench,
    )

    try:
        scales = tuple(
            sorted({int(part) for part in args.scales.split(",") if part})
        )
    except ValueError:
        print(f"bad --scales {args.scales!r} (expected e.g. '1,10')",
              file=sys.stderr)
        return 2
    payload = run_incremental_bench(
        base_rows=args.rows,
        delta_rows=args.delta_rows,
        scales=scales,
        repeats=args.repeats,
        seed=args.seed,
        out=args.out,
    )
    print(format_summary(payload))
    print(f"full results written to {args.out}")
    return 0


def _cmd_bench_overload(args: argparse.Namespace) -> int:
    from repro.serving.bench_overload import (
        format_summary,
        run_overload_bench,
    )

    payload = run_overload_bench(
        patients=args.patients,
        seed=args.seed,
        oversubscription=args.oversubscription,
        duration_s=args.duration,
        out=args.out,
    )
    print(format_summary(payload))
    print(f"full results written to {args.out}")
    return 0 if payload["ok"] else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios.bench import (
        format_summary,
        list_matrix,
        run_sweep,
    )

    if args.list:
        print(list_matrix(seed=args.seed))
        return 0
    payload = run_sweep(
        root=args.root,
        out=args.out,
        jobs=args.jobs,
        fresh=args.fresh,
        seed=args.seed,
        deadline_s=args.deadline,
        progress=lambda message: print(message, flush=True),
    )
    print(format_summary(payload))
    print(f"full results written to {args.out}")
    return 0 if payload["ok"] else 1


def _cmd_bench_partition(args: argparse.Namespace) -> int:
    from repro.storage.columnar.bench import (
        format_summary,
        run_partition_bench,
    )

    payload = run_partition_bench(
        patients=args.patients,
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        out=args.out,
    )
    print(format_summary(payload))
    print(f"full results written to {args.out}")
    return 0 if payload["ok"] else 1


def _cmd_plan_bench(args: argparse.Namespace) -> int:
    from repro.planner.bench import format_summary, run_planner_bench

    payload = run_planner_bench(
        rows=args.rows,
        queries=args.queries,
        repeats=args.repeats,
        budget_nodes=args.budget_nodes,
        seed=args.seed,
        out=args.out,
    )
    print(format_summary(payload))
    print(f"full results written to {args.out}")
    return 0 if payload["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DD-DGMS: data-driven decision guidance for clinical "
                    "scientists (ICDEW 2013 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="simulate a DiScRi cohort and write CSV"
    )
    generate.add_argument("--patients", type=int, default=300)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", type=Path, required=True)
    generate.set_defaults(func=_cmd_generate)

    report = commands.add_parser(
        "report", help="write the markdown trial report"
    )
    _add_cohort_arguments(report)
    report.add_argument("--out", type=Path, required=True)
    report.set_defaults(func=_cmd_report)

    mdx = commands.add_parser("mdx", help="run an MDX query")
    _add_cohort_arguments(mdx)
    mdx.add_argument("query", help="the MDX text")
    mdx.add_argument("--totals", action="store_true",
                     help="append row/column totals")
    mdx.set_defaults(func=_cmd_mdx)

    figures = commands.add_parser(
        "figures", help="print the Fig 4/5/6 reproductions"
    )
    _add_cohort_arguments(figures)
    figures.set_defaults(func=_cmd_figures)

    dictionary = commands.add_parser(
        "dictionary", help="write the 273-attribute data dictionary"
    )
    _add_cohort_arguments(dictionary)
    dictionary.add_argument("--out", type=Path, required=True)
    dictionary.add_argument(
        "--with-stats", action="store_true",
        help="include observed null rates / distinct counts from the cohort",
    )
    dictionary.set_defaults(func=_cmd_dictionary)

    stats = commands.add_parser(
        "stats", help="trace the figure workload; print metrics + span trees"
    )
    _add_cohort_arguments(stats)
    stats.add_argument(
        "--slow", type=float, default=0.25,
        help="slow-query threshold in seconds (default 0.25)",
    )
    stats.add_argument(
        "--lattice", action="store_true",
        help="precompute the figure-shaped aggregate lattice first",
    )
    stats.add_argument(
        "--serving", action="store_true",
        help="attach default admission control + circuit breakers so the "
             "serving section shows live gate/breaker state",
    )
    stats.add_argument(
        "--durable", type=Path, default=None,
        help="recover the system from this durable root instead of "
             "building from a cohort (shows real ingest health)",
    )
    stats.set_defaults(func=_cmd_stats)

    quarantine = commands.add_parser(
        "quarantine",
        help="list / inspect / re-drive dead-letter rows of a durable system",
    )
    quarantine.add_argument(
        "action", choices=["list", "show", "redrive"], nargs="?",
        default="list", help="what to do (default: list)",
    )
    quarantine.add_argument(
        "entry_id", type=int, nargs="?", default=None,
        help="entry id for 'show'",
    )
    quarantine.add_argument(
        "--root", type=Path, required=True,
        help="durable system root (as passed to DDDGMS(durable_root=...))",
    )
    quarantine.add_argument(
        "--set", action="append", default=[], metavar="COLUMN=VALUE",
        help="for 'redrive': repair each row before the attempt "
             "(repeatable; value parses as int/float/ISO date/null/str)",
    )
    quarantine.set_defaults(func=_cmd_quarantine)

    serve = commands.add_parser(
        "serve-bench",
        help="serving load harness: cache speedup, parallel lattice, "
             "readers vs live writer; writes BENCH_serving.json",
    )
    serve.add_argument(
        "--patients", type=int, default=200,
        help="patients in the simulated serving cohort (default 200)",
    )
    serve.add_argument("--seed", type=int, default=42, help="simulation seed")
    serve.add_argument(
        "--readers", type=int, default=8,
        help="concurrent reader threads (default 8)",
    )
    serve.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of live-writer load (default 2.0)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="thread budget for the parallel lattice stage (default 4)",
    )
    serve.add_argument(
        "--lattice-rows", type=int, default=200_000,
        help="synthetic fact rows for the lattice stage (default 200000)",
    )
    serve.add_argument(
        "--out", type=Path, default=Path("BENCH_serving.json"),
        help="result JSON path (default ./BENCH_serving.json)",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    incremental = commands.add_parser(
        "bench-incremental",
        help="incremental maintenance harness: delta publish p50 vs "
             "history scale, rebuild speedup and the parity oracle; "
             "writes BENCH_incremental.json",
    )
    incremental.add_argument(
        "--rows", type=int, default=20_000,
        help="fact rows at scale 1x (default 20000)",
    )
    incremental.add_argument(
        "--delta-rows", type=int, default=500,
        help="rows per appended delta batch (default 500)",
    )
    incremental.add_argument(
        "--scales", default="1,10",
        help="comma-separated history multipliers (default '1,10')",
    )
    incremental.add_argument(
        "--repeats", type=int, default=5,
        help="timed publishes per scale (default 5; p50 is reported)",
    )
    incremental.add_argument("--seed", type=int, default=7,
                             help="synthetic data seed")
    incremental.add_argument(
        "--out", type=Path, default=Path("BENCH_incremental.json"),
        help="result JSON path (default ./BENCH_incremental.json)",
    )
    incremental.set_defaults(func=_cmd_bench_incremental)

    overload = commands.add_parser(
        "bench-overload",
        help="overload harness: shed latency, oversubscribed chaos "
             "readers with a recompute oracle, deadline enforcement; "
             "writes BENCH_overload.json",
    )
    overload.add_argument(
        "--patients", type=int, default=150,
        help="patients in the simulated cohort (default 150)",
    )
    overload.add_argument("--seed", type=int, default=42,
                          help="simulation seed")
    overload.add_argument(
        "--oversubscription", type=int, default=4,
        help="reader threads per admission slot (default 4)",
    )
    overload.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of chaos reader load (default 2.0)",
    )
    overload.add_argument(
        "--out", type=Path, default=Path("BENCH_overload.json"),
        help="result JSON path (default ./BENCH_overload.json)",
    )
    overload.set_defaults(func=_cmd_bench_overload)

    partition = commands.add_parser(
        "bench-partition",
        help="partitioned-storage harness: pruned-vs-full parity, "
             "zone-map scan speedup at scale, encoding memory savings; "
             "writes BENCH_partition.json",
    )
    partition.add_argument(
        "--patients", type=int, default=1200,
        help="base cohort patients; speedup runs at scale x this (default 1200)",
    )
    partition.add_argument(
        "--scale", type=int, default=10,
        help="row multiplier for the speedup phase (default 10)",
    )
    partition.add_argument("--seed", type=int, default=42,
                           help="simulation seed")
    partition.add_argument(
        "--repeats", type=int, default=7,
        help="timing repeats per probe, best-of (default 7)",
    )
    partition.add_argument(
        "--out", type=Path, default=Path("BENCH_partition.json"),
        help="result JSON path (default ./BENCH_partition.json)",
    )
    partition.set_defaults(func=_cmd_bench_partition)

    plan = commands.add_parser(
        "plan-bench",
        help="cost-based planning harness: adaptive materialization vs "
             "lattice-off and full-lattice on a skewed workload, with a "
             "route-parity oracle; writes BENCH_planner.json",
    )
    plan.add_argument(
        "--rows", type=int, default=24_000,
        help="fact rows in the synthetic star (default 24000)",
    )
    plan.add_argument(
        "--queries", type=int, default=300,
        help="queries per workload pass (default 300)",
    )
    plan.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per config, median-of (default 3)",
    )
    plan.add_argument(
        "--budget-nodes", type=int, default=8,
        help="adaptive materializer node budget (default 8)",
    )
    plan.add_argument("--seed", type=int, default=11,
                      help="workload seed (default 11)")
    plan.add_argument(
        "--out", type=Path, default=Path("BENCH_planner.json"),
        help="result JSON path (default ./BENCH_planner.json)",
    )
    plan.set_defaults(func=_cmd_plan_bench)

    sweep = commands.add_parser(
        "sweep",
        help="chaos scenario sweep: crash-isolated fleet runs of the full "
             "closed loop under a fault matrix; writes BENCH_scenarios.json",
    )
    sweep.add_argument(
        "--root", type=Path, default=Path("sweep-out"),
        help="sweep ledger root; re-runs resume only missing/failed "
             "scenarios (default ./sweep-out)",
    )
    sweep.add_argument(
        "--out", type=Path, default=Path("BENCH_scenarios.json"),
        help="result JSON path (default ./BENCH_scenarios.json)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: cpu count - 1)",
    )
    sweep.add_argument("--seed", type=int, default=7,
                       help="matrix base seed (default 7)")
    sweep.add_argument(
        "--deadline", type=float, default=120.0,
        help="per-scenario wall-clock deadline in seconds (default 120)",
    )
    sweep.add_argument(
        "--fresh", action="store_true",
        help="ignore recorded outcomes and re-run every scenario",
    )
    sweep.add_argument(
        "--list", action="store_true",
        help="print the scenario matrix and exit without running",
    )
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit code."""
    obs.configure_from_env()
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
