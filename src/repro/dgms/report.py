"""Trial report generation: one markdown artefact from a DD-DGMS instance.

The end product a clinical scientist hands to a review board: cohort
profile, the headline OLAP outcomes, temporal episode summary, mining
highlights and the knowledge-base state — every Fig 2 feature contributes
a section, with the warehouse version stamped for provenance.
"""

from __future__ import annotations

from pathlib import Path

from repro.dgms.system import DDDGMS
from repro.viz.heatmap import heatmap


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body}\n"


def _code(text: str) -> str:
    return f"```\n{text}\n```"


def generate_trial_report(
    system: DDDGMS,
    title: str = "DiScRi trial report",
    path: str | Path | None = None,
) -> str:
    """Build the report; optionally write it to ``path``.

    Deterministic given the system state, so reports can be diffed across
    warehouse versions.
    """
    cohort = system.source
    patients = cohort.column("patient_id").n_unique()
    sections: list[str] = [f"# {title}\n"]

    # --- cohort profile -------------------------------------------------
    sections.append(
        _section(
            "Cohort",
            f"- attendances: **{cohort.num_rows}**\n"
            f"- patients: **{patients}** "
            f"({cohort.num_rows / patients:.2f} attendances/patient)\n"
            f"- attributes: **{len(cohort.column_names) - 4}**\n"
            f"- warehouse model version: **v{system.warehouse.version}** "
            f"(dimensions: {', '.join(system.warehouse.dimension_names)})",
        )
    )

    # --- ETL provenance -------------------------------------------------
    sections.append(
        _section(
            "Transformation audit",
            _code("\n".join(str(entry) for entry in system.etl_audit)),
        )
    )

    # --- headline OLAP outcomes -----------------------------------------
    fig5 = (
        system.olap()
        .rows("age_band10")
        .columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute()
        .sorted_rows()
    )
    sections.append(
        _section(
            "Diabetic patients by age band and gender",
            _code(fig5.to_text(with_totals=True)) + "\n\n"
            + _code(heatmap(fig5)),
        )
    )
    fig6 = (
        system.olap()
        .rows("age_band10")
        .columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes")
        .execute()
        .sorted_rows()
    )
    sections.append(
        _section(
            "Hypertension duration by age band",
            _code(fig6.to_text(with_totals=True)),
        )
    )

    # --- temporal episodes ----------------------------------------------
    episodes = system.episodes("fbg", min_support=1)
    if episodes.num_rows:
        by_state = episodes.groupby("state").agg(
            episodes=("state", "size"),
            mean_days=("duration_days", "mean"),
        ).sort_by("state")
        sections.append(
            _section(
                "Glycaemic episodes (temporal abstraction of FBG)",
                _code(by_state.to_text()),
            )
        )

    # --- prediction -----------------------------------------------------
    predictor = system.trajectory_predictor()
    transition_lines = []
    for current in predictor.model.states:
        distribution = predictor.model.distribution_after(current)
        top = max(sorted(distribution), key=lambda s: distribution[s])
        transition_lines.append(
            f"{current:<12} -> {top:<12} (p={distribution[top]:.2f})"
        )
    if "Diabetic" in predictor.model.states:
        steps = predictor.model.expected_steps_to("Diabetic")
        transition_lines.append("")
        transition_lines.append("expected visit-cycles until Diabetic:")
        for state in predictor.model.states:
            value = steps[state]
            rendered = f"{value:.1f}" if value < 1e6 else "∞"
            transition_lines.append(f"  from {state:<12} {rendered}")
    sections.append(
        _section(
            "Most likely next glycaemic phase (per current phase)",
            _code("\n".join(transition_lines)),
        )
    )

    # --- knowledge base ---------------------------------------------------
    sections.append(
        _section("Knowledge base", _code(system.knowledge_base.describe()))
    )

    report = "\n".join(sections)
    if path is not None:
        Path(path).write_text(report, encoding="utf-8")
    return report
