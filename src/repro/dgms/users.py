"""The two user groups of paper §IV.

"The first group comprises of users (operational level) interested in
short term outcomes such as doctors investigating medication usage,
clinical scientists seeking better means to reach diagnoses ...  The
second group of users (strategic level) such as clinical administrators
and policy makers seek information relevant for optimising treatment
regimen ... within the economic constraints of the current health care
system."

Sessions expose the features each group leans on; nothing is hard-locked
("the use of each feature is not strictly limited to a single group"),
but the session objects make the intended workflows explicit and keep an
activity journal for the knowledge-management cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.dgms.system import DDDGMS
from repro.olap.crosstab import Crosstab

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.prediction.simulation import CohortProjection
from repro.optimize.regimen import RegimenProblem, TreatmentPlan, optimize_regimen
from repro.optimize.screening import ScreeningAllocation, allocate_screening


class _Session:
    """Shared journal behaviour."""

    def __init__(self, system: DDDGMS, user: str):
        self.system = system
        self.user = user
        self.journal: list[str] = []

    def _log(self, entry: str) -> None:
        self.journal.append(f"[{self.user}] {entry}")


class OperationalSession(_Session):
    """Short-term-outcome workflows: diagnosis support, medication usage."""

    def medication_usage(self, medication_level: str = "pressure.bp_medication") -> Crosstab:
        """Medication usage broken down by diabetes status."""
        self._log(f"medication usage by {medication_level}")
        return (
            self.system.olap()
            .rows(medication_level)
            .columns("conditions.diabetes_status")
            .count_records()
            .execute()
        )

    def medication_panel(self) -> "Table":
        """Usage rate of every recorded medication, split by diabetes.

        The "doctors investigating medication usage" workflow across the
        full 25-drug panel of the source data (not just the warehouse
        dimensions): one row per medication with usage rates and the
        diabetic/non-diabetic ratio, sorted by that ratio.
        """
        from repro.tabular.table import Table

        source = self.system.source
        med_columns = [
            name for name in source.column_names
            if name.startswith("med_")
            and source.schema[name].value == "str"
        ]
        status = source.column("diabetes_status").to_list()
        diabetic_total = sum(1 for s in status if s == "yes")
        other_total = len(status) - diabetic_total
        rows = []
        for name in med_columns:
            values = source.column(name).to_list()
            diabetic_yes = sum(
                1 for v, s in zip(values, status) if v == "yes" and s == "yes"
            )
            other_yes = sum(
                1 for v, s in zip(values, status) if v == "yes" and s == "no"
            )
            diabetic_rate = diabetic_yes / max(diabetic_total, 1)
            other_rate = other_yes / max(other_total, 1)
            rows.append(
                {
                    "medication": name,
                    "diabetic_rate": round(diabetic_rate, 4),
                    "other_rate": round(other_rate, 4),
                    "ratio": round(diabetic_rate / max(other_rate, 1e-9), 2),
                }
            )
        self._log(f"medication panel over {len(med_columns)} drugs")
        table = Table.from_rows(
            rows,
            schema={"medication": "str", "diabetic_rate": "float",
                    "other_rate": "float", "ratio": "float"},
        )
        return table.sort_by("ratio", descending=True)

    def diagnosis_support(self, patient_row: dict) -> tuple[str, dict[str, float]]:
        """Predict the next glycaemic phase for a patient in front of you."""
        predictor = self.system.trajectory_predictor()
        outcome = predictor.predict_next_stage(patient_row)
        self._log(
            f"next-phase prediction for patient "
            f"{patient_row.get('patient_id')}: {outcome[0]}"
        )
        return outcome

    def patient_timeline(self, patient_id: int) -> str:
        """Bedside time-course view: FBG over visits with stage labels.

        The operational face of temporal abstraction — what the clinician
        glances at before the consultation.
        """
        from repro.discri.schemes import FBG_SCHEME
        from repro.viz.lines import sparkline

        history = self.system.patient_history(patient_id)
        if not history:
            return f"patient {patient_id}: no recorded attendances"
        dates = [row["visit_date"] for row in history]
        fbg = [row["fbg"] for row in history]
        stages = [
            FBG_SCHEME.assign(value) if value is not None else "?"
            for value in fbg
        ]
        lines = [
            f"patient {patient_id}: {len(history)} attendances "
            f"({dates[0]} … {dates[-1]})",
            f"  FBG   {sparkline(fbg)}  "
            + " ".join(f"{v:.1f}" if v is not None else "·" for v in fbg),
            f"  stage {' -> '.join(stages)}",
        ]
        self._log(f"timeline reviewed for patient {patient_id}")
        return "\n".join(lines)

    def risk_profile(self, crosstab_levels: tuple[str, str]) -> Crosstab:
        """Two-way distribution of diabetics for bedside discussion."""
        rows_level, cols_level = crosstab_levels
        self._log(f"risk profile {rows_level} × {cols_level}")
        return (
            self.system.olap()
            .rows(rows_level)
            .columns(cols_level)
            .count_distinct("cardinality.patient_id", name="patients")
            .where("conditions.diabetes_status", "yes")
            .execute()
        )


class StrategicSession(_Session):
    """Long-term-planning workflows: regimen and screening optimisation."""

    def case_mix(self) -> Crosstab:
        """Patient counts by condition and age band for planning."""
        self._log("case mix by diabetes status × age band")
        return (
            self.system.olap()
            .rows("conditions.age_band")
            .columns("conditions.diabetes_status")
            .count_distinct("cardinality.patient_id", name="patients")
            .execute()
        )

    def plan_regimen(self, problem: RegimenProblem) -> TreatmentPlan:
        """Solve a treatment-regimen allocation under the budget."""
        plan = optimize_regimen(problem)
        self._log(
            f"regimen optimised: benefit {plan.total_benefit:.1f} within "
            f"budget {plan.budget:g}"
        )
        return plan

    def plan_screening(
        self,
        populations: Mapping[str, float],
        detection_rates: Mapping[str, float],
        capacity: float,
        min_slots: Mapping[str, float] | None = None,
    ) -> ScreeningAllocation:
        """Allocate screening capacity across groups."""
        allocation = allocate_screening(
            populations, detection_rates, capacity, min_slots
        )
        self._log(
            f"screening allocated: {allocation.expected_detections:.1f} "
            f"expected detections"
        )
        return allocation

    def project_case_mix(self, periods: int = 4) -> "CohortProjection":
        """Simulate the cohort's glycaemic mix ``periods`` visits ahead.

        The DGMS phase-2 "simulation": the current per-stage patient counts
        (from the warehouse) are pushed through the fitted transition model
        so capacity planning sees tomorrow's case mix, not today's.
        """
        from repro.prediction.simulation import CohortSimulator

        predictor = self.system.trajectory_predictor()
        counts = (
            self.system.olap()
            .rows("bloods.fbg_band")
            .count_distinct("cardinality.patient_id", name="patients")
            .execute()
        )
        initial = {
            str(key[0]): float(counts.value(key, ("patients",)) or 0)
            for key in counts.row_keys
            if str(key[0]) in predictor.model.states
        }
        projection = CohortSimulator(predictor.model).project_expected(
            initial, periods
        )
        self._log(f"case mix projected {periods} periods ahead")
        return projection

    def detection_rates_from_warehouse(
        self, group_level: str = "conditions.age_band"
    ) -> dict[str, tuple[float, float]]:
        """Per-group (patients, diabetes rate) straight from the cube.

        The warehouse feeding the optimiser is the architecture's point:
        strategy runs on accumulated evidence, not guesses.
        """
        grid = (
            self.system.olap()
            .rows(group_level)
            .columns("conditions.diabetes_status")
            .count_distinct("cardinality.patient_id", name="patients")
            .execute()
        )
        out: dict[str, tuple[float, float]] = {}
        for key in grid.row_keys:
            positive = grid.value(key, ("yes",)) or 0
            negative = grid.value(key, ("no",)) or 0
            total = float(positive) + float(negative)
            if total > 0:
                out[str(key[0])] = (total, float(positive) / total)
        self._log(f"detection rates derived for {len(out)} groups")
        return out
