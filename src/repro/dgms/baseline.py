"""The classic DGMS baseline: DG-SQL over flat stores, no warehouse.

Used by bench P1 to compare architectures.  It supports the same four
phases as the DD-DGMS — but every multivariate question must be expressed
as a flat GROUP BY, there is no dimensional metadata (no hierarchies, so
no drill-down), no cardinality dimension (patient-distinct counts must be
written manually per query), and derived/feedback attributes require
schema surgery on the operational table.
"""

from __future__ import annotations

from repro.dgsql.executor import DGSQLExecutor
from repro.storage.engine import StorageEngine
from repro.tabular.table import Table


class ClassicDGMS:
    """DG-SQL-intermediated DGMS over one flat attendance table."""

    def __init__(self, source: Table, table_name: str = "attendances"):
        self.table_name = table_name
        self.engine = StorageEngine()
        self.engine.create_table(
            table_name, dict(source.schema), primary_key="visit_id"
        )
        with self.engine.transaction():
            for row in source.iter_rows():
                self.engine.insert(table_name, row)
        self.executor = DGSQLExecutor(self.engine)

    def query(self, sql: str):
        """Run one DG-SQL statement (SELECT / LEARN / PREDICT)."""
        return self.executor.execute(sql)

    def crosstab(self, row_column: str, col_column: str,
                 where: str = "") -> Table:
        """A two-way count the flat way: GROUP BY both columns.

        Note what is missing relative to the warehouse path: no member
        metadata (empty cells simply vanish), no hierarchy to drill, and
        the caller must already know both column names exist.
        """
        clause = f" WHERE {where}" if where else ""
        return self.query(
            f"SELECT {row_column}, {col_column}, COUNT(*) AS n "
            f"FROM {self.table_name}{clause} "
            f"GROUP BY {row_column}, {col_column}"
        )

    def distinct_patients(self, where: str = "") -> int:
        """Patient-distinct count, hand-written per query."""
        clause = f" WHERE {where}" if where else ""
        result = self.query(
            f"SELECT COUNT(DISTINCT patient_id) AS patients "
            f"FROM {self.table_name}{clause}"
        )
        return int(result.row(0)["patients"])

    def learn(self, model: str, target: str, features: list[str]) -> Table:
        """Phase 1 via DG-SQL LEARN."""
        return self.query(
            f"LEARN {model} PREDICTING {target} FROM {self.table_name} "
            f"USING {', '.join(features)}"
        )

    def predict(self, model: str, givens: dict[str, object]) -> dict:
        """Phase 2 via DG-SQL PREDICT."""
        rendered = ", ".join(
            f"{column} = {value!r}" if isinstance(value, str) else f"{column} = {value}"
            for column, value in givens.items()
        )
        return self.query(f"PREDICT {model} GIVEN {rendered}")
