"""The DD-DGMS facade: every Fig 2 component behind one object."""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro import obs
from repro.errors import (
    IngestError,
    OLAPError,
    PermanentIngestError,
    ReproError,
)
from repro.discri.warehouse import DiscriWarehouse, build_discri_warehouse
from repro.etl.incremental import commit_delta, run_delta
from repro.etl.pipeline import AuditEntry
from repro.etl.quarantine import (
    ListSink,
    QuarantinedRow,
    QuarantineStore,
    RedriveReport,
)
from repro.knowledge.kb import KnowledgeBase
from repro.knowledge.findings import Evidence, FindingKind
from repro.mining.awsum import AWSumClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.obs.explain import ExplainReport
from repro.olap.crosstab import Crosstab
from repro.olap.cube import Cube, CubeSnapshot
from repro.olap.mdx.evaluator import execute_mdx
from repro.olap.query import QueryBuilder
from repro.planner import PlannerConfig, QueryPlanner, coerce_planner, select_nodes
from repro.serving import resilience
from repro.serving.admission import ServingConfig, ServingRuntime, coerce_serving
from repro.serving.cache import CacheConfig, ResultCache, coerce_cache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.olap.materialized import MaterializedCube
from repro.optimize.consistency import ConsistencyReport, check_dimension_consistency
from repro.prediction.trajectory import TrajectoryPredictor
from repro.storage import faults
from repro.storage.engine import StorageEngine
from repro.storage.persistence import checkpoint as _checkpoint
from repro.storage.persistence import recover as _recover
from repro.storage.retry import RetryPolicy, get_policy, with_retry
from repro.storage.wal import WriteAheadLog
from repro.tabular.expressions import col
from repro.tabular.table import Table
from repro.viz.svg import crosstab_to_svg
from repro.warehouse.dimension import UNKNOWN_KEY
from repro.warehouse.feedback import FeedbackDimensionBuilder
from repro.warehouse.star import SnowflakeDimension

#: OLTP journal of folded feedback dimensions, used by :meth:`DDDGMS.recover`
#: to replay the closed loop after a crash.
_FOLD_TABLE = "feedback_folds"

#: default rows per OLTP ingest transaction in resilient mode — small
#: enough that a crash mid-batch loses little, large enough that the
#: per-commit fsync amortises
DEFAULT_INGEST_CHUNK_ROWS = 256


def _chunks(items: list, size: int) -> Iterable[list]:
    for start in range(0, len(items), size):
        yield items[start:start + size]


@dataclass(frozen=True)
class SystemConfig:
    """Session configuration consumed once by :func:`repro.open_system`.

    ``observability`` takes the ``REPRO_OBS`` mode strings (``""`` off,
    ``"ring"`` in-memory span trees, ``"console"`` stderr trees,
    ``"jsonl:<path>"`` JSON lines); queries slower than
    ``slow_query_threshold_s`` land in :func:`repro.obs.slow_log`.
    ``materialize_lattice`` precomputes the figure-shaped aggregate
    lattice so roll-ups are answered from nodes instead of fact scans.

    ``cache`` attaches a versioned query-result cache (``True`` for the
    default budget, an ``int`` byte budget, a
    :class:`~repro.serving.cache.CacheConfig`, or a ready
    :class:`~repro.serving.cache.ResultCache` to share between systems);
    hits are byte-identical to a fresh recompute and ingest invalidates
    by epoch bump.  ``max_workers`` sets the process-wide thread budget
    for lattice materialisation and large group-by fan-out (``None``
    leaves the ``REPRO_WORKERS`` default; parallel results are
    bit-identical to serial).

    ``serving`` bounds the read path (DESIGN.md §"Overload &
    degradation"): ``True`` for default limits, a
    :class:`~repro.serving.admission.ServingConfig` for explicit ones, or
    a ready :class:`~repro.serving.admission.ServingRuntime` to share.
    Configured, every query passes a bounded admission gate (overload
    sheds fast with :class:`~repro.errors.ServingOverloadError`), runs
    under the configured default deadline, and broken dependencies
    degrade one rung down the documented ladder instead of failing the
    query.  ``None``/``False`` keeps the historical unbounded behaviour.

    ``storage`` partitions the flat view into a compressed columnar
    store (DESIGN.md §"Partitioned storage"): ``True`` for automatic
    partitioning + encodings, a
    :class:`~repro.storage.columnar.StorageConfig` for explicit choices
    (partitioning spec, per-column encodings, scan executor).  Filtered
    queries then prune partitions via zone maps before any kernel runs —
    answers stay byte-identical.  The legacy direct spellings
    ``partitioning=`` / ``scan_procs=`` still work behind a
    ``DeprecationWarning`` and fold into ``storage``.

    ``planner`` attaches the cost-based query planner (DESIGN.md
    §"Cost-based planning"): ``True`` (the default) for a fresh planner
    with default knobs, a :class:`~repro.planner.PlannerConfig` for
    explicit ones, a ready :class:`~repro.planner.QueryPlanner` to share
    a learned workload between systems, ``None``/``False`` to disable
    recording and routing entirely.  While its statistics are cold the
    planner changes nothing — answers and lattice hit counters are
    identical to an unattached system.
    """

    observability: str = ""
    slow_query_threshold_s: float | None = None
    materialize_lattice: bool = False
    promotion_threshold: float = 3.0
    cache: "ResultCache | CacheConfig | int | bool | None" = None
    max_workers: int | None = None
    serving: "ServingRuntime | ServingConfig | bool | None" = None
    storage: "object | bool | None" = None
    #: deprecated: use ``storage=StorageConfig(partitioning=...)``
    partitioning: "object | None" = None
    #: deprecated: use ``storage=StorageConfig(scan_procs=...)``
    scan_procs: int | None = None
    planner: "QueryPlanner | PlannerConfig | bool | None" = True

    def __post_init__(self) -> None:
        # Deprecation shims (the repro.persistence precedent): the old
        # direct attributes keep working, emit a warning, and fold into
        # the canonical ``storage=StorageConfig(...)`` spelling.
        if self.partitioning is None and self.scan_procs is None:
            return
        from repro.storage.columnar import StorageConfig, coerce_storage

        warnings.warn(
            "SystemConfig(partitioning=..., scan_procs=...) is deprecated; "
            "use SystemConfig(storage=StorageConfig(partitioning=..., "
            "scan_procs=...)) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        base = coerce_storage(self.storage) or StorageConfig()
        merged = StorageConfig(
            partitioning=(
                self.partitioning
                if self.partitioning is not None
                else base.partitioning
            ),
            encodings=base.encodings,
            scan_executor=base.scan_executor,
            scan_procs=(
                self.scan_procs if self.scan_procs is not None else base.scan_procs
            ),
        )
        object.__setattr__(self, "storage", merged)
        object.__setattr__(self, "partitioning", None)
        object.__setattr__(self, "scan_procs", None)


class DDDGMS:
    """Data-Driven Decision Guidance Management System.

    Construct from a raw visit-level source table (e.g. the output of
    :class:`repro.discri.DiScRiGenerator`); the constructor runs the
    clinical ETL and loads the Fig 3 warehouse.  Every paper feature is a
    method:

    ==========================  =====================================
    paper Fig 2 component        API
    ==========================  =====================================
    DB / OLTP                    :attr:`operational_store`, :meth:`oltp_lookup`
    Data warehouse               :attr:`warehouse`
    Reporting (OLAP)             :meth:`olap`, :meth:`mdx`
    Prediction                   :meth:`trajectory_predictor`
    Visualisation                :meth:`visualize`
    Decision optimisation        :meth:`check_optimum_consistency`
    Data analytics               :meth:`isolate_cube_slice`, :meth:`awsum`
    Knowledge base               :attr:`knowledge_base`, :meth:`record_finding`
    Feedback loop                :meth:`fold_feedback`
    ==========================  =====================================
    """

    def __init__(
        self,
        source: Table,
        promotion_threshold: float = 3.0,
        *,
        durable_root: "str | Path | None" = None,
        quarantine=None,
        ingest_chunk_rows: int = DEFAULT_INGEST_CHUNK_ROWS,
        incremental: bool = True,
        _operational: StorageEngine | None = None,
    ):
        self.durable_root = Path(durable_root) if durable_root is not None else None
        if quarantine is None and self.durable_root is not None:
            quarantine = QuarantineStore.open(self.durable_root / "quarantine")
        #: dead-letter sink; its presence switches ingest into resilient mode
        self.quarantine = quarantine
        self.ingest_chunk_rows = max(1, int(ingest_chunk_rows))
        #: whether ingest may publish O(batch) delta epochs instead of
        #: rebuilding the warehouse from scratch (it always *may* fall
        #: back; ``False`` forces the full rebuild on every batch)
        self.incremental = incremental
        #: incremental-maintenance ledger, surfaced via :meth:`ingest_health`
        self.maintenance: dict = {
            "delta_publishes": 0,
            "full_rebuilds": 0,
            "retags": 0,
            "last_fallback_reason": None,
            "fallback_reasons": {},
            # adaptive-materialization ledger (policy="adaptive" only)
            "planner": {
                "adaptive_selections": 0,
                "materialized_nodes": 0,
                "evicted_nodes": 0,
                "last_decision": None,
            },
        }
        #: backoff schedule for transient faults at ingest boundaries
        #: (the shared registry default; see repro.storage.retry)
        self.retry_policy = get_policy("ingest.default")
        #: retries performed so far, per ingest boundary
        self._retry_counts: dict[str, int] = {}
        #: degraded subsystems (name -> reason), e.g. an unmaterialised lattice
        self.degraded: dict[str, str] = {}
        #: serialises ingest/fold/redrive against each other; readers never
        #: take it — they pin epochs instead (see DESIGN.md serving model)
        self._writer_lock = threading.RLock()
        #: versioned result cache, re-attached to every rebuilt cube
        self._result_cache: ResultCache | None = None
        #: admission gate + breakers, re-attached to every rebuilt cube
        self._serving: ServingRuntime | None = None
        #: partitioned-storage config, applied to every (re)built cube
        self._storage_config = None
        #: cost-based query planner, re-attached to every rebuilt cube
        #: (cold it changes nothing; see repro.planner)
        self._planner: "QueryPlanner | None" = QueryPlanner()
        #: how materialize_lattice last chose its groups, re-applied on
        #: every ingest rebuild ("fixed" or "adaptive")
        self._lattice_policy: str = "fixed"
        #: remembered adaptive-budget overrides (None -> planner config)
        self._lattice_budgets: dict = {}
        with obs.span("dgms.build", rows=source.num_rows):
            with obs.span("dgms.load_operational"):
                if _operational is not None:
                    self.operational_store = _operational
                else:
                    self.operational_store = self._load_operational(
                        source,
                        wal=self._fresh_wal(),
                        quarantine=self.quarantine,
                    )
            if self.quarantine is not None and _operational is None:
                # the canonical source is what the OLTP store accepted
                source = self.operational_store.scan("attendances")
            self.source = source
            #: delta-transformed batches not yet folded into the built
            #: table; flushed lazily by :attr:`transformed`
            self._pending_transformed: list[Table] = []
            #: rows of ``attendances`` reflected in the analytical layers
            #: vs. rows the OLTP store holds — divergence (an interrupted
            #: batch) disqualifies the next delta publish
            self._covered_rows = source.num_rows
            self._oltp_rows = source.num_rows
            with obs.span("dgms.etl_and_warehouse"):
                self._built: DiscriWarehouse = build_discri_warehouse(
                    source, quarantine=self.quarantine, batch="initial"
                )
            self.warehouse = self._built.warehouse
            self.etl_audit = self._built.etl_result.audit
            # managed: readers never flatten a half-mutated warehouse; only
            # the writer's explicit publish (at commit) moves the epoch
            self.cube = self._new_cube(self.warehouse)
            self.knowledge_base = KnowledgeBase(promotion_threshold)
            #: feedback builders folded so far, replayed after every re-ingest
            self._feedback_builders: list[FeedbackDimensionBuilder] = []
            #: lattice level-groups to re-materialise after every re-ingest
            self._lattice_groups: list[list[str]] | None = None
            #: bumped on every ingest batch
            self.data_version = 1
            if self.durable_root is not None and _operational is None:
                self._checkpoint_durable()

    def _fresh_wal(self) -> WriteAheadLog | None:
        if self.durable_root is None:
            return None
        self.durable_root.mkdir(parents=True, exist_ok=True)
        return WriteAheadLog(self.durable_root / "wal.log")

    @staticmethod
    def _load_operational(
        source: Table,
        wal: WriteAheadLog | None = None,
        quarantine=None,
        batch: str = "initial",
    ) -> StorageEngine:
        """Mirror the raw source into the OLTP engine (the "DB" of Fig 2).

        With a quarantine sink, structurally invalid rows (null/duplicate
        ``visit_id``, schema violations) divert there instead of aborting
        the load; inserts validate before mutating, so a rejected row
        leaves no partial state behind.
        """
        engine = StorageEngine(wal) if wal is not None else StorageEngine()
        engine.create_table(
            "attendances", dict(source.schema), primary_key="visit_id"
        )
        engine.create_table(
            _FOLD_TABLE, {"fold_id": "int", "dimension": "str"},
            primary_key="fold_id",
        )
        with engine.transaction():
            for i, row in enumerate(source.iter_rows()):
                if quarantine is None:
                    engine.insert("attendances", row)
                    continue
                try:
                    engine.insert("attendances", row)
                except ReproError as exc:
                    quarantine.add(
                        QuarantinedRow.from_error(
                            row, "oltp", exc, batch=batch, source_index=i
                        )
                    )
        engine.create_index("attendances", "patient_id")
        return engine

    @classmethod
    def recover(
        cls,
        durable_root: "str | Path",
        promotion_threshold: float = 3.0,
        *,
        quarantine=None,
        feedback_builders: Sequence[FeedbackDimensionBuilder] = (),
        ingest_chunk_rows: int = DEFAULT_INGEST_CHUNK_ROWS,
    ) -> "DDDGMS":
        """Rebuild a durable system from disk after a crash.

        Recovers the operational store (newest valid snapshot generation +
        WAL replay) and the quarantine store, rebuilds the warehouse over
        the recovered history, and replays the feedback-fold journal
        against the supplied ``feedback_builders`` (predicates are code,
        so the caller must provide the builders; journal entries with no
        matching builder are skipped with a warning).  Re-ingesting the
        batch that was interrupted is then idempotent: rows whose
        ``visit_id`` already landed are skipped, not duplicated.
        """
        root = Path(durable_root)
        engine = _recover(root / "snaps", root / "wal.log")
        if quarantine is None:
            quarantine = QuarantineStore.open(root / "quarantine")
        source = engine.scan("attendances")
        system = cls(
            source,
            promotion_threshold,
            durable_root=root,
            quarantine=quarantine,
            ingest_chunk_rows=ingest_chunk_rows,
            _operational=engine,
        )
        by_name = {builder.name: builder for builder in feedback_builders}
        for row in engine.scan(_FOLD_TABLE).iter_rows():
            name = str(row["dimension"])
            builder = by_name.get(name)
            if builder is None:
                warnings.warn(
                    f"feedback dimension {name!r} was folded before the "
                    f"crash but no matching builder was supplied; skipping",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            system.fold_feedback(builder)
        return system

    # ------------------------------------------------------------------
    # Lazily-concatenated history views
    # ------------------------------------------------------------------

    @property
    def source(self) -> Table:
        """The raw visit history (delta batches concatenated on demand).

        A delta ingest appends its batch as an O(1) block; the first
        direct read folds the blocks into one table.  Published epochs
        never read through here — they carry their own row blocks.
        """
        if len(self._source_parts) > 1:
            self._source_parts = [Table.concat_all(self._source_parts)]
        return self._source_parts[0]

    @source.setter
    def source(self, table: Table) -> None:
        self._source_parts: list[Table] = [table]

    def _source_columns(self) -> list[str]:
        """Source column names without forcing the lazy concatenation."""
        return self._source_parts[0].column_names

    @property
    def transformed(self) -> Table:
        """The post-ETL visit table (delta batches folded in on read)."""
        if self._pending_transformed:
            self._built.etl_result.table = Table.concat_all(
                [self._built.etl_result.table, *self._pending_transformed]
            )
            self._pending_transformed = []
        return self._built.transformed

    # ------------------------------------------------------------------
    # Serving: epochs + result cache
    # ------------------------------------------------------------------

    def attach_result_cache(
        self, cache: "ResultCache | CacheConfig | int | bool | None"
    ) -> ResultCache | None:
        """Attach (or detach, with ``None``) the versioned result cache.

        Accepts every ``SystemConfig(cache=...)`` spelling.  The cache
        survives ingest rebuilds: it is re-attached to each successor
        cube, and epoch-unique keys guarantee entries computed on an old
        epoch are never served for a new one.
        """
        self._result_cache = coerce_cache(cache)
        self.cube.attach_result_cache(self._result_cache)
        return self._result_cache

    @property
    def result_cache(self) -> ResultCache | None:
        """The attached result cache, if any."""
        return self._result_cache

    def attach_serving(
        self, serving: "ServingRuntime | ServingConfig | bool | None"
    ) -> ServingRuntime | None:
        """Attach (or detach, with ``None``) admission control + breakers.

        Accepts every ``SystemConfig(serving=...)`` spelling.  Like the
        result cache, the runtime survives ingest rebuilds — it is
        re-attached to each successor cube, so the limits govern the
        *system*, not one epoch.
        """
        self._serving = coerce_serving(serving)
        self.cube.attach_serving(self._serving)
        return self._serving

    def attach_planner(
        self, planner: "QueryPlanner | PlannerConfig | bool | None"
    ) -> QueryPlanner | None:
        """Attach (or detach, with ``None``) the cost-based query planner.

        Accepts every ``SystemConfig(planner=...)`` spelling.  Like the
        result cache, the planner survives ingest rebuilds — it is
        re-attached to each successor cube, so the workload statistics
        it learns describe the *system*, not one epoch.  Detaching also
        forgets an adaptive materialization policy (the selector cannot
        run without recorded statistics).
        """
        self._planner = coerce_planner(planner)
        self.cube.attach_planner(self._planner)
        if self._planner is None and self._lattice_policy == "adaptive":
            self._lattice_policy = "fixed"
        return self._planner

    @property
    def planner(self) -> QueryPlanner | None:
        """The attached query planner, if any."""
        return self._planner

    @property
    def serving(self) -> ServingRuntime | None:
        """The attached serving runtime (admission + breakers), if any."""
        return self._serving

    def _new_cube(self, warehouse) -> Cube:
        """A managed cube with the system's storage config pre-attached.

        Storage must attach at *construction*, not commit: lattice
        re-materialisation forces the new cube's epoch before
        :meth:`_commit_cube` runs, and that first epoch must already be
        partitioned or the whole rebuild serves monolithic.
        """
        cube = Cube(warehouse, managed=True)
        if self._storage_config is not None:
            cube.attach_storage(self._storage_config)
        if self._planner is not None:
            # attached at construction too (not just commit) so queries
            # served while the cube is staged feed the same workload model
            cube.attach_planner(self._planner)
        return cube

    def attach_storage(self, storage) -> "object | None":
        """Attach (or detach, with ``None``) partitioned columnar storage.

        Accepts every ``SystemConfig(storage=...)`` spelling
        (:class:`~repro.storage.columnar.StorageConfig`, a mapping of its
        fields, ``True`` for defaults).  Every ingest-rebuilt successor
        cube inherits the config; if the current cube has already
        published an epoch, a fresh store-backed epoch is published
        immediately (a re-materialised lattice is the caller's job).
        Returns the coerced config.
        """
        from repro.storage.columnar import coerce_storage

        with self._writer_lock:
            self._storage_config = coerce_storage(storage)
            self.cube.attach_storage(self._storage_config)
            if self.cube._state is not None:
                state = self.cube.publish()
                self._cache_epoch_published(state.epoch)
        return self._storage_config

    @property
    def storage_config(self):
        """The attached partitioned-storage config, if any."""
        return self._storage_config

    def compact_storage(self):
        """Merge the current epoch's delta segments (writer-serialised).

        Publishes a compacted store as a new epoch; pinned snapshots keep
        the old segments.  No-op (returns ``None``) without a
        partitioned store.
        """
        with self._writer_lock:
            state = self.cube.compact_storage()
            if state is not None:
                self._cache_epoch_published(state.epoch)
            return state

    def _storage_health(self) -> "dict | None":
        """Segment/encoding stats for ``ingest_health()`` (None if unused)."""
        if self._storage_config is None:
            return None
        from repro.storage.columnar import executor as _scan_executor

        # processes→serial scan fallbacks are process-local, not per-epoch;
        # chaos sweeps assert on this to catch silently-degraded fan-out
        degraded = {"scan_procs_degraded": _scan_executor.degraded_count()}
        state = self.cube._state
        if state is None or state.store is None:
            return {"attached": True, "built": False, **degraded}
        return {"attached": True, "built": True, **degraded, **state.store.stats()}

    @property
    def epoch(self) -> int:
        """The currently published epoch id (bumps on every commit)."""
        return self.cube.epoch

    def current_epoch(self) -> CubeSnapshot:
        """Pin the current epoch for a consistent multi-query read.

        Every query on the returned snapshot answers from the same
        committed state, no matter how many ingests commit meanwhile —
        the unit of snapshot isolation for report generation.
        """
        return self.cube.snapshot()

    def _commit_cube(self, cube: Cube) -> None:
        """Publish-on-commit: force the epoch off to the side, then swap.

        The epoch state (flatten + qualified attributes) is built on the
        writer thread *before* ``self.cube`` moves, so readers either see
        the old cube (old epoch, fully intact) or the new cube with its
        epoch ready — never a half-built state.
        """
        if self._result_cache is not None:
            cube.attach_result_cache(self._result_cache)
        if self._serving is not None:
            cube.attach_serving(self._serving)
        if self._planner is not None:
            cube.attach_planner(self._planner)
        state = cube._current_state()
        self.cube = cube
        self._cache_epoch_published(state.epoch)

    def _cache_epoch_published(self, epoch: int) -> None:
        if self._result_cache is not None:
            self._result_cache.on_epoch_published(epoch)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def oltp_lookup(self, visit_id: int) -> dict[str, object] | None:
        """Point query on the operational store (OLTP reporting)."""
        return self.operational_store.get_by_pk("attendances", visit_id)

    def patient_history(self, patient_id: int) -> list[dict[str, object]]:
        """All attendances of one patient, oldest first."""
        rows = self.operational_store.find("attendances", "patient_id", patient_id)
        rows.sort(key=lambda r: r["visit_date"])
        return rows

    def query(self) -> QueryBuilder:
        """Start a drag-and-drop-style OLAP query on the cube.

        This is the canonical programmatic entry point: chain
        ``.rows()/.columns()/.measure()/.where()`` and finish with
        ``.execute()`` (or ``.explain()`` for the measured plan).
        """
        return self.cube.query()

    def olap(self) -> QueryBuilder:
        """Alias of :meth:`query` (the paper's "Reporting — OLAP" name)."""
        return self.query()

    def mdx(self, query: str) -> Crosstab | ExplainReport:
        """Execute an MDX query against the cube.

        An ``EXPLAIN``-prefixed query returns an
        :class:`~repro.obs.explain.ExplainReport` (grid in ``.result``)
        instead of the bare :class:`~repro.olap.crosstab.Crosstab`.
        """
        return execute_mdx(self.cube, query)

    def explain(self, query: "str | QueryBuilder") -> ExplainReport:
        """Measured plan/profile for an MDX string or a built query.

        Accepts MDX text (the ``EXPLAIN`` prefix is implied) or a
        :class:`~repro.olap.query.QueryBuilder` from :meth:`query`.  The
        report names the lattice node or base scan that answered, with
        rows scanned and wall time per stage; the result grid rides along
        in ``.result``.
        """
        if isinstance(query, QueryBuilder):
            return query.explain()
        if isinstance(query, str):
            if not query.lstrip().upper().startswith("EXPLAIN"):
                query = f"EXPLAIN {query}"
            report = execute_mdx(self.cube, query)
            assert isinstance(report, ExplainReport)
            return report
        raise OLAPError(
            f"explain() takes MDX text or a QueryBuilder, got {type(query).__name__}"
        )

    def materialize_lattice(
        self,
        level_groups: Sequence[Sequence[str]] | None = None,
        max_workers: int | None = None,
        *,
        policy: str = "fixed",
        budget_nodes: int | None = None,
        budget_cells: int | None = None,
        min_gain_fraction: float | None = None,
    ) -> "MaterializedCube":
        """Precompute aggregate lattice nodes and route queries through them.

        ``policy="fixed"`` (the default) materialises the given groups —
        or, with no argument, one node per figure-shaped roll-up (the
        Fig 4–6 level combinations).  ``policy="adaptive"`` ignores
        ``level_groups`` and instead asks the attached planner's
        HRU-style greedy selector (:func:`repro.planner.select_nodes`)
        to pick the nodes the *recorded workload* actually earns, under
        a node/cell budget (overridable here, defaulting to the
        planner's :class:`~repro.planner.PlannerConfig`).  A cold
        workload selects nothing — queries keep answering from base
        scans until statistics accumulate and the next materialisation.

        Either way the policy and groups are remembered and re-applied
        after every :meth:`ingest_visits` rebuild (adaptive re-runs the
        selection against the then-current workload, so hot nodes follow
        the traffic); the decisions land in ``maintenance["planner"]``
        and :meth:`ingest_health`.
        """
        from repro.olap.materialized import MaterializedCube

        if policy not in ("fixed", "adaptive"):
            raise OLAPError(
                f"materialize_lattice policy must be 'fixed' or 'adaptive', "
                f"got {policy!r}"
            )
        if policy == "adaptive":
            if level_groups is not None:
                raise OLAPError(
                    "policy='adaptive' chooses its own level groups; drop "
                    "level_groups or use policy='fixed'"
                )
            if self._planner is None:
                raise OLAPError(
                    "adaptive materialization needs an attached planner "
                    "(SystemConfig(planner=...) or attach_planner(True))"
                )
            self._lattice_budgets = {
                "budget_nodes": budget_nodes,
                "budget_cells": budget_cells,
                "min_gain_fraction": min_gain_fraction,
            }
            groups = self._select_adaptive_groups(self.cube)
        elif level_groups is None:
            groups = [list(group) for group in self.DEFAULT_LATTICE_GROUPS]
        else:
            groups = [list(group) for group in level_groups]
        self._lattice_policy = policy
        lattice = MaterializedCube(self.cube).materialize(
            groups, max_workers=max_workers
        )
        self.cube.attach_lattice(lattice)
        self._lattice_groups = groups
        return lattice

    def _select_adaptive_groups(self, cube: Cube) -> list[list[str]]:
        """Run the greedy selector against the recorded workload.

        Uses the given cube's current epoch for level availability and
        cardinalities (during ingest that is the *staged* cube, so the
        selection describes the epoch about to be published).  Records
        the materialize/evict decision in ``maintenance["planner"]``.
        """
        planner = self._planner
        assert planner is not None  # callers gate on the attached planner
        cfg = planner.config
        overrides = self._lattice_budgets
        state = cube._current_state()
        selection = select_nodes(
            planner.stats,
            planner.cost,
            available_levels=state.qattrs,
            cardinality=lambda level: len(state.flat.column(level).unique()),
            flat_rows=state.num_rows,
            budget_nodes=(
                cfg.budget_nodes
                if overrides.get("budget_nodes") is None
                else overrides["budget_nodes"]
            ),
            budget_cells=(
                cfg.budget_cells
                if overrides.get("budget_cells") is None
                else overrides["budget_cells"]
            ),
            min_gain_fraction=(
                cfg.min_gain_fraction
                if overrides.get("min_gain_fraction") is None
                else overrides["min_gain_fraction"]
            ),
        )
        self._record_lattice_decision(selection)
        return selection.groups

    def _record_lattice_decision(self, selection) -> None:
        """Fold one adaptive selection into the maintenance ledger."""
        previous = {tuple(g) for g in (self._lattice_groups or [])}
        chosen = {tuple(g) for g in selection.groups}
        materialized = sorted(chosen - previous)
        evicted = sorted(previous - chosen)
        ledger = self.maintenance["planner"]
        ledger["adaptive_selections"] += 1
        ledger["materialized_nodes"] += len(materialized)
        ledger["evicted_nodes"] += len(evicted)
        ledger["last_decision"] = {
            "selected": [list(g) for g in selection.groups],
            "materialized": [list(g) for g in materialized],
            "evicted": [list(g) for g in evicted],
            "budget_nodes": selection.budget_nodes,
            "budget_cells": selection.budget_cells,
            "est_cells_total": selection.est_cells_total,
            "rejected": selection.rejected,
            "report": list(selection.report),
        }
        obs.count("planner.adaptive.selections")

    #: figure-shaped roll-ups used by :meth:`materialize_lattice` default
    DEFAULT_LATTICE_GROUPS: tuple[tuple[str, ...], ...] = (
        (
            "conditions.age_band", "personal.gender",
            "personal.family_history_diabetes",
        ),
        ("conditions.age_band10", "personal.gender", "conditions.diabetes_status"),
        ("conditions.age_band10", "conditions.ht_years_band", "conditions.hypertension"),
    )

    # ------------------------------------------------------------------
    # Prediction / visualisation
    # ------------------------------------------------------------------

    def episodes(self, value_column: str = "fbg", min_support: int = 1) -> Table:
        """Per-patient temporal-abstraction episodes of one measure.

        Uses the clinical scheme for the measure when one exists (FBG by
        default), giving the qualitative "patient was Diabetic from X to
        Y" view of paper §IV's temporal abstraction.
        """
        from repro.discri.schemes import clinical_schemes
        from repro.etl.temporal import episodes_table

        schemes = clinical_schemes()
        if value_column not in schemes:
            raise ReproError(
                f"no clinical scheme for {value_column!r} "
                f"(have: {', '.join(sorted(schemes))})"
            )
        return episodes_table(
            self.source, "patient_id", "visit_date", value_column,
            schemes[value_column], min_support=min_support,
        )

    def trajectory_predictor(
        self, similarity_attributes: Sequence[str] | None = None
    ) -> TrajectoryPredictor:
        """Time-course predictor over the transformed visit data."""
        rows = self.transformed.to_rows()
        return TrajectoryPredictor(
            rows,
            patient_key="patient_id",
            order_key="visit_number",
            stage_key="fbg_band",
            similarity_attributes=similarity_attributes,
        )

    def visualize(self, crosstab: Crosstab, title: str, path=None) -> str:
        """Render an OLAP outcome as SVG (paper Figs 5/6 style)."""
        return crosstab_to_svg(crosstab, title, path)

    # ------------------------------------------------------------------
    # Decision optimisation / analytics
    # ------------------------------------------------------------------

    def check_optimum_consistency(
        self,
        levels: Sequence[str],
        target: str,
        aggregation: str = "mean",
        direction: str = "max",
        min_records: int = 10,
        removable: Sequence[str] | None = None,
    ) -> ConsistencyReport:
        """Validate an optimal aggregate against dimension changes."""
        return check_dimension_consistency(
            self.warehouse,
            levels,
            target,
            aggregation=aggregation,
            direction=direction,
            min_records=min_records,
            removable=removable,
        )

    def isolate_cube_slice(self, **level_values: object) -> list[dict]:
        """Dice the flattened cube and return rows for mining.

        Keyword names are levels (bare attribute names are resolved);
        values are the member to fix.  This is the paper's "cubes of data
        ... can be isolated using OLAP and further analysed using data
        mining algorithms".
        """
        flat = self.cube.flat
        predicate = None
        for level, value in level_values.items():
            qualified = self.cube.check_level(level)
            clause = col(qualified).eq(value)
            predicate = clause if predicate is None else (predicate & clause)
        rows = (flat.filter(predicate) if predicate is not None else flat).to_rows()
        # strip the dimension prefixes for model-friendly keys
        return [
            {key.split(".", 1)[-1]: value for key, value in row.items()}
            for row in rows
        ]

    def awsum(
        self, target: str, features: Sequence[str], min_support: int = 10,
        rows: list[dict] | None = None,
    ) -> AWSumClassifier:
        """Fit AWSum on the transformed visit data (or a supplied slice)."""
        data = rows if rows is not None else self.transformed.to_rows()
        return AWSumClassifier(min_support=min_support).fit(
            data, target, list(features)
        )

    def classifier(
        self, target: str, features: Sequence[str],
        rows: list[dict] | None = None,
    ) -> NaiveBayesClassifier:
        """Fit the default probabilistic classifier on visit data."""
        data = rows if rows is not None else self.transformed.to_rows()
        return NaiveBayesClassifier().fit(data, target, list(features))

    # ------------------------------------------------------------------
    # Knowledge / feedback loop
    # ------------------------------------------------------------------

    def record_finding(
        self,
        key: str,
        kind: FindingKind,
        statement: str,
        source: str,
        description: str,
        weight: float = 1.0,
        tags: Sequence[str] = (),
    ):
        """Record an outcome as a knowledge-base finding."""
        return self.knowledge_base.record(
            key, kind, statement,
            Evidence(source=source, description=description, weight=weight),
            tags=tags,
        )

    def fold_feedback(self, builder: FeedbackDimensionBuilder):
        """Fold clinician feedback into the warehouse as a new dimension.

        The builder is remembered so its predicates replay automatically
        after the next :meth:`ingest_visits` rebuild.  In resilient mode
        the fold is idempotent (an already-folded dimension is returned,
        not re-added), retried on transient faults at the
        ``ingest.feedback`` boundary, journaled in the operational store
        for :meth:`recover`, and checkpointed when the system is durable.
        """
        with self._writer_lock, obs.span(
            "dgms.fold_feedback", dimension=builder.name
        ):
            prev_state = self.cube._state
            old_lattice = self.cube.lattice
            if self.quarantine is None:
                dimension = self.warehouse.fold_feedback(builder)
                self._feedback_builders.append(builder)
                self._journal_fold(builder.name)
                # the in-place fold never touches the published epoch's
                # flat view; publishing moves readers to the folded state
                state = self.cube.publish()
                if not self._retag_lattice(old_lattice, prev_state, state):
                    self._rematerialize_lattice()
                self._cache_epoch_published(state.epoch)
                return dimension

            def fold():
                if builder.name in self.warehouse.dimension_names:
                    return self.warehouse.schema.dimensions[builder.name]
                return self.warehouse.fold_feedback(builder)

            dimension = self._with_retry("ingest.feedback", fold)
            if all(b.name != builder.name for b in self._feedback_builders):
                self._feedback_builders.append(builder)
            self._journal_fold(builder.name)
            state = self.cube.publish()
            if not self._retag_lattice(old_lattice, prev_state, state):
                self._lattice_or_degrade()
            self._cache_epoch_published(state.epoch)
            if self.durable_root is not None:
                self._with_retry("ingest.checkpoint", self._checkpoint_durable)
            return dimension

    def _retag_lattice(self, old_lattice, prev_state, new_state) -> bool:
        """Carry the lattice across a feedback fold without recomputing.

        A fold appends a dimension *column*; every existing cell of every
        materialised node is untouched, so the fresh lattice can simply be
        retagged to the folded epoch.  Queries grouping by the new
        dimension miss the lattice and scan — correct, just unaccelerated
        until the next materialisation.
        """
        if (
            not self.incremental
            or self._lattice_groups is None
            or old_lattice is None
            or prev_state is None
            or not old_lattice.fresh_for_state(prev_state)
        ):
            return False
        self.cube.attach_lattice(old_lattice.retag(new_state))
        self.maintenance["retags"] += 1
        obs.count("dgms.fold.lattice_retag")
        return True

    def ingest_visits(self, new_visits: Table, *, batch: str | None = None) -> int:
        """Accumulate a new batch of attendances (the screening clinic's
        yearly intake) and refresh every layer.

        The batch must carry the source schema with fresh ``visit_id``
        values.  The operational store takes the rows transactionally;
        the analytical layers then refresh **incrementally** where
        possible — the appended rows run through the delta form of the
        ETL, append to the live star schema, and publish an O(batch)
        delta epoch with the lattice folded forward — and fall back to
        the full rebuild (combined-history ETL + warehouse + lattice
        re-materialisation, with folded feedback re-derived) whenever the
        delta algebra cannot express the change: schema/dimension drift,
        fill-value or cardinality drift, an interrupted earlier batch, or
        ``incremental=False``.  Both paths produce bit-identical query
        answers; :meth:`ingest_health` reports which path each batch
        took under ``"maintenance"``.  Returns the number of ingested
        rows.

        Without a quarantine sink the batch is all-or-nothing (one bad row
        aborts and rolls back).  With one — :class:`DDDGMS` built with
        ``quarantine=...`` or ``durable_root=...`` — ingest is
        **resilient**: malformed rows divert to the dead-letter store,
        rows whose ``visit_id`` is already present are skipped (so
        re-running an interrupted batch resumes instead of duplicating),
        the OLTP intake commits in chunks of ``ingest_chunk_rows``, and
        every named boundary (``ingest.oltp``, ``ingest.rebuild``,
        ``ingest.quarantine``, ``ingest.feedback``, ``ingest.lattice``,
        ``ingest.checkpoint``) retries transient faults with backoff.
        Permanent lattice failure degrades to un-materialised queries
        instead of failing the batch.
        """
        if new_visits.num_rows == 0:
            return 0
        if self.quarantine is None:
            return self._ingest_strict(new_visits)
        return self._ingest_resilient(
            new_visits, batch or f"batch-{self.data_version + 1}"
        )

    def _ingest_strict(self, new_visits: Table) -> int:
        with self._writer_lock, obs.span("dgms.ingest", rows=new_visits.num_rows):
            with obs.span("dgms.ingest.oltp"):
                with self.operational_store.transaction():
                    for row in new_visits.iter_rows():
                        self.operational_store.insert("attendances", row)
            self._oltp_rows += new_visits.num_rows
            batch_tbl = new_visits.select(self._source_columns())
            if self._try_ingest_delta(
                batch_tbl, batch=f"batch-{self.data_version + 1}"
            ):
                self.data_version += 1
                obs.count("dgms.ingest.batches")
                return new_visits.num_rows
            # everything analytical builds in locals; readers keep serving
            # the published epoch until the commit block swaps the handles
            source = self.source.append(batch_tbl)
            with obs.span("dgms.ingest.rebuild"):
                built = build_discri_warehouse(source)
                cube = self._new_cube(built.warehouse)
            with obs.span(
                "dgms.ingest.feedback_replay",
                builders=len(self._feedback_builders),
            ):
                for builder in self._feedback_builders:
                    built.warehouse.fold_feedback(builder)
            self._rematerialize_lattice(cube)
            # commit
            self.source = source
            self._pending_transformed = []
            self._covered_rows = source.num_rows
            self._built = built
            self.warehouse = built.warehouse
            self.etl_audit = built.etl_result.audit
            self._commit_cube(cube)
            self.data_version += 1
            self.maintenance["full_rebuilds"] += 1
            obs.count("dgms.ingest.batches")
        return new_visits.num_rows

    def _ingest_resilient(self, new_visits: Table, batch: str) -> int:
        with self._writer_lock, obs.span(
            "dgms.ingest", rows=new_visits.num_rows, batch=batch
        ):
            rows = new_visits.select(self._source_columns()).to_rows()
            # Idempotent resume: rows that already landed (a committed
            # chunk of an interrupted run) are skipped, not duplicated.
            fresh: list[tuple[int, dict]] = []
            skipped = 0
            for i, row in enumerate(rows):
                vid = row.get("visit_id")
                if vid is not None and self.operational_store.get_by_pk(
                    "attendances", vid
                ) is not None:
                    skipped += 1
                    continue
                fresh.append((i, row))
            accepted_ids: list[object] = []
            with obs.span("dgms.ingest.oltp", rows=len(fresh), skipped=skipped):
                for chunk in _chunks(fresh, self.ingest_chunk_rows):
                    chunk_ids = self._with_retry(
                        "ingest.oltp",
                        lambda chunk=chunk: self._write_chunk(chunk, batch),
                    )
                    accepted_ids.extend(chunk_ids)
                    # counted per committed chunk: a later crash leaves the
                    # ledger showing the warehouse behind the OLTP store,
                    # which disqualifies the next delta publish
                    self._oltp_rows += len(chunk_ids)
            accepted = len(accepted_ids)
            if self._try_ingest_delta(
                self._delta_batch_from_store(accepted_ids),
                batch=batch,
                resilient=True,
            ):
                self.data_version += 1
                obs.count("dgms.ingest.batches")
                if hasattr(self.quarantine, "__len__"):
                    obs.set_gauge("ingest.quarantine.size", len(self.quarantine))
                return accepted
            # analytical state builds in locals; a failed (permanent)
            # rebuild aborts the batch with the old epoch still serving
            source = self.operational_store.scan("attendances")
            with obs.span("dgms.ingest.rebuild"):
                built, cube, staged = self._with_retry(
                    "ingest.rebuild",
                    lambda: self._rebuild_warehouse(source, batch),
                )
            self._with_retry(
                "ingest.quarantine", lambda: self._commit_staged(staged)
            )
            with obs.span(
                "dgms.ingest.feedback_replay",
                builders=len(self._feedback_builders),
            ):
                self._with_retry(
                    "ingest.feedback",
                    lambda: self._replay_feedback(built.warehouse),
                )
            self._lattice_or_degrade(cube)
            if self.durable_root is not None:
                self._with_retry("ingest.checkpoint", self._checkpoint_durable)
            # commit
            self.source = source
            self._pending_transformed = []
            self._covered_rows = source.num_rows
            self._oltp_rows = source.num_rows
            self._built = built
            self.warehouse = built.warehouse
            self.etl_audit = built.etl_result.audit
            self._commit_cube(cube)
            self.data_version += 1
            self.maintenance["full_rebuilds"] += 1
            obs.count("dgms.ingest.batches")
            if hasattr(self.quarantine, "__len__"):
                obs.set_gauge("ingest.quarantine.size", len(self.quarantine))
        return accepted

    # -- resilient-ingest plumbing --------------------------------------

    def _write_chunk(
        self, chunk: list[tuple[int, dict]], batch: str
    ) -> list[object]:
        """One retryable OLTP transaction; bad rows quarantine, not abort.

        Returns the ``visit_id`` of every accepted row, in write order —
        the delta-ingest path re-fetches exactly these rows.
        """
        accepted: list[object] = []
        with self.operational_store.transaction():
            for index, row in chunk:
                try:
                    self.operational_store.insert("attendances", row)
                    accepted.append(row.get("visit_id"))
                except ReproError as exc:
                    self.quarantine.add(
                        QuarantinedRow.from_error(
                            row, "oltp", exc, batch=batch, source_index=index
                        )
                    )
        return accepted

    def _rebuild_warehouse(
        self, source: Table, batch: str
    ) -> tuple[DiscriWarehouse, Cube, ListSink]:
        """Rebuild ETL + warehouse + cube *off to the side*.

        Returns ``(built, cube, staged)`` without touching any published
        handle — the caller commits them after every downstream step
        succeeds.  Quarantine entries are staged in a list and committed
        to the durable store only after the rebuild succeeds
        (:meth:`_commit_staged`), so a retried rebuild cannot
        double-quarantine.
        """
        staged = ListSink()
        built = build_discri_warehouse(source, quarantine=staged, batch=batch)
        cube = self._new_cube(built.warehouse)
        return built, cube, staged

    def _commit_staged(self, staged: ListSink) -> None:
        for entry in staged.entries:
            self.quarantine.add(entry)

    # -- incremental maintenance (delta folding) -------------------------

    def _delta_ineligible_reason(self, batch_rows: int) -> str | None:
        """Why this batch cannot be published as a delta (None = it can).

        The decision table of DESIGN.md "Incremental maintenance": any
        schema/dimension drift, missing cross-batch ETL state, or a
        warehouse that lags the OLTP store (an interrupted earlier batch)
        forces the full rebuild.
        """
        if not self.incremental:
            return "incremental maintenance disabled"
        if self._built.loader is None:
            return "warehouse build retained no loader"
        if self._built.delta_state is None:
            return self._built.delta_reason or "no cross-batch ETL state"
        if self.cube._state is None:  # caller primes this; guard anyway
            return "no published epoch to extend"
        if self.cube._state.schema_version != self.cube._current_version():
            return "dimension schema changed since the published epoch"
        if self._covered_rows + batch_rows != self._oltp_rows:
            return "warehouse lags the operational store (interrupted batch)"
        return None

    def _note_delta_fallback(self, reason: str) -> None:
        self.maintenance["last_fallback_reason"] = reason
        per: dict = self.maintenance["fallback_reasons"]
        per[reason] = per.get(reason, 0) + 1
        obs.count("dgms.ingest.delta_fallback")

    def _delta_batch_from_store(self, accepted_ids: list[object]) -> Table:
        """Fetch the accepted rows back from the OLTP store, scan-identical.

        The full-rebuild path sources from ``scan("attendances")``, so a
        delta batch must carry exactly the values the engine stored — any
        coercion the insert applied included — or the parity oracle would
        diverge on the next full rebuild.
        """
        columns = self._source_columns()
        schema = {
            name: self._source_parts[0].schema[name] for name in columns
        }
        rows = []
        for vid in accepted_ids:
            stored = self.operational_store.get_by_pk("attendances", vid)
            if stored is None:  # pragma: no cover - just inserted
                raise IngestError(f"accepted visit {vid!r} vanished")
            rows.append({name: stored.get(name) for name in columns})
        return Table.from_rows(rows, schema=schema)

    def _try_ingest_delta(
        self, batch_tbl: Table, *, batch: str, resilient: bool = False
    ) -> bool:
        """Attempt an O(batch) delta publish; ``False`` → caller rebuilds.

        Runs the incremental ETL over just the appended rows, loads them
        into the *live* star schema (readers are safe: published epochs
        snapshot their row blocks), flattens only the appended fact
        slice, publishes a delta epoch and folds the lattice forward.
        Every ineligible or surprising condition falls back to the full
        rebuild instead of guessing — the fallback is always correct.
        """
        if self.cube._state is None and self.incremental:
            # nothing published yet (no query ran): pin the pre-batch
            # epoch now so there is a base to extend — the flatten costs
            # what the fallback rebuild would have paid anyway, and the
            # warehouse does not yet contain this batch's rows
            self.cube._current_state()
        reason = self._delta_ineligible_reason(batch_tbl.num_rows)
        if reason is None:
            base = self._source_parts[0]
            if (
                batch_tbl.column_names != base.column_names
                or batch_tbl.schema != base.schema
            ):
                reason = "batch schema differs from the source history"
        if reason is not None:
            self._note_delta_fallback(reason)
            return False
        state = self._built.delta_state
        prev_state = self.cube._state
        old_lattice = self.cube.lattice
        staged = ListSink() if resilient else None
        try:
            with obs.span("dgms.ingest.delta", rows=batch_tbl.num_rows):
                outcome = run_delta(
                    state, batch_tbl, resilient=resilient, batch_tag=batch
                )
                if outcome.fallback_reason is not None:
                    self._note_delta_fallback(outcome.fallback_reason)
                    return False
                delta_tbl = outcome.table
                loader = self._built.loader
                fact_start = loader.schema.fact.num_rows
                report = loader.load(
                    delta_tbl,
                    quarantine=staged,
                    batch=batch,
                    source_indices=outcome.kept_indices,
                    extra_keys=self._feedback_key_resolver(),
                )
                if report.quarantined_indices:
                    dropped = set(report.quarantined_indices)
                    delta_tbl = delta_tbl.take(
                        [
                            i
                            for i in range(delta_tbl.num_rows)
                            if i not in dropped
                        ]
                    )
                delta_flat = loader.schema.flatten(start=fact_start)
                new_state = self.cube.publish_delta(delta_flat)
        except Exception as exc:  # noqa: BLE001 - fallback must be total
            # any failure before the publish leaves readers on the old
            # epoch; the full rebuild replaces the (possibly partially
            # loaded) warehouse wholesale, so nothing leaks
            self._note_delta_fallback(f"{type(exc).__name__}: {exc}")
            return False
        # -- committed: the delta epoch is published ----------------------
        commit_delta(state, outcome)
        self._source_parts.append(batch_tbl)
        self._covered_rows += batch_tbl.num_rows
        self._pending_transformed.append(delta_tbl)
        self.etl_audit.append(
            AuditEntry(
                "delta",
                outcome.audit
                or f"batch {batch!r}: +{delta_tbl.num_rows} rows",
            )
        )
        if staged is not None:
            entries = list(outcome.quarantined) + list(staged.entries)
            if entries:
                self._with_retry(
                    "ingest.quarantine",
                    lambda: [self.quarantine.add(e) for e in entries],
                )
        self._cache_epoch_published(new_state.epoch)
        self.maintenance["delta_publishes"] += 1
        obs.count("dgms.ingest.delta_publish")
        self._fold_lattice_forward(
            old_lattice, prev_state, new_state, delta_flat
        )
        if self.durable_root is not None:
            self._with_retry("ingest.checkpoint", self._checkpoint_durable)
        return True

    def _fold_lattice_forward(
        self, old_lattice, prev_state, new_state, delta_flat: Table
    ) -> None:
        """Carry the materialised lattice to the delta epoch.

        Folds per-node aggregate deltas into the previous epoch's node
        tables (the O(batch) path).  A stale or missing lattice is fully
        re-materialised instead; in resilient mode a permanently failing
        fold degrades to un-materialised queries, exactly like
        :meth:`_lattice_or_degrade`.
        """
        if self._lattice_groups is None:
            return
        if old_lattice is None or not old_lattice.fresh_for_state(prev_state):
            # nothing valid to fold forward — rebuild from scratch
            if self.quarantine is None:
                self._rematerialize_lattice()
            else:
                self._lattice_or_degrade()
            return

        def fold():
            faults.fire("lattice.delta_merge")
            return old_lattice.fold_delta(new_state, delta_flat)

        if self.quarantine is None:
            self.cube.attach_lattice(fold())
            return
        try:
            folded = self._with_retry("lattice.delta_merge", fold)
        except PermanentIngestError as exc:
            self.cube.detach_lattice()
            self.degraded["lattice"] = str(exc)
            obs.count("ingest.degraded")
            warnings.warn(
                f"lattice delta-merge failed; queries fall back to "
                f"un-materialised scans until the next successful ingest: "
                f"{exc}",
                RuntimeWarning,
                stacklevel=4,
            )
        else:
            self.cube.attach_lattice(folded)
            self.degraded.pop("lattice", None)

    def _feedback_key_resolver(self):
        """Surrogate-key resolver for folded feedback dimensions.

        A delta load feeds the loader's original dimension specs, but the
        fact grain may have grown feedback dimensions since; this closure
        replays each remembered builder's predicate rules over the
        would-be flattened row — base dimensions, measures, then earlier
        feedback verdicts, exactly the order a full-rebuild replay sees —
        and returns the extra ``{dimension: key}`` entries.
        """
        builders = list(self._feedback_builders)
        if not builders:
            return None
        loader = self._built.loader
        schema = loader.schema

        def resolve(source_row: dict, keys: dict) -> dict:
            flat_row: dict[str, object] = {}
            for dim_name, key in keys.items():
                dimension = schema.dimensions[dim_name]
                member = (
                    dimension.member_resolved(key)
                    if isinstance(dimension, SnowflakeDimension)
                    else dimension.member(key)
                )
                for attr, value in member.items():
                    flat_row[f"{dim_name}.{attr}"] = value
            for measure in loader.measures:
                flat_row[measure.name] = source_row.get(
                    loader.measure_columns[measure.name]
                )
            extra: dict[str, int] = {}
            for builder in builders:
                dimension = schema.dimensions.get(builder.name)
                if dimension is None:  # pragma: no cover - fold journals it
                    continue
                key = UNKNOWN_KEY
                for entry in builder.entries:
                    if entry.predicate(flat_row):
                        key = dimension.add_member(
                            {
                                builder.attribute: entry.label,
                                "author": entry.author,
                                "rationale": entry.rationale,
                            }
                        )
                        break
                extra[builder.name] = key
                # later builders may reference this verdict, mirroring the
                # full replay where each fold flattens the previous ones
                member = (
                    dimension.member(key)
                    if key != UNKNOWN_KEY
                    else {attr: None for attr in dimension.attributes}
                )
                for attr, value in member.items():
                    flat_row[f"{builder.name}.{attr}"] = value
            return extra

        return resolve

    def _replay_feedback(self, warehouse) -> None:
        for builder in self._feedback_builders:
            if builder.name not in warehouse.dimension_names:
                warehouse.fold_feedback(builder)

    def _lattice_or_degrade(self, cube: Cube | None = None) -> None:
        """Re-materialise the lattice; on permanent failure, degrade.

        The lattice is an accelerator, not ground truth — so a permanently
        failing re-materialisation detaches it and lets queries fall back
        to base-table scans, with a warning and a ``degraded`` flag,
        rather than failing the whole ingest.
        """
        if cube is None:
            cube = self.cube
        if self._lattice_groups is None:
            return
        try:
            self._with_retry(
                "ingest.lattice", lambda: self._rematerialize_lattice(cube)
            )
        except PermanentIngestError as exc:
            cube.detach_lattice()
            self.degraded["lattice"] = str(exc)
            obs.count("ingest.degraded")
            warnings.warn(
                f"lattice re-materialisation failed; queries fall back to "
                f"un-materialised scans until the next successful ingest: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
        else:
            self.degraded.pop("lattice", None)

    def _with_retry(self, point: str, fn):
        def on_retry(p: str, attempt: int, exc: BaseException, delay: float):
            self._retry_counts[p] = self._retry_counts.get(p, 0) + 1

        return with_retry(point, fn, policy=self.retry_policy, on_retry=on_retry)

    def _journal_fold(self, name: str) -> None:
        engine = self.operational_store
        existing = {
            row["dimension"] for row in engine.scan(_FOLD_TABLE).iter_rows()
        }
        if name in existing:
            return
        with engine.transaction():
            engine.insert(
                _FOLD_TABLE, {"fold_id": len(existing) + 1, "dimension": name}
            )

    def _checkpoint_durable(self) -> None:
        _checkpoint(self.operational_store, self.durable_root / "snaps")
        if isinstance(self.quarantine, QuarantineStore):
            self.quarantine.checkpoint()

    # -- health / re-drive ----------------------------------------------

    def ingest_health(self) -> dict:
        """Operational health of the ingest path, metrics-independent.

        Quarantine totals, retry counts per boundary, degraded-mode flags
        and the WAL's committed high-water mark — the dictionary behind
        ``python -m repro stats`` and the ``quarantine`` CLI, usable with
        observability disabled.
        """
        q = self.quarantine
        is_store = isinstance(q, QuarantineStore)
        return {
            "resilient": q is not None,
            "durable": self.durable_root is not None,
            "quarantined_total": len(q) if hasattr(q, "__len__") else 0,
            "quarantined_by_step": q.counts("step") if is_store else {},
            "quarantined_by_error": q.counts("error_type") if is_store else {},
            "retries_total": sum(self._retry_counts.values()),
            "retries_by_boundary": dict(sorted(self._retry_counts.items())),
            "degraded": dict(self.degraded),
            "wal_committed_seq": self.operational_store.wal.committed_seq,
            "data_version": self.data_version,
            "epoch": self.epoch,
            "incremental": self.incremental,
            "maintenance": {
                **self.maintenance,
                "fallback_reasons": dict(self.maintenance["fallback_reasons"]),
                "planner": dict(self.maintenance["planner"]),
            },
            "planner": (
                {
                    **self._planner.snapshot(),
                    "lattice_policy": self._lattice_policy,
                    "decisions": dict(self.maintenance["planner"]),
                }
                if self._planner is not None
                else None
            ),
            "result_cache": (
                self._result_cache.stats_snapshot()
                if self._result_cache is not None
                else None
            ),
            "serving": (
                self._serving.snapshot() if self._serving is not None else None
            ),
            "storage": self._storage_health(),
            #: breakers are process-global — report them even without a
            #: configured runtime so chaos harnesses see degradations
            "degradations": resilience.active_degradations(),
        }

    def redrive_quarantine(
        self, *, repair=None, batch: str = "redrive"
    ) -> RedriveReport:
        """Re-ingest dead-letter rows (optionally repaired) and purge winners.

        ``repair`` is an optional ``dict -> dict`` applied to each stored
        row before the attempt — the "after fixing the scheme or the
        data" half of the quarantine workflow.  Each row is upserted into
        the operational store, the warehouse is rebuilt, and entries whose
        rows now load cleanly are removed from the store; rows that still
        fail stay quarantined under their fresh diagnosis.
        """
        if not isinstance(self.quarantine, QuarantineStore):
            raise IngestError(
                "re-drive needs a QuarantineStore sink (system built with "
                "quarantine=QuarantineStore(...) or durable_root=...)"
            )
        store = self.quarantine

        def handler(entries: list[QuarantinedRow]) -> list[int]:
            upserted: list[QuarantinedRow] = []
            for entry in entries:
                row = {
                    name: entry.row.get(name)
                    for name in self._source_columns()
                }
                vid = row.get("visit_id")
                if vid is None:
                    continue  # unaddressable: stays quarantined
                try:
                    with self.operational_store.transaction():
                        if self.operational_store.get_by_pk(
                            "attendances", vid
                        ) is None:
                            self.operational_store.insert("attendances", row)
                        else:
                            self.operational_store.update_by_pk(
                                "attendances", vid, row
                            )
                except ReproError:
                    continue  # still structurally invalid: stays
                upserted.append(entry)
            source = self.operational_store.scan("attendances")
            built, cube, staged = self._rebuild_warehouse(source, batch)
            self._commit_staged(staged)
            self._replay_feedback(built.warehouse)
            self._lattice_or_degrade(cube)
            # commit — a redrive rewrites history (repaired rows change
            # earlier batches), so it is always a full rebuild
            self.source = source
            self._pending_transformed = []
            self._covered_rows = source.num_rows
            self._oltp_rows = source.num_rows
            self._built = built
            self.warehouse = built.warehouse
            self.etl_audit = built.etl_result.audit
            self._commit_cube(cube)
            self.maintenance["full_rebuilds"] += 1
            still_bad = {e.row.get("visit_id") for e in staged.entries}
            return [
                e.entry_id
                for e in upserted
                if e.row.get("visit_id") not in still_bad
            ]

        with self._writer_lock, obs.span("dgms.redrive", entries=len(store)):
            report = store.redrive(handler, repair=repair)
            if self.durable_root is not None:
                self._with_retry("ingest.checkpoint", self._checkpoint_durable)
            self.data_version += 1
        return report

    def _rematerialize_lattice(self, cube: Cube | None = None) -> None:
        """Rebuild the attached lattice over the given (or current) cube.

        Called with the *staged* cube during ingest so the lattice — like
        the flat view — is built fully off to the side before the commit
        swap makes it visible.
        """
        if cube is None:
            cube = self.cube
        if self._lattice_groups is None:
            return
        from repro.olap.materialized import MaterializedCube

        groups = self._lattice_groups
        if self._lattice_policy == "adaptive" and self._planner is not None:
            # re-run the selection against the workload recorded so far:
            # hot nodes follow the traffic across ingest rebuilds, and
            # nodes the workload no longer earns are evicted here
            groups = self._select_adaptive_groups(cube)
            self._lattice_groups = groups
        lattice = MaterializedCube(cube).materialize(groups)
        cube.attach_lattice(lattice)
