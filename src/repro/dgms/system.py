"""The DD-DGMS facade: every Fig 2 component behind one object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.errors import OLAPError, ReproError
from repro.discri.warehouse import DiscriWarehouse, build_discri_warehouse
from repro.knowledge.kb import KnowledgeBase
from repro.knowledge.findings import Evidence, FindingKind
from repro.mining.awsum import AWSumClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.obs.explain import ExplainReport
from repro.olap.crosstab import Crosstab
from repro.olap.cube import Cube
from repro.olap.mdx.evaluator import execute_mdx
from repro.olap.query import QueryBuilder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.olap.materialized import MaterializedCube
from repro.optimize.consistency import ConsistencyReport, check_dimension_consistency
from repro.prediction.trajectory import TrajectoryPredictor
from repro.storage.engine import StorageEngine
from repro.tabular.expressions import col
from repro.tabular.table import Table
from repro.viz.svg import crosstab_to_svg
from repro.warehouse.feedback import FeedbackDimensionBuilder


@dataclass(frozen=True)
class SystemConfig:
    """Session configuration consumed once by :func:`repro.open_system`.

    ``observability`` takes the ``REPRO_OBS`` mode strings (``""`` off,
    ``"ring"`` in-memory span trees, ``"console"`` stderr trees,
    ``"jsonl:<path>"`` JSON lines); queries slower than
    ``slow_query_threshold_s`` land in :func:`repro.obs.slow_log`.
    ``materialize_lattice`` precomputes the figure-shaped aggregate
    lattice so roll-ups are answered from nodes instead of fact scans.
    """

    observability: str = ""
    slow_query_threshold_s: float | None = None
    materialize_lattice: bool = False
    promotion_threshold: float = 3.0


class DDDGMS:
    """Data-Driven Decision Guidance Management System.

    Construct from a raw visit-level source table (e.g. the output of
    :class:`repro.discri.DiScRiGenerator`); the constructor runs the
    clinical ETL and loads the Fig 3 warehouse.  Every paper feature is a
    method:

    ==========================  =====================================
    paper Fig 2 component        API
    ==========================  =====================================
    DB / OLTP                    :attr:`operational_store`, :meth:`oltp_lookup`
    Data warehouse               :attr:`warehouse`
    Reporting (OLAP)             :meth:`olap`, :meth:`mdx`
    Prediction                   :meth:`trajectory_predictor`
    Visualisation                :meth:`visualize`
    Decision optimisation        :meth:`check_optimum_consistency`
    Data analytics               :meth:`isolate_cube_slice`, :meth:`awsum`
    Knowledge base               :attr:`knowledge_base`, :meth:`record_finding`
    Feedback loop                :meth:`fold_feedback`
    ==========================  =====================================
    """

    def __init__(self, source: Table, promotion_threshold: float = 3.0):
        with obs.span("dgms.build", rows=source.num_rows):
            self.source = source
            with obs.span("dgms.load_operational"):
                self.operational_store = self._load_operational(source)
            with obs.span("dgms.etl_and_warehouse"):
                self._built: DiscriWarehouse = build_discri_warehouse(source)
            self.warehouse = self._built.warehouse
            self.etl_audit = self._built.etl_result.audit
            self.cube = Cube(self.warehouse)
            self.knowledge_base = KnowledgeBase(promotion_threshold)
            #: feedback builders folded so far, replayed after every re-ingest
            self._feedback_builders: list[FeedbackDimensionBuilder] = []
            #: lattice level-groups to re-materialise after every re-ingest
            self._lattice_groups: list[list[str]] | None = None
            #: bumped on every ingest batch
            self.data_version = 1

    @staticmethod
    def _load_operational(source: Table) -> StorageEngine:
        """Mirror the raw source into the OLTP engine (the "DB" of Fig 2)."""
        engine = StorageEngine()
        engine.create_table(
            "attendances", dict(source.schema), primary_key="visit_id"
        )
        with engine.transaction():
            for row in source.iter_rows():
                engine.insert("attendances", row)
        engine.create_index("attendances", "patient_id")
        return engine

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def oltp_lookup(self, visit_id: int) -> dict[str, object] | None:
        """Point query on the operational store (OLTP reporting)."""
        return self.operational_store.get_by_pk("attendances", visit_id)

    def patient_history(self, patient_id: int) -> list[dict[str, object]]:
        """All attendances of one patient, oldest first."""
        rows = self.operational_store.find("attendances", "patient_id", patient_id)
        rows.sort(key=lambda r: r["visit_date"])
        return rows

    def query(self) -> QueryBuilder:
        """Start a drag-and-drop-style OLAP query on the cube.

        This is the canonical programmatic entry point: chain
        ``.rows()/.columns()/.measure()/.where()`` and finish with
        ``.execute()`` (or ``.explain()`` for the measured plan).
        """
        return self.cube.query()

    def olap(self) -> QueryBuilder:
        """Alias of :meth:`query` (the paper's "Reporting — OLAP" name)."""
        return self.query()

    def mdx(self, query: str) -> Crosstab | ExplainReport:
        """Execute an MDX query against the cube.

        An ``EXPLAIN``-prefixed query returns an
        :class:`~repro.obs.explain.ExplainReport` (grid in ``.result``)
        instead of the bare :class:`~repro.olap.crosstab.Crosstab`.
        """
        return execute_mdx(self.cube, query)

    def explain(self, query: "str | QueryBuilder") -> ExplainReport:
        """Measured plan/profile for an MDX string or a built query.

        Accepts MDX text (the ``EXPLAIN`` prefix is implied) or a
        :class:`~repro.olap.query.QueryBuilder` from :meth:`query`.  The
        report names the lattice node or base scan that answered, with
        rows scanned and wall time per stage; the result grid rides along
        in ``.result``.
        """
        if isinstance(query, QueryBuilder):
            return query.explain()
        if isinstance(query, str):
            if not query.lstrip().upper().startswith("EXPLAIN"):
                query = f"EXPLAIN {query}"
            report = execute_mdx(self.cube, query)
            assert isinstance(report, ExplainReport)
            return report
        raise OLAPError(
            f"explain() takes MDX text or a QueryBuilder, got {type(query).__name__}"
        )

    def materialize_lattice(
        self, level_groups: Sequence[Sequence[str]] | None = None
    ) -> "MaterializedCube":
        """Precompute aggregate lattice nodes and route queries through them.

        With no argument, materialises one node per figure-shaped roll-up
        (the Fig 4–6 level combinations).  The groups are remembered and
        re-materialised after every :meth:`ingest_visits` rebuild, so the
        lattice never serves stale cells.
        """
        from repro.olap.materialized import MaterializedCube

        if level_groups is None:
            groups = [list(group) for group in self.DEFAULT_LATTICE_GROUPS]
        else:
            groups = [list(group) for group in level_groups]
        lattice = MaterializedCube(self.cube).materialize(groups)
        self.cube.attach_lattice(lattice)
        self._lattice_groups = groups
        return lattice

    #: figure-shaped roll-ups used by :meth:`materialize_lattice` default
    DEFAULT_LATTICE_GROUPS: tuple[tuple[str, ...], ...] = (
        (
            "conditions.age_band", "personal.gender",
            "personal.family_history_diabetes",
        ),
        ("conditions.age_band10", "personal.gender", "conditions.diabetes_status"),
        ("conditions.age_band10", "conditions.ht_years_band", "conditions.hypertension"),
    )

    # ------------------------------------------------------------------
    # Prediction / visualisation
    # ------------------------------------------------------------------

    def episodes(self, value_column: str = "fbg", min_support: int = 1) -> Table:
        """Per-patient temporal-abstraction episodes of one measure.

        Uses the clinical scheme for the measure when one exists (FBG by
        default), giving the qualitative "patient was Diabetic from X to
        Y" view of paper §IV's temporal abstraction.
        """
        from repro.discri.schemes import clinical_schemes
        from repro.etl.temporal import episodes_table

        schemes = clinical_schemes()
        if value_column not in schemes:
            raise ReproError(
                f"no clinical scheme for {value_column!r} "
                f"(have: {', '.join(sorted(schemes))})"
            )
        return episodes_table(
            self.source, "patient_id", "visit_date", value_column,
            schemes[value_column], min_support=min_support,
        )

    def trajectory_predictor(
        self, similarity_attributes: Sequence[str] | None = None
    ) -> TrajectoryPredictor:
        """Time-course predictor over the transformed visit data."""
        rows = self._built.transformed.to_rows()
        return TrajectoryPredictor(
            rows,
            patient_key="patient_id",
            order_key="visit_number",
            stage_key="fbg_band",
            similarity_attributes=similarity_attributes,
        )

    def visualize(self, crosstab: Crosstab, title: str, path=None) -> str:
        """Render an OLAP outcome as SVG (paper Figs 5/6 style)."""
        return crosstab_to_svg(crosstab, title, path)

    # ------------------------------------------------------------------
    # Decision optimisation / analytics
    # ------------------------------------------------------------------

    def check_optimum_consistency(
        self,
        levels: Sequence[str],
        target: str,
        aggregation: str = "mean",
        direction: str = "max",
        min_records: int = 10,
        removable: Sequence[str] | None = None,
    ) -> ConsistencyReport:
        """Validate an optimal aggregate against dimension changes."""
        return check_dimension_consistency(
            self.warehouse,
            levels,
            target,
            aggregation=aggregation,
            direction=direction,
            min_records=min_records,
            removable=removable,
        )

    def isolate_cube_slice(self, **level_values: object) -> list[dict]:
        """Dice the flattened cube and return rows for mining.

        Keyword names are levels (bare attribute names are resolved);
        values are the member to fix.  This is the paper's "cubes of data
        ... can be isolated using OLAP and further analysed using data
        mining algorithms".
        """
        flat = self.cube.flat
        predicate = None
        for level, value in level_values.items():
            qualified = self.cube.check_level(level)
            clause = col(qualified).eq(value)
            predicate = clause if predicate is None else (predicate & clause)
        rows = (flat.filter(predicate) if predicate is not None else flat).to_rows()
        # strip the dimension prefixes for model-friendly keys
        return [
            {key.split(".", 1)[-1]: value for key, value in row.items()}
            for row in rows
        ]

    def awsum(
        self, target: str, features: Sequence[str], min_support: int = 10,
        rows: list[dict] | None = None,
    ) -> AWSumClassifier:
        """Fit AWSum on the transformed visit data (or a supplied slice)."""
        data = rows if rows is not None else self._built.transformed.to_rows()
        return AWSumClassifier(min_support=min_support).fit(
            data, target, list(features)
        )

    def classifier(
        self, target: str, features: Sequence[str],
        rows: list[dict] | None = None,
    ) -> NaiveBayesClassifier:
        """Fit the default probabilistic classifier on visit data."""
        data = rows if rows is not None else self._built.transformed.to_rows()
        return NaiveBayesClassifier().fit(data, target, list(features))

    # ------------------------------------------------------------------
    # Knowledge / feedback loop
    # ------------------------------------------------------------------

    def record_finding(
        self,
        key: str,
        kind: FindingKind,
        statement: str,
        source: str,
        description: str,
        weight: float = 1.0,
        tags: Sequence[str] = (),
    ):
        """Record an outcome as a knowledge-base finding."""
        return self.knowledge_base.record(
            key, kind, statement,
            Evidence(source=source, description=description, weight=weight),
            tags=tags,
        )

    def fold_feedback(self, builder: FeedbackDimensionBuilder):
        """Fold clinician feedback into the warehouse as a new dimension.

        The builder is remembered so its predicates replay automatically
        after the next :meth:`ingest_visits` rebuild.
        """
        with obs.span("dgms.fold_feedback", dimension=builder.name):
            dimension = self.warehouse.fold_feedback(builder)
            self._feedback_builders.append(builder)
            self.cube.refresh()
            self._rematerialize_lattice()
        return dimension

    def ingest_visits(self, new_visits: Table) -> int:
        """Accumulate a new batch of attendances (the screening clinic's
        yearly intake) and refresh every layer.

        The batch must carry the source schema with fresh ``visit_id``
        values.  The operational store takes the rows transactionally; the
        warehouse is rebuilt over the combined history (so cardinality
        ordinals of returning patients stay correct) and previously folded
        feedback dimensions are re-derived over the grown fact set.
        Returns the number of ingested rows.
        """
        if new_visits.num_rows == 0:
            return 0
        with obs.span("dgms.ingest", rows=new_visits.num_rows):
            with obs.span("dgms.ingest.oltp"):
                with self.operational_store.transaction():
                    for row in new_visits.iter_rows():
                        self.operational_store.insert("attendances", row)
            self.source = self.source.append(
                new_visits.select(self.source.column_names)
            )
            with obs.span("dgms.ingest.rebuild"):
                self._built = build_discri_warehouse(self.source)
                self.warehouse = self._built.warehouse
                self.etl_audit = self._built.etl_result.audit
                self.cube = Cube(self.warehouse)
            with obs.span(
                "dgms.ingest.feedback_replay",
                builders=len(self._feedback_builders),
            ):
                for builder in self._feedback_builders:
                    self.warehouse.fold_feedback(builder)
                self.cube.refresh()
            self._rematerialize_lattice()
            self.data_version += 1
            obs.count("dgms.ingest.batches")
        return new_visits.num_rows

    def _rematerialize_lattice(self) -> None:
        """Rebuild the attached lattice over the current (possibly new) cube."""
        if self._lattice_groups is None:
            return
        from repro.olap.materialized import MaterializedCube

        lattice = MaterializedCube(self.cube).materialize(self._lattice_groups)
        self.cube.attach_lattice(lattice)

    @property
    def transformed(self) -> Table:
        """The post-ETL visit table."""
        return self._built.transformed
