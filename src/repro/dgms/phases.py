"""The four DGMS phases as an auditable closed loop.

Paper §IV: "The DGMS architecture was designed to be used in iterative
loop-back phases.  The first phase uses the database and domain knowledge
to define a data space from which knowledge is derived (learned).  In the
second phase learning and domain knowledge are used for prediction and
simulation.  Prediction and simulation outcomes are used for decision
optimization in the third phase, while in the final phase data acquisition
queries are used as feedback to reduce ambiguity of decisions."
"""

from __future__ import annotations

import functools

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.dgms.system import DDDGMS
from repro.knowledge.findings import FindingKind
from repro.mining.metrics import ConfusionMatrix
from repro.mining.validation import stratified_k_fold
from repro.optimize.regimen import RegimenProblem, TreatmentOutcome, optimize_regimen
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry


@dataclass
class PhaseOutcome:
    """Journal entry for one phase of one cycle."""

    phase: str
    summary: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.phase}: {self.summary}"


def _phased(fn: Callable[..., PhaseOutcome]) -> Callable[..., PhaseOutcome]:
    """Trace one loop phase; the span carries the journal summary."""
    name = fn.__name__.removeprefix("phase_")

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs) -> PhaseOutcome:
        with obs.span(f"loop.{name}") as sp:
            outcome = fn(self, *args, **kwargs)
            sp.set(summary=outcome.summary)
            return outcome

    return wrapper


class ClosedLoop:
    """One concrete instantiation of the learn→predict→optimise→acquire loop
    on the DiScRi warehouse: learn a diabetes model, predict next phases,
    optimise an intervention regimen from the predicted case mix, and fold
    the resulting risk stratification back in as a feedback dimension.
    """

    def __init__(self, system: DDDGMS, features: Sequence[str] | None = None):
        self.system = system
        self.features = list(
            features
            or ["fbg_band", "bmi_band", "reflex_knees_ankles", "age_band"]
        )
        self.journal: list[PhaseOutcome] = []

    # ------------------------------------------------------------------

    @_phased
    def phase_learn(self) -> PhaseOutcome:
        """Phase 1: derive knowledge from the defined data space."""
        rows = self.system.transformed.to_rows()
        folds = stratified_k_fold(rows, "diabetes_status", k=3, seed=7)
        accuracies = []
        for train, test in folds:
            model = self.system.classifier("diabetes_status", self.features, rows=train)
            matrix = ConfusionMatrix(
                [r["diabetes_status"] for r in test], model.predict_many(test)
            )
            accuracies.append(matrix.accuracy())
        self.model = self.system.classifier("diabetes_status", self.features, rows=rows)
        mean_accuracy = sum(accuracies) / len(accuracies)
        outcome = PhaseOutcome(
            "learn",
            f"diabetes model on {len(self.features)} features, "
            f"3-fold accuracy {mean_accuracy:.3f}",
            {"accuracy": mean_accuracy, "features": list(self.features)},
        )
        self.journal.append(outcome)
        return outcome

    @_phased
    def phase_predict(self) -> PhaseOutcome:
        """Phase 2: prediction/simulation of next glycaemic phases."""
        predictor = self.system.trajectory_predictor()
        distribution = predictor.model.stationary_hint()
        progressing = {
            stage: round(predictor.model.transition_probability(stage, "Diabetic"), 3)
            for stage in predictor.model.states
            if stage != "Diabetic"
        }
        self.predicted_mix = distribution
        outcome = PhaseOutcome(
            "predict",
            "stage transitions modelled; equilibrium mix "
            + ", ".join(f"{k}={v:.2f}" for k, v in sorted(distribution.items())),
            {"stationary": distribution, "p_to_diabetic": progressing},
        )
        self.journal.append(outcome)
        return outcome

    @_phased
    def phase_optimize(self, budget: float = 50_000.0) -> PhaseOutcome:
        """Phase 3: decision optimisation from the predicted case mix."""
        counts = self.system.olap().rows("bloods.fbg_band").count_distinct(
            "cardinality.patient_id", name="patients"
        ).execute()
        group_sizes = {}
        for key in counts.row_keys:
            label = str(key[0])
            if label in ("preDiabetic", "Diabetic"):
                value = counts.value(key, ("patients",))
                group_sizes[label] = float(value or 0)
        problem = RegimenProblem(
            group_sizes=group_sizes,
            outcomes=[
                TreatmentOutcome("preDiabetic", "lifestyle_program", 0.35, 110),
                TreatmentOutcome("preDiabetic", "metformin", 0.45, 320),
                TreatmentOutcome("Diabetic", "metformin", 0.75, 320),
                TreatmentOutcome("Diabetic", "intensive_management", 1.05, 950),
            ],
            budget=budget,
        )
        self.plan = optimize_regimen(problem)
        outcome = PhaseOutcome(
            "optimize",
            f"regimen benefit {self.plan.total_benefit:.1f} at cost "
            f"{self.plan.total_cost:.0f} / {budget:.0f}",
            {"plan": self.plan.assignments},
        )
        self.journal.append(outcome)
        return outcome

    @_phased
    def phase_acquire(self) -> PhaseOutcome:
        """Phase 4: fold the risk stratification back as feedback."""
        model = self.model
        builder = FeedbackDimensionBuilder("risk_stratum")

        def high(row: dict) -> bool:
            probe = {k.split(".", 1)[-1]: v for k, v in row.items()}
            return model.predict_proba(probe).get("yes", 0.0) >= 0.7

        def moderate(row: dict) -> bool:
            probe = {k.split(".", 1)[-1]: v for k, v in row.items()}
            return model.predict_proba(probe).get("yes", 0.0) >= 0.3

        builder.add(FeedbackEntry("high", high, rationale="model P(diabetes) >= 0.7"))
        builder.add(FeedbackEntry("moderate", moderate, rationale=">= 0.3"))
        builder.add(FeedbackEntry("low", lambda row: True, rationale="remainder"))
        dimension = self.system.fold_feedback(builder)
        self.system.record_finding(
            "loop.risk_stratum",
            FindingKind.FEEDBACK,
            "model-derived risk stratification folded into the warehouse",
            source="closed_loop",
            description=f"dimension {dimension.name!r} with {dimension.size} members",
            weight=1.0,
            tags=["closed-loop"],
        )
        outcome = PhaseOutcome(
            "acquire",
            f"feedback dimension {dimension.name!r} attached "
            f"(warehouse v{self.system.warehouse.version})",
            {"dimension": dimension.name},
        )
        self.journal.append(outcome)
        return outcome

    # ------------------------------------------------------------------

    def run_cycle(self, budget: float = 50_000.0) -> list[PhaseOutcome]:
        """Run all four phases in order; returns the journal entries."""
        with obs.span("loop.cycle"):
            return [
                self.phase_learn(),
                self.phase_predict(),
                self.phase_optimize(budget),
                self.phase_acquire(),
            ]
