"""The DD-DGMS platform (paper Fig. 2 and §IV).

:class:`DDDGMS` wires every component — operational store, clinical ETL,
dynamic warehouse, OLAP/MDX reporting, prediction, visualisation, decision
optimisation, data analytics and the knowledge base — into the single
closed-loop platform the paper proposes.  :mod:`repro.dgms.users` exposes
the two user groups (operational and strategic) with their respective
feature sets, :mod:`repro.dgms.phases` runs the four DGMS phases as an
auditable cycle, and :mod:`repro.dgms.baseline` provides the classic
DG-SQL-intermediated DGMS for architectural comparison.
"""

from repro.dgms.system import DDDGMS
from repro.dgms.phases import ClosedLoop, PhaseOutcome
from repro.dgms.users import OperationalSession, StrategicSession
from repro.dgms.baseline import ClassicDGMS
from repro.dgms.report import generate_trial_report

__all__ = [
    "DDDGMS",
    "ClosedLoop",
    "PhaseOutcome",
    "OperationalSession",
    "StrategicSession",
    "ClassicDGMS",
    "generate_trial_report",
]
