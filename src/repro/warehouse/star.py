"""Star and snowflake schemas: the dimensional model of paper Figs. 1 & 3."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import DimensionError, WarehouseError
from repro.tabular.column import Column
from repro.tabular.dtypes import DType
from repro.tabular.table import Table
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension
from repro.warehouse.fact import FactTable


class SnowflakeDimension(Dimension):
    """A dimension with normalised *outrigger* sub-dimensions.

    Members carry a surrogate key into each outrigger instead of repeating
    its attributes; attribute lookup transparently resolves through the
    outrigger, so the OLAP layer treats star and snowflake uniformly (the
    paper presents both as one structure, "a star or snowflake structure").
    """

    def __init__(
        self,
        name: str,
        attributes: Mapping[str, DType | str],
        outriggers: Mapping[str, Dimension] | None = None,
        natural_key: list[str] | None = None,
        hierarchies: Iterable = (),
    ):
        self.outriggers: dict[str, Dimension] = dict(outriggers or {})
        own = dict(attributes)
        for rigger_name, rigger in self.outriggers.items():
            key_attr = f"{rigger_name}_key"
            if key_attr in own:
                raise DimensionError(
                    f"snowflake dimension {name!r}: attribute {key_attr!r} "
                    "collides with an outrigger key"
                )
            own[key_attr] = DType.INT
            collisions = set(rigger.attributes) & set(attributes)
            if collisions:
                raise DimensionError(
                    f"snowflake dimension {name!r}: outrigger {rigger_name!r} "
                    f"attributes {sorted(collisions)} collide with own attributes"
                )
        super().__init__(name, own, natural_key=natural_key, hierarchies=hierarchies)

    def resolved_attributes(self) -> list[str]:
        """Own attributes (minus outrigger keys) plus outrigger attributes."""
        own = [
            a for a in self.attributes
            if not any(a == f"{r}_key" for r in self.outriggers)
        ]
        for rigger in self.outriggers.values():
            own.extend(rigger.attributes)
        return own

    def attribute_of(self, key: int, attribute: str) -> object:
        """Resolve an attribute, following outriggers when needed."""
        if attribute in self.attributes:
            return super().attribute_of(key, attribute)
        for rigger_name, rigger in self.outriggers.items():
            if attribute in rigger.attributes:
                rigger_key = super().attribute_of(key, f"{rigger_name}_key")
                if rigger_key is None:
                    return None
                return rigger.attribute_of(int(rigger_key), attribute)  # type: ignore[arg-type]
        raise DimensionError(
            f"dimension {self.name!r} has no attribute {attribute!r} "
            "(searched outriggers too)"
        )

    def member_resolved(self, key: int) -> dict[str, object]:
        """Member attributes with outriggers flattened in."""
        return {attr: self.attribute_of(key, attr) for attr in self.resolved_attributes()}


class StarSchema:
    """A fact table wired to its dimensions, with integrity checking.

    ``flatten()`` denormalises the whole schema into one wide table whose
    dimension attributes are named ``<dimension>.<attribute>`` — the input
    the OLAP cube builder consumes.
    """

    def __init__(self, name: str, fact: FactTable, dimensions: Iterable[Dimension]):
        self.name = name
        self.fact = fact
        self.dimensions: dict[str, Dimension] = {d.name: d for d in dimensions}
        missing = set(fact.dimension_names) - set(self.dimensions)
        if missing:
            raise WarehouseError(
                f"star schema {name!r}: fact grain references dimensions "
                f"{sorted(missing)} that were not supplied"
            )

    def dimension(self, name: str) -> Dimension:
        """Look up a dimension by name."""
        try:
            return self.dimensions[name]
        except KeyError:
            raise DimensionError(
                f"schema {self.name!r} has no dimension {name!r} "
                f"(has: {', '.join(self.dimensions)})"
            ) from None

    def check_integrity(self) -> list[str]:
        """Referential check: every fact key resolves to a member.

        Returns a list of violation descriptions (empty == consistent).
        """
        problems: list[str] = []
        facts = self.fact.to_table()
        for dim_name in self.fact.dimension_names:
            dimension = self.dimension(dim_name)
            key_col = f"{dim_name}_key"
            valid_keys = set(dimension.member_keys()) | {UNKNOWN_KEY}
            for i, key in enumerate(facts.column(key_col).to_list()):
                if key not in valid_keys:
                    problems.append(
                        f"fact row {i}: {key_col}={key} has no member in "
                        f"dimension {dim_name!r}"
                    )
        return problems

    def qualified_attributes(self) -> dict[str, tuple[str, str]]:
        """``"dim.attr"`` → (dimension, attribute) for every attribute."""
        out: dict[str, tuple[str, str]] = {}
        for dim_name in self.fact.dimension_names:
            dimension = self.dimension(dim_name)
            if isinstance(dimension, SnowflakeDimension):
                attrs = dimension.resolved_attributes()
            else:
                attrs = list(dimension.attributes)
            for attr in attrs:
                out[f"{dim_name}.{attr}"] = (dim_name, attr)
        return out

    def flatten(self, start: int = 0) -> Table:
        """Denormalise facts + all dimension attributes into one wide table.

        Column layout: each dimension attribute as ``dim.attr``, then each
        measure under its own name.  Unknown members contribute nulls.

        ``start`` restricts the walk to fact rows appended at that
        position on (the O(batch) flatten a delta publish needs); the
        default flattens the full history.
        """
        facts = self.fact.to_table() if start == 0 else self.fact.to_table_from(start)
        columns: dict[str, Column] = {}
        for dim_name in self.fact.dimension_names:
            dimension = self.dimension(dim_name)
            keys = facts.column(f"{dim_name}_key").to_list()
            if isinstance(dimension, SnowflakeDimension):
                attrs = dimension.resolved_attributes()
                members = {
                    k: dimension.member_resolved(k)
                    for k in set(keys)  # type: ignore[arg-type]
                }
            else:
                attrs = list(dimension.attributes)
                members = {k: dimension.member(k) for k in set(keys)}  # type: ignore[arg-type]
            for attr in attrs:
                dtype = self._attr_dtype(dimension, attr)
                values = [members[k][attr] for k in keys]
                columns[f"{dim_name}.{attr}"] = Column.from_values(values, dtype=dtype)
        for measure_name, measure in self.fact.measures.items():
            columns[measure_name] = facts.column(measure_name)
        return Table(columns)

    @staticmethod
    def _attr_dtype(dimension: Dimension, attr: str) -> DType:
        if attr in dimension.attributes:
            return dimension.attributes[attr].dtype
        if isinstance(dimension, SnowflakeDimension):
            for rigger in dimension.outriggers.values():
                if attr in rigger.attributes:
                    return rigger.attributes[attr].dtype
        raise DimensionError(
            f"dimension {dimension.name!r} has no attribute {attr!r}"
        )

    def __repr__(self) -> str:
        return (
            f"StarSchema({self.name!r}, fact={self.fact.name!r} "
            f"[{self.fact.num_rows} rows], dims=[{', '.join(self.dimensions)}])"
        )
