"""The clinical data warehouse (paper §III–IV).

A dimensional model in the Kimball style: fact tables holding numeric
measures at a declared grain, surrounded by dimension tables of descriptive
attributes organised into drill-down hierarchies (paper Fig. 1).  The
*dynamic* dimensional model — the paper's "elemental core" — lets
dimensions be added or removed live and folds user feedback and derived
outcomes back in as first-class dimensions (:mod:`repro.warehouse.dynamic`,
:mod:`repro.warehouse.feedback`).

::

    from repro.warehouse import Dimension, FactTable, StarSchema

    personal = Dimension("personal", key="patient_id",
                         attributes={"gender": "str", "family_history": "str"})
    ...
    schema = StarSchema("discri", fact, [personal, bloods, cardinality])
"""

from repro.warehouse.attribute import AttributeDef, Hierarchy
from repro.warehouse.dimension import Dimension, UNKNOWN_KEY
from repro.warehouse.fact import FactTable, Measure
from repro.warehouse.star import StarSchema, SnowflakeDimension
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.loader import WarehouseLoader, DimensionSpec
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry
from repro.warehouse.persistence import load_warehouse, save_warehouse

__all__ = [
    "AttributeDef",
    "Hierarchy",
    "Dimension",
    "UNKNOWN_KEY",
    "FactTable",
    "Measure",
    "StarSchema",
    "SnowflakeDimension",
    "DynamicWarehouse",
    "WarehouseLoader",
    "DimensionSpec",
    "FeedbackDimensionBuilder",
    "FeedbackEntry",
    "save_warehouse",
    "load_warehouse",
]
