"""Folding user feedback back into the warehouse as dimensions.

Paper §IV: "Further dimensions are introduced to capture user feedback.
Information on aggregates and trends derived by clinicians as well as
clinical outcomes can be translated back to the warehouse as dimensions to
be used in future analysis."  This module turns a batch of
:class:`FeedbackEntry` records — each tagging a set of fact rows with a
clinician-assigned label — into a dimension plus per-fact keys, ready for
:meth:`repro.warehouse.dynamic.DynamicWarehouse.add_dimension`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import WarehouseError
from repro.tabular.table import Table
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension


@dataclass(frozen=True)
class FeedbackEntry:
    """One clinician judgement: a label applied to matching fact rows.

    ``predicate`` receives a flattened fact row (``dim.attr`` keys plus
    measures) and decides membership.  ``author`` and ``rationale`` keep
    provenance — who said it and why — which the knowledge base later needs
    for evidence tracking.
    """

    label: str
    predicate: Callable[[dict], bool]
    author: str = "clinician"
    rationale: str = ""


class FeedbackDimensionBuilder:
    """Accumulates entries and emits (dimension, per-fact keys)."""

    def __init__(self, name: str, attribute: str = "assessment"):
        self.name = name
        self.attribute = attribute
        self.entries: list[FeedbackEntry] = []

    def add(self, entry: FeedbackEntry) -> "FeedbackDimensionBuilder":
        """Register one feedback entry; returns self for chaining."""
        duplicate = any(e.label == entry.label for e in self.entries)
        if duplicate:
            raise WarehouseError(
                f"feedback dimension {self.name!r} already has a label "
                f"{entry.label!r}"
            )
        self.entries.append(entry)
        return self

    def build(self, flat: Table) -> tuple[Dimension, list[int]]:
        """Evaluate all predicates over the flattened schema.

        Returns the new dimension (one member per label, plus provenance
        attributes) and the per-fact surrogate keys.  Rows matched by
        multiple entries take the *first* matching label — entries are an
        ordered rule list, mirroring how clinicians express triage rules.
        Unmatched rows map to the Unknown member.
        """
        if not self.entries:
            raise WarehouseError(
                f"feedback dimension {self.name!r} has no entries to build from"
            )
        dimension = Dimension(
            self.name,
            {self.attribute: "str", "author": "str", "rationale": "str"},
            natural_key=[self.attribute],
        )
        label_keys = {
            entry.label: dimension.add_member(
                {
                    self.attribute: entry.label,
                    "author": entry.author,
                    "rationale": entry.rationale,
                }
            )
            for entry in self.entries
        }
        keys: list[int] = []
        for row in flat.iter_rows():
            key = UNKNOWN_KEY
            for entry in self.entries:
                if entry.predicate(row):
                    key = label_keys[entry.label]
                    break
            keys.append(key)
        return dimension, keys


def outcome_dimension(
    name: str, labels: Iterable[str], attribute: str = "outcome"
) -> Dimension:
    """A simple enumerated outcome dimension (e.g. improved/stable/worse)."""
    dimension = Dimension(name, {attribute: "str"}, natural_key=[attribute])
    for label in labels:
        dimension.add_member({attribute: label})
    return dimension
