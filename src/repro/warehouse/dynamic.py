"""The dynamic dimensional model — the paper's "elemental core".

A :class:`DynamicWarehouse` wraps a :class:`~repro.warehouse.star.StarSchema`
and supports live evolution:

* **add_dimension** — attach a new dimension with per-fact keys (existing
  analyses keep working; the paper's plasticity claim);
* **remove_dimension** — detach a dimension without touching measures;
* **fold_feedback** — run a :class:`FeedbackDimensionBuilder` over the
  flattened schema and attach the result;
* **history** — every change is journalled, because a clinical trial must
  be able to say which model version produced which finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import WarehouseError
from repro.tabular.table import Table
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension
from repro.warehouse.feedback import FeedbackDimensionBuilder
from repro.warehouse.star import StarSchema


@dataclass(frozen=True)
class ModelChange:
    """One schema-evolution event."""

    version: int
    action: str
    dimension: str
    detail: str = ""


class DynamicWarehouse:
    """A star schema that can gain and lose dimensions at runtime."""

    def __init__(self, schema: StarSchema):
        self.schema = schema
        self.version = 1
        self.history: list[ModelChange] = [
            ModelChange(1, "create", schema.name,
                        f"initial dimensions: {', '.join(schema.fact.dimension_names)}")
        ]

    @property
    def dimension_names(self) -> list[str]:
        """Dimensions currently in the fact grain."""
        return list(self.schema.fact.dimension_names)

    def add_dimension(
        self,
        dimension: Dimension,
        fact_keys: Sequence[int] | None = None,
        default_key: int = UNKNOWN_KEY,
    ) -> None:
        """Attach ``dimension``; assign ``fact_keys`` per existing fact row.

        With ``fact_keys=None`` every existing fact maps to ``default_key``
        (typically Unknown), which is the "add a dimension for data we will
        only start collecting now" case.
        """
        if dimension.name in self.schema.dimensions:
            raise WarehouseError(
                f"warehouse already has a dimension named {dimension.name!r}"
            )
        fact = self.schema.fact
        if fact_keys is not None and len(fact_keys) != fact.num_rows:
            raise WarehouseError(
                f"{len(fact_keys)} keys supplied for {fact.num_rows} fact rows"
            )
        fact.add_dimension_column(dimension.name, default_key)
        if fact_keys is not None:
            key_col = f"{dimension.name}_key"
            for row, key in zip(fact._rows, fact_keys):
                row[key_col] = int(key)
            fact._cache = None
        self.schema.dimensions[dimension.name] = dimension
        self.version += 1
        self.history.append(
            ModelChange(
                self.version, "add_dimension", dimension.name,
                f"{dimension.size} members, keys "
                f"{'supplied' if fact_keys is not None else f'defaulted to {default_key}'}",
            )
        )

    def remove_dimension(self, name: str) -> Dimension:
        """Detach a dimension; returns it so it can be re-attached later."""
        if name not in self.schema.dimensions:
            raise WarehouseError(f"warehouse has no dimension {name!r}")
        if name not in self.schema.fact.dimension_names:
            raise WarehouseError(
                f"dimension {name!r} exists but is not part of the fact grain"
            )
        self.schema.fact.drop_dimension_column(name)
        removed = self.schema.dimensions.pop(name)
        self.version += 1
        self.history.append(
            ModelChange(self.version, "remove_dimension", name)
        )
        return removed

    def fold_feedback(self, builder: FeedbackDimensionBuilder) -> Dimension:
        """Evaluate feedback predicates over the current schema and attach.

        This is the closed-loop arrow of paper Fig. 2: outcomes derived by
        users become a dimension available to the *next* round of analysis.
        """
        flat = self.schema.flatten()
        dimension, keys = builder.build(flat)
        self.add_dimension(dimension, fact_keys=keys)
        self.history[-1] = ModelChange(
            self.version, "fold_feedback", dimension.name,
            f"labels: {', '.join(e.label for e in builder.entries)}",
        )
        return dimension

    def flatten(self) -> Table:
        """Denormalised view of the current model version."""
        return self.schema.flatten()

    def describe_history(self) -> str:
        """Human-readable journal of model evolution."""
        lines = []
        for change in self.history:
            detail = f" — {change.detail}" if change.detail else ""
            lines.append(f"v{change.version}: {change.action} {change.dimension}{detail}")
        return "\n".join(lines)
