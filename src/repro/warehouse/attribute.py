"""Dimension attributes and drill-down hierarchies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HierarchyError
from repro.tabular.dtypes import DType


@dataclass(frozen=True)
class AttributeDef:
    """One descriptive attribute of a dimension."""

    name: str
    dtype: DType

    @classmethod
    def of(cls, name: str, dtype: DType | str) -> "AttributeDef":
        """Build with dtype coercion from string names."""
        return cls(name, DType.coerce(dtype))


class Hierarchy:
    """An ordered drill path from the coarsest level to the finest.

    ``levels[0]`` is the most aggregated attribute ("age band, 10 years"),
    the last entry the finest ("age band, 5 years").  Drill-down moves one
    position toward the end; roll-up one position toward the start — the
    operations behind paper Figs. 5 and 6.
    """

    def __init__(self, name: str, levels: list[str]):
        if len(levels) < 2:
            raise HierarchyError(
                f"hierarchy {name!r} needs at least two levels, got {levels}"
            )
        if len(set(levels)) != len(levels):
            raise HierarchyError(f"hierarchy {name!r} repeats a level")
        self.name = name
        self.levels = list(levels)

    def __repr__(self) -> str:
        return f"Hierarchy({self.name!r}: {' > '.join(self.levels)})"

    def position(self, level: str) -> int:
        """Index of ``level`` in the drill path."""
        try:
            return self.levels.index(level)
        except ValueError:
            raise HierarchyError(
                f"level {level!r} is not in hierarchy {self.name!r} "
                f"({' > '.join(self.levels)})"
            ) from None

    def drill_down(self, level: str) -> str:
        """The next finer level below ``level``."""
        pos = self.position(level)
        if pos == len(self.levels) - 1:
            raise HierarchyError(
                f"{level!r} is the finest level of hierarchy {self.name!r}"
            )
        return self.levels[pos + 1]

    def roll_up(self, level: str) -> str:
        """The next coarser level above ``level``."""
        pos = self.position(level)
        if pos == 0:
            raise HierarchyError(
                f"{level!r} is the coarsest level of hierarchy {self.name!r}"
            )
        return self.levels[pos - 1]

    @property
    def coarsest(self) -> str:
        """The top of the drill path."""
        return self.levels[0]

    @property
    def finest(self) -> str:
        """The bottom of the drill path."""
        return self.levels[-1]
