"""Fact tables: measures at a declared grain, keyed to dimensions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import GrainViolationError, UnknownMeasureError, WarehouseError
from repro.tabular.dtypes import DType
from repro.tabular.table import Table


@dataclass(frozen=True)
class Measure:
    """A numeric measure with its natural aggregation.

    ``additive`` marks measures that can be summed across every dimension
    (counts, totals); semi-additive quantities (levels, readings such as
    blood glucose) should aggregate by mean/min/max instead, and ``sum``
    over them is refused by the OLAP layer unless explicitly forced.
    """

    name: str
    dtype: DType = DType.FLOAT
    default_aggregation: str = "mean"
    additive: bool = False

    @classmethod
    def of(
        cls,
        name: str,
        dtype: DType | str = DType.FLOAT,
        default_aggregation: str = "mean",
        additive: bool = False,
    ) -> "Measure":
        """Build with dtype coercion and sanity checks."""
        resolved = DType.coerce(dtype)
        if not resolved.is_numeric:
            raise WarehouseError(
                f"measure {name!r} must be numeric, got {resolved.value}"
            )
        return cls(name, resolved, default_aggregation, additive)


class FactTable:
    """Rows of measures keyed by one surrogate key per dimension.

    The *grain* is the list of dimension names: one fact row per unique
    combination of business events at that granularity (for DiScRi: one row
    per medical measurement record per visit).
    """

    def __init__(self, name: str, dimension_names: list[str],
                 measures: Iterable[Measure]):
        if not dimension_names:
            raise WarehouseError(f"fact table {name!r} declared without dimensions")
        self.name = name
        self.dimension_names = list(dimension_names)
        self.measures: dict[str, Measure] = {m.name: m for m in measures}
        if not self.measures:
            raise WarehouseError(f"fact table {name!r} declared without measures")
        overlap = set(self.key_columns) & set(self.measures)
        if overlap:
            raise WarehouseError(
                f"fact table {name!r}: names {sorted(overlap)} are both keys "
                "and measures"
            )
        self._rows: list[dict[str, object]] = []
        self._cache: Table | None = None

    @property
    def key_columns(self) -> list[str]:
        """Surrogate-key column names, one per dimension in grain order."""
        return [f"{name}_key" for name in self.dimension_names]

    @property
    def num_rows(self) -> int:
        """Number of fact rows."""
        return len(self._rows)

    def measure(self, name: str) -> Measure:
        """Look up a measure definition."""
        try:
            return self.measures[name]
        except KeyError:
            raise UnknownMeasureError(
                f"fact table {self.name!r} has no measure {name!r} "
                f"(has: {', '.join(self.measures)})"
            ) from None

    def insert(self, keys: Mapping[str, int], values: Mapping[str, object]) -> None:
        """Append one fact row.

        ``keys`` must provide a surrogate key for *every* dimension in the
        grain — a missing key is a grain violation, not a default.  Unknown
        members are expressed explicitly with ``UNKNOWN_KEY``.
        """
        row: dict[str, object] = {}
        for dim_name, key_col in zip(self.dimension_names, self.key_columns):
            if dim_name not in keys:
                raise GrainViolationError(
                    f"fact row for {self.name!r} is missing the key for "
                    f"dimension {dim_name!r} (grain: {self.dimension_names})"
                )
            row[key_col] = int(keys[dim_name])
        unknown = set(values) - set(self.measures)
        if unknown:
            raise GrainViolationError(
                f"fact row for {self.name!r} carries unknown measures "
                f"{sorted(unknown)}"
            )
        for measure_name in self.measures:
            row[measure_name] = values.get(measure_name)
        self._rows.append(row)
        self._cache = None

    def insert_many(
        self, rows: Iterable[tuple[Mapping[str, int], Mapping[str, object]]]
    ) -> int:
        """Append many (keys, values) fact rows; returns how many."""
        count = 0
        for keys, values in rows:
            self.insert(keys, values)
            count += 1
        return count

    def _table_schema(self) -> dict[str, DType | str]:
        schema: dict[str, DType | str] = {k: DType.INT for k in self.key_columns}
        schema.update({m.name: m.dtype for m in self.measures.values()})
        return schema

    def to_table(self) -> Table:
        """Materialise facts as a table (cached until the next insert)."""
        if self._cache is None:
            self._cache = Table.from_rows(self._rows, schema=self._table_schema())
        return self._cache

    def to_table_from(self, start: int) -> Table:
        """Materialise only the fact rows appended at position ``start`` on.

        The appended-row extraction behind incremental maintenance: a
        delta load remembers ``num_rows`` before inserting, then flattens
        just this slice.  Uncached — delta slices are small and transient.
        """
        if not 0 <= start <= len(self._rows):
            raise WarehouseError(
                f"fact slice start {start} out of range "
                f"(0..{len(self._rows)})"
            )
        return Table.from_rows(self._rows[start:], schema=self._table_schema())

    def add_dimension_column(self, dim_name: str, default_key: int) -> None:
        """Extend the grain with a new dimension (dynamic model support).

        Existing rows get ``default_key`` — typically ``UNKNOWN_KEY`` or a
        member that means "not yet assessed".
        """
        if dim_name in self.dimension_names:
            raise WarehouseError(
                f"fact table {self.name!r} already has dimension {dim_name!r}"
            )
        key_col = f"{dim_name}_key"
        for row in self._rows:
            row[key_col] = int(default_key)
        self.dimension_names.append(dim_name)
        self._cache = None

    def drop_dimension_column(self, dim_name: str) -> None:
        """Remove a dimension from the grain (dynamic model support)."""
        if dim_name not in self.dimension_names:
            raise WarehouseError(
                f"fact table {self.name!r} has no dimension {dim_name!r}"
            )
        if len(self.dimension_names) == 1:
            raise WarehouseError(
                f"cannot drop the last dimension of fact table {self.name!r}"
            )
        key_col = f"{dim_name}_key"
        for row in self._rows:
            row.pop(key_col, None)
        self.dimension_names.remove(dim_name)
        self._cache = None

    def __repr__(self) -> str:
        return (
            f"FactTable({self.name!r}, {self.num_rows} rows, "
            f"grain={self.dimension_names}, measures=[{', '.join(self.measures)}])"
        )
