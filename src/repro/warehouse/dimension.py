"""Dimension tables with surrogate keys and member management."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import DimensionError, UnknownMemberError
from repro.tabular.dtypes import DType
from repro.tabular.table import Table
from repro.warehouse.attribute import AttributeDef, Hierarchy

#: Surrogate key of the reserved "Unknown" member present in every
#: dimension.  Facts whose source row lacks the natural key land here
#: instead of being dropped — partially-known clinical records must still
#: count in totals.
UNKNOWN_KEY = 0

#: Attribute value carried by the Unknown member.
UNKNOWN_LABEL = "Unknown"


class Dimension:
    """One dimension: members keyed by a natural key, rows by surrogate key.

    ``natural_key`` identifies a member in source data (e.g. the tuple of
    attribute values, or a patient id for the Personal Information
    dimension).  Surrogate keys are dense ints assigned at insert, with
    :data:`UNKNOWN_KEY` reserved.
    """

    def __init__(
        self,
        name: str,
        attributes: Mapping[str, DType | str],
        natural_key: list[str] | None = None,
        hierarchies: Iterable[Hierarchy] = (),
    ):
        if not attributes:
            raise DimensionError(f"dimension {name!r} declared without attributes")
        self.name = name
        self.attributes: dict[str, AttributeDef] = {
            attr: AttributeDef.of(attr, dtype) for attr, dtype in attributes.items()
        }
        # Natural key defaults to the full attribute tuple: two members are
        # the same member iff every descriptive attribute matches.
        self.natural_key = list(natural_key) if natural_key else list(self.attributes)
        unknown_attrs = set(self.natural_key) - set(self.attributes)
        if unknown_attrs:
            raise DimensionError(
                f"natural key of {name!r} uses unknown attributes "
                f"{sorted(unknown_attrs)}"
            )
        self.hierarchies: dict[str, Hierarchy] = {}
        for hierarchy in hierarchies:
            self.add_hierarchy(hierarchy)
        self._members: dict[int, dict[str, object]] = {
            UNKNOWN_KEY: {attr: None for attr in self.attributes}
        }
        self._by_natural: dict[tuple, int] = {}
        self._next_key = 1

    # ------------------------------------------------------------------

    def add_hierarchy(self, hierarchy: Hierarchy) -> None:
        """Register a drill hierarchy; its levels must be attributes."""
        missing = set(hierarchy.levels) - set(self.attributes)
        if missing:
            raise DimensionError(
                f"hierarchy {hierarchy.name!r} on dimension {self.name!r} "
                f"references unknown attributes {sorted(missing)}"
            )
        self.hierarchies[hierarchy.name] = hierarchy

    def hierarchy_for_level(self, level: str) -> Hierarchy | None:
        """The hierarchy containing ``level``, if any."""
        for hierarchy in self.hierarchies.values():
            if level in hierarchy.levels:
                return hierarchy
        return None

    # ------------------------------------------------------------------

    def _natural_tuple(self, row: Mapping[str, object]) -> tuple:
        return tuple(row.get(attr) for attr in self.natural_key)

    def add_member(self, row: Mapping[str, object]) -> int:
        """Insert (or find) a member; returns its surrogate key.

        Re-adding a member with the same natural key returns the existing
        surrogate key; attribute values outside the natural key are updated
        in place (type-1 slowly-changing dimension semantics).
        """
        unknown = set(row) - set(self.attributes)
        if unknown:
            raise DimensionError(
                f"member for {self.name!r} has unknown attributes "
                f"{sorted(unknown)}"
            )
        natural = self._natural_tuple(row)
        if all(v is None for v in natural):
            return UNKNOWN_KEY
        existing = self._by_natural.get(natural)
        values = {attr: row.get(attr) for attr in self.attributes}
        if existing is not None:
            self._members[existing].update(
                {k: v for k, v in values.items() if k not in self.natural_key}
            )
            return existing
        key = self._next_key
        self._next_key += 1
        self._members[key] = values
        self._by_natural[natural] = key
        return key

    def lookup(self, row: Mapping[str, object]) -> int:
        """Surrogate key for a natural key; raises when absent."""
        natural = self._natural_tuple(row)
        if all(v is None for v in natural):
            return UNKNOWN_KEY
        try:
            return self._by_natural[natural]
        except KeyError:
            raise UnknownMemberError(
                f"dimension {self.name!r} has no member with "
                f"{dict(zip(self.natural_key, natural))!r}"
            ) from None

    def member(self, key: int) -> dict[str, object]:
        """Attribute values of one member (copy)."""
        try:
            return dict(self._members[key])
        except KeyError:
            raise UnknownMemberError(
                f"dimension {self.name!r} has no member with surrogate key {key}"
            ) from None

    def attribute_of(self, key: int, attribute: str) -> object:
        """One attribute value of one member."""
        if attribute not in self.attributes:
            raise DimensionError(
                f"dimension {self.name!r} has no attribute {attribute!r} "
                f"(has: {', '.join(self.attributes)})"
            )
        return self.member(key)[attribute]

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of members, excluding the reserved Unknown member."""
        return len(self._members) - 1

    @property
    def key_column(self) -> str:
        """Name of this dimension's surrogate-key column in fact tables."""
        return f"{self.name}_key"

    def member_keys(self) -> list[int]:
        """All surrogate keys except Unknown, ascending."""
        return [k for k in sorted(self._members) if k != UNKNOWN_KEY]

    def distinct_values(self, attribute: str) -> list[object]:
        """Distinct non-null values of one attribute across members."""
        if attribute not in self.attributes:
            raise DimensionError(
                f"dimension {self.name!r} has no attribute {attribute!r}"
            )
        seen = []
        seen_set = set()
        for key in self.member_keys():
            value = self._members[key][attribute]
            if value is not None and value not in seen_set:
                seen_set.add(value)
                seen.append(value)
        return seen

    def to_table(self, include_unknown: bool = False) -> Table:
        """Materialise the dimension as a table (key + attributes)."""
        keys = sorted(self._members) if include_unknown else self.member_keys()
        rows = [
            {self.key_column: key, **self._members[key]} for key in keys
        ]
        schema: dict[str, DType | str] = {self.key_column: DType.INT}
        schema.update({a.name: a.dtype for a in self.attributes.values()})
        return Table.from_rows(rows, schema=schema)

    def __repr__(self) -> str:
        return (
            f"Dimension({self.name!r}, {self.size} members, "
            f"attrs=[{', '.join(self.attributes)}])"
        )
