"""Loading transformed source tables into a star schema.

The loader owns the mechanical part of dimensional design: given a wide,
cleaned source table and a declaration of which columns feed which
dimension, it populates dimension members, resolves surrogate keys and
appends fact rows — the "uploaded into the warehouse" step of paper §IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError, WarehouseError
from repro.etl.quarantine import QuarantinedRow
from repro.tabular.table import Table
from repro.warehouse.dimension import UNKNOWN_KEY, Dimension
from repro.warehouse.fact import FactTable, Measure
from repro.warehouse.star import StarSchema


@dataclass
class DimensionSpec:
    """How one dimension is fed from source columns.

    ``columns`` maps dimension attribute → source column (identity mapping
    when given as a plain list).
    """

    dimension: Dimension
    columns: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.columns:
            self.columns = {attr: attr for attr in self.dimension.attributes}
        unknown = set(self.columns) - set(self.dimension.attributes)
        if unknown:
            raise WarehouseError(
                f"spec for dimension {self.dimension.name!r} maps unknown "
                f"attributes {sorted(unknown)}"
            )

    def member_row(self, source_row: Mapping[str, object]) -> dict[str, object]:
        """Extract this dimension's attribute values from a source row."""
        return {
            attr: source_row.get(source_col)
            for attr, source_col in self.columns.items()
        }


@dataclass
class LoadReport:
    """What a load run did."""

    facts_loaded: int = 0
    members_per_dimension: dict[str, int] = field(default_factory=dict)
    unknown_keys_per_dimension: dict[str, int] = field(default_factory=dict)
    rows_quarantined: int = 0
    #: positions (in the loaded source table) of the quarantined rows
    quarantined_indices: list[int] = field(default_factory=list)

    def summary(self) -> str:
        """One-line recap."""
        dims = ", ".join(
            f"{name}={count}" for name, count in sorted(self.members_per_dimension.items())
        )
        text = f"{self.facts_loaded} facts; members: {dims}"
        if self.rows_quarantined:
            text += f"; quarantined {self.rows_quarantined} rows"
        return text


class WarehouseLoader:
    """Populates a star schema from wide source tables."""

    def __init__(
        self,
        schema_name: str,
        fact_name: str,
        dimension_specs: Iterable[DimensionSpec],
        measures: Iterable[Measure],
        measure_columns: Mapping[str, str] | None = None,
    ):
        self.specs = list(dimension_specs)
        if not self.specs:
            raise WarehouseError("loader needs at least one dimension spec")
        self.measures = list(measures)
        self.measure_columns = dict(measure_columns or {})
        for measure in self.measures:
            self.measure_columns.setdefault(measure.name, measure.name)
        fact = FactTable(
            fact_name,
            [spec.dimension.name for spec in self.specs],
            self.measures,
        )
        self.schema = StarSchema(
            schema_name, fact, [spec.dimension for spec in self.specs]
        )

    def load(
        self,
        source: Table,
        *,
        quarantine=None,
        batch: str = "",
        source_indices: Sequence[int] | None = None,
        extra_keys=None,
    ) -> LoadReport:
        """Load every source row as one fact, creating members as needed.

        Without ``quarantine`` a row that fails key resolution or fact
        insertion raises, aborting the load.  With a quarantine sink the
        failing row diverts there (step ``"load"``, tagged with ``batch``)
        and loading continues; ``source_indices`` — when the source table
        is itself the survivor subset of a larger batch — maps each source
        position back to the original batch index recorded in the entry.
        A row never half-loads: :meth:`FactTable.insert` validates before
        appending, and dimension members created for a failing row are
        reusable vocabulary, not facts.

        ``extra_keys`` is an optional ``(source_row, keys_so_far) -> dict``
        resolver for grain dimensions this loader's specs do not feed —
        dynamically folded feedback dimensions during a *delta* load,
        whose keys a full rebuild would only assign in the feedback-replay
        pass.  Its result merges into the fact row's key set.
        """
        report = LoadReport()
        rows = source.to_rows()
        for i, row in enumerate(rows):
            try:
                keys: dict[str, int] = {}
                for spec in self.specs:
                    member = spec.member_row(row)
                    key = spec.dimension.add_member(member)
                    keys[spec.dimension.name] = key
                    if key == UNKNOWN_KEY:
                        name = spec.dimension.name
                        report.unknown_keys_per_dimension[name] = (
                            report.unknown_keys_per_dimension.get(name, 0) + 1
                        )
                if extra_keys is not None:
                    keys.update(extra_keys(row, keys))
                values = {
                    m.name: row.get(self.measure_columns[m.name]) for m in self.measures
                }
                self.schema.fact.insert(keys, values)
            except ReproError as exc:
                if quarantine is None:
                    raise
                index = (
                    int(source_indices[i]) if source_indices is not None else i
                )
                quarantine.add(
                    QuarantinedRow.from_error(
                        row, "load", exc, batch=batch, source_index=index
                    )
                )
                report.rows_quarantined += 1
                report.quarantined_indices.append(i)
                continue
            report.facts_loaded += 1
        for spec in self.specs:
            report.members_per_dimension[spec.dimension.name] = spec.dimension.size
        return report
