"""Warehouse persistence: save/load a star schema (or dynamic warehouse).

The warehouse accumulates years of screening data; rebuilding it from raw
sources on every start defeats the point.  Layout::

    <dir>/schema.json            schema name, grain, measures, hierarchies,
                                 per-file CRC32 digests (the commit point)
    <dir>/dim_<name>.json        members of each dimension (by surrogate key)
    <dir>/facts.json             fact rows (keys + measures)
    <dir>/history.json           (dynamic only) the model-change journal

Every file is written atomically (temp + fsync + rename + directory
fsync) and ``schema.json`` — which records a CRC32 digest of every other
file — is written *last*, so no individual file is ever torn and a crash
mid-save is always *detected*: either the old manifest's digests no
longer match the partially-replaced data files (load fails loudly, and
the warehouse is rebuilt from the operational stores through ETL), or
the save completed and everything verifies.  Unlike the operational
snapshot store, the warehouse keeps no fallback generations — it is
derived state, so detection rather than rollback is the durability
contract here.  Format-2 loads verify each digest before parsing;
format-1 directories (no digests) still load via the compatibility
branch.

Feedback dimensions persist like any other — their predicates are gone
(they were only needed at fold time); the materialised keys are the data.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

from repro.errors import WarehouseError
from repro.storage.durable import atomic_write_bytes, crc32_hex
from repro.tabular.dtypes import DType
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dimension import Dimension
from repro.warehouse.dynamic import DynamicWarehouse, ModelChange
from repro.warehouse.fact import FactTable, Measure
from repro.warehouse.star import StarSchema

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = frozenset({1, 2})


def save_warehouse(
    warehouse: DynamicWarehouse | StarSchema, directory: str | Path
) -> None:
    """Deprecated spelling of the unified :func:`repro.persistence.save`."""
    warnings.warn(
        "save_warehouse() is deprecated; use repro.persistence.save()",
        DeprecationWarning,
        stacklevel=2,
    )
    _save_warehouse(warehouse, directory)


def _save_warehouse(
    warehouse: DynamicWarehouse | StarSchema, directory: str | Path
) -> None:
    """Write the full dimensional model and facts under ``directory``."""
    dynamic = warehouse if isinstance(warehouse, DynamicWarehouse) else None
    schema = warehouse.schema if dynamic is not None else warehouse
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    manifest = {
        "format_version": _FORMAT_VERSION,
        "name": schema.name,
        "fact": {
            "name": schema.fact.name,
            "grain": schema.fact.dimension_names,
            "measures": [
                {
                    "name": m.name,
                    "dtype": m.dtype.value,
                    "default_aggregation": m.default_aggregation,
                    "additive": m.additive,
                }
                for m in schema.fact.measures.values()
            ],
        },
        "dimensions": {},
    }
    digests: dict[str, str] = {}

    def write_file(filename: str, data: bytes) -> None:
        atomic_write_bytes(path / filename, data, point="warehouse.data")
        digests[filename] = crc32_hex(data)

    for name, dimension in schema.dimensions.items():
        manifest["dimensions"][name] = {
            "attributes": {
                a.name: a.dtype.value for a in dimension.attributes.values()
            },
            "natural_key": dimension.natural_key,
            "hierarchies": {
                h.name: h.levels for h in dimension.hierarchies.values()
            },
        }
        members = {
            str(key): dimension.member(key) for key in dimension.member_keys()
        }
        write_file(
            f"dim_{name}.json", json.dumps(members, default=str).encode("utf-8")
        )
    write_file(
        "facts.json", json.dumps(schema.fact._rows, default=str).encode("utf-8")
    )
    if dynamic is not None:
        history = [
            {
                "version": change.version,
                "action": change.action,
                "dimension": change.dimension,
                "detail": change.detail,
            }
            for change in dynamic.history
        ]
        write_file(
            "history.json",
            json.dumps(
                {"version": dynamic.version, "history": history}, indent=2
            ).encode("utf-8"),
        )
    manifest["digests"] = digests
    atomic_write_bytes(
        path / "schema.json",
        json.dumps(manifest, indent=2).encode("utf-8"),
        point="warehouse.manifest",
    )


def _read_verified(path: Path, filename: str, digests: dict | None) -> str:
    """Read one warehouse file, checking its digest when the format has one."""
    data = (path / filename).read_bytes()
    if digests is not None:
        expected = digests.get(filename)
        if expected is None:
            raise WarehouseError(
                f"warehouse file {filename!r} fails integrity check: "
                f"no digest recorded in schema.json"
            )
        actual = crc32_hex(data)
        if actual != expected:
            raise WarehouseError(
                f"warehouse file {filename!r} fails integrity check: "
                f"checksum mismatch (stored {expected}, actual {actual})"
            )
    return data.decode("utf-8")


def load_warehouse(directory: str | Path) -> DynamicWarehouse:
    """Deprecated spelling of the unified :func:`repro.persistence.load`."""
    warnings.warn(
        "load_warehouse() is deprecated; use repro.persistence.load()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_warehouse(directory)


def _load_warehouse(directory: str | Path) -> DynamicWarehouse:
    """Reconstruct a :class:`DynamicWarehouse` from :func:`_save_warehouse`."""
    path = Path(directory)
    manifest_file = path / "schema.json"
    if not manifest_file.exists():
        raise WarehouseError(f"no warehouse snapshot at {path}")
    try:
        manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise WarehouseError(f"{manifest_file} is not valid JSON: {exc}")
    version = manifest.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise WarehouseError(
            f"unsupported warehouse format {version!r} "
            f"(expected one of {sorted(_SUPPORTED_VERSIONS)})"
        )
    digests = manifest.get("digests") if version >= 2 else None

    dimensions: list[Dimension] = []
    for name, spec in manifest["dimensions"].items():
        dimension = Dimension(
            name,
            {attr: DType.coerce(dt) for attr, dt in spec["attributes"].items()},
            natural_key=spec["natural_key"],
            hierarchies=[
                Hierarchy(h_name, levels)
                for h_name, levels in spec["hierarchies"].items()
            ],
        )
        members = json.loads(_read_verified(path, f"dim_{name}.json", digests))
        for key_text in sorted(members, key=int):
            key = dimension.add_member(members[key_text])
            if key != int(key_text):
                raise WarehouseError(
                    f"dimension {name!r}: surrogate key mismatch on reload "
                    f"({key} != {key_text}); members file corrupted?"
                )
        dimensions.append(dimension)

    fact_spec = manifest["fact"]
    fact = FactTable(
        fact_spec["name"],
        list(fact_spec["grain"]),
        [
            Measure.of(
                m["name"], m["dtype"], m["default_aggregation"], m["additive"]
            )
            for m in fact_spec["measures"]
        ],
    )
    rows = json.loads(_read_verified(path, "facts.json", digests))
    for row in rows:
        keys = {
            dim_name: int(row[f"{dim_name}_key"])
            for dim_name in fact.dimension_names
        }
        values = {m: row.get(m) for m in fact.measures}
        fact.insert(keys, values)

    schema = StarSchema(manifest["name"], fact, dimensions)
    problems = schema.check_integrity()
    if problems:
        raise WarehouseError(
            f"reloaded warehouse fails integrity: {problems[:3]}"
        )
    warehouse = DynamicWarehouse(schema)

    history_file = path / "history.json"
    if history_file.exists():
        payload = json.loads(_read_verified(path, "history.json", digests))
        warehouse.version = payload["version"]
        warehouse.history = [
            ModelChange(
                entry["version"], entry["action"],
                entry["dimension"], entry["detail"],
            )
            for entry in payload["history"]
        ]
    return warehouse
