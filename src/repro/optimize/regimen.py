"""Treatment-regimen optimisation under economic constraints (LP).

The strategic-user problem of paper §IV: assign treatments to patient
groups to maximise expected outcome improvement while total cost stays
within the health-care budget.  Formulated as a linear program and solved
with ``scipy.optimize.linprog``; inputs (group sizes, per-group expected
benefits) come straight from warehouse aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.errors import OptimizationError


@dataclass(frozen=True)
class TreatmentOutcome:
    """Expected effect of one treatment on one patient group.

    ``benefit`` is the expected outcome improvement per patient (any
    consistent clinical unit — e.g. expected HbA1c reduction, or QALY
    proxy); ``cost`` the per-patient cost of the treatment for that group.
    """

    group: str
    treatment: str
    benefit: float
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise OptimizationError(
                f"negative cost for {self.treatment!r} on {self.group!r}"
            )


@dataclass
class RegimenProblem:
    """Groups with sizes, candidate treatments, and a total budget."""

    group_sizes: Mapping[str, float]
    outcomes: Sequence[TreatmentOutcome]
    budget: float
    #: require every patient to be assigned some treatment when True;
    #: otherwise patients may be left on "no treatment" at zero cost/benefit
    full_coverage: bool = False
    #: optional cap on patients per (group, treatment), e.g. capacity limits
    capacity: Mapping[tuple[str, str], float] = field(default_factory=dict)

    def validate(self) -> None:
        """Structural checks before solving."""
        if self.budget < 0:
            raise OptimizationError("budget must be non-negative")
        if not self.group_sizes:
            raise OptimizationError("no patient groups supplied")
        if not self.outcomes:
            raise OptimizationError("no treatment outcomes supplied")
        groups = set(self.group_sizes)
        for outcome in self.outcomes:
            if outcome.group not in groups:
                raise OptimizationError(
                    f"outcome references unknown group {outcome.group!r}"
                )
        for (group, treatment) in self.capacity:
            if not any(
                o.group == group and o.treatment == treatment for o in self.outcomes
            ):
                raise OptimizationError(
                    f"capacity set for absent pair ({group!r}, {treatment!r})"
                )


@dataclass
class TreatmentPlan:
    """Solved regimen: patients assigned per (group, treatment)."""

    assignments: dict[tuple[str, str], float]
    total_benefit: float
    total_cost: float
    budget: float
    status: str
    #: marginal benefit of one extra budget unit (LP dual of the budget
    #: row); 0 when the budget is slack, None if the solver omits duals
    budget_shadow_price: float | None = None

    def coverage(self, group_sizes: Mapping[str, float]) -> dict[str, float]:
        """Fraction of each group assigned any treatment."""
        treated: dict[str, float] = {}
        for (group, __), count in self.assignments.items():
            treated[group] = treated.get(group, 0.0) + count
        return {
            group: (treated.get(group, 0.0) / size if size > 0 else 0.0)
            for group, size in group_sizes.items()
        }

    def summary(self) -> str:
        """Readable plan."""
        lines = [
            f"total benefit {self.total_benefit:.2f}, "
            f"cost {self.total_cost:.2f} / budget {self.budget:.2f} "
            f"({self.status})"
        ]
        if self.budget_shadow_price is not None:
            lines.append(
                f"  marginal benefit of +1 budget: "
                f"{self.budget_shadow_price:.5f}"
            )
        for (group, treatment), count in sorted(self.assignments.items()):
            if count > 1e-9:
                lines.append(f"  {group}: {count:.1f} patients -> {treatment}")
        return "\n".join(lines)


def optimize_regimen(problem: RegimenProblem) -> TreatmentPlan:
    """Solve the regimen LP; raises on infeasibility.

    Decision variables: x[(group, treatment)] = patients of ``group`` given
    ``treatment``.  Maximise Σ benefit·x subject to Σ cost·x ≤ budget,
    per-group assignment ≤ (or =, with full coverage) group size, optional
    capacity caps, x ≥ 0.
    """
    problem.validate()
    pairs = [(o.group, o.treatment) for o in problem.outcomes]
    index = {pair: i for i, pair in enumerate(pairs)}
    n = len(pairs)

    c = np.zeros(n)
    costs = np.zeros(n)
    for outcome in problem.outcomes:
        i = index[(outcome.group, outcome.treatment)]
        c[i] = -outcome.benefit  # linprog minimises
        costs[i] = outcome.cost

    a_ub = [costs]
    b_ub = [problem.budget]
    a_eq: list[np.ndarray] = []
    b_eq: list[float] = []
    for group, size in problem.group_sizes.items():
        row = np.zeros(n)
        for (g, t), i in index.items():
            if g == group:
                row[i] = 1.0
        if not row.any():
            continue
        if problem.full_coverage:
            a_eq.append(row)
            b_eq.append(float(size))
        else:
            a_ub.append(row)
            b_ub.append(float(size))

    bounds = []
    for pair in pairs:
        cap = problem.capacity.get(pair)
        bounds.append((0.0, float(cap) if cap is not None else None))

    result = linprog(
        c,
        A_ub=np.array(a_ub),
        b_ub=np.array(b_ub),
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise OptimizationError(
            f"regimen optimisation infeasible: {result.message}"
        )
    x = result.x
    assignments = {
        pair: float(x[i]) for pair, i in index.items() if x[i] > 1e-9
    }
    # the budget row is the first inequality; HiGHS exposes its dual value
    shadow = None
    marginals = getattr(getattr(result, "ineqlin", None), "marginals", None)
    if marginals is not None and len(marginals) > 0:
        shadow = float(-marginals[0])  # benefit per extra budget dollar
    return TreatmentPlan(
        assignments=assignments,
        total_benefit=float(-result.fun),
        total_cost=float(costs @ x),
        budget=problem.budget,
        status="optimal",
        budget_shadow_price=shadow,
    )
