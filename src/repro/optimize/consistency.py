"""Consistency of optimal aggregates under dimension changes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import OptimizationError
from repro.olap.cube import Cube
from repro.warehouse.dimension import Dimension
from repro.warehouse.dynamic import DynamicWarehouse


@dataclass(frozen=True)
class OptimalAggregate:
    """The best cell of an aggregation: which members, what value."""

    levels: tuple[str, ...]
    cell: tuple
    value: float
    aggregation: str
    direction: str

    def describe(self) -> str:
        """E.g. ``max mean(fbg) at (age_band=60-80, gender=F): 7.84``."""
        members = ", ".join(
            f"{level.split('.')[-1]}={value}"
            for level, value in zip(self.levels, self.cell)
        )
        return f"{self.direction} {self.aggregation} at ({members}): {self.value:g}"


def find_optimal_aggregate(
    cube: Cube,
    levels: Sequence[str],
    target: str,
    aggregation: str = "mean",
    direction: str = "max",
    min_records: int = 1,
) -> OptimalAggregate:
    """The cell with the extreme aggregate value over the given levels.

    Cells supported by fewer than ``min_records`` facts are skipped —
    a one-patient cell is never a defensible "optimal regimen".
    """
    if direction not in ("max", "min"):
        raise OptimizationError(f"direction must be max or min, got {direction!r}")
    qualified = tuple(cube.check_level(level) for level in levels)
    table = cube.aggregate(
        list(qualified),
        {"value": (target, aggregation), "n": (Cube.RECORDS, "size")},
    )
    best: OptimalAggregate | None = None
    for row in table.iter_rows():
        if row["n"] is None or row["n"] < min_records or row["value"] is None:
            continue
        value = float(row["value"])
        cell = tuple(row[level] for level in qualified)
        better = (
            best is None
            or (direction == "max" and value > best.value)
            or (direction == "min" and value < best.value)
        )
        if better:
            best = OptimalAggregate(
                qualified, cell, value, f"{aggregation}({target})", direction
            )
    if best is None:
        raise OptimizationError(
            f"no cell over {list(levels)} has at least {min_records} records"
        )
    return best


@dataclass
class ConsistencyReport:
    """Outcome of perturbing the dimensional model around an optimum."""

    baseline: OptimalAggregate
    perturbations: list[tuple[str, OptimalAggregate]] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """True when every perturbation found the same optimal cell."""
        return all(
            found.cell == self.baseline.cell
            and abs(found.value - self.baseline.value) < 1e-9
            for __, found in self.perturbations
        )

    def summary(self) -> str:
        """Readable report."""
        lines = [f"baseline: {self.baseline.describe()}"]
        for action, found in self.perturbations:
            same = "SAME" if found.cell == self.baseline.cell else "CHANGED"
            lines.append(f"after {action}: {found.describe()} [{same}]")
        lines.append(f"consistent: {self.consistent}")
        return "\n".join(lines)


def check_dimension_consistency(
    warehouse: DynamicWarehouse,
    levels: Sequence[str],
    target: str,
    aggregation: str = "mean",
    direction: str = "max",
    min_records: int = 1,
    removable: Sequence[str] | None = None,
    addable: Sequence[tuple[Dimension, Sequence[int] | None]] = (),
) -> ConsistencyReport:
    """Verify the paper's claim: the optimum survives dimension changes.

    Dimensions named in ``removable`` (none of which may appear in
    ``levels``) are removed one at a time and re-attached; each entry of
    ``addable`` is attached and detached likewise.  The warehouse is left
    in its original composition.
    """
    cube = Cube(warehouse)
    baseline = find_optimal_aggregate(
        cube, levels, target, aggregation, direction, min_records
    )
    used_dims = {cube.check_level(level).split(".")[0] for level in levels}
    report = ConsistencyReport(baseline)

    for name in removable or []:
        if name in used_dims:
            raise OptimizationError(
                f"cannot remove dimension {name!r}: it carries a grouping level"
            )
        key_col = f"{name}_key"
        saved_keys = [row[key_col] for row in warehouse.schema.fact._rows]
        removed = warehouse.remove_dimension(name)
        try:
            found = find_optimal_aggregate(
                Cube(warehouse), levels, target, aggregation, direction, min_records
            )
            report.perturbations.append((f"remove {name}", found))
        finally:
            warehouse.add_dimension(removed, fact_keys=saved_keys)

    for dimension, keys in addable:
        warehouse.add_dimension(dimension, fact_keys=keys)
        try:
            found = find_optimal_aggregate(
                Cube(warehouse), levels, target, aggregation, direction, min_records
            )
            report.perturbations.append((f"add {dimension.name}", found))
        finally:
            warehouse.remove_dimension(dimension.name)
    return report
