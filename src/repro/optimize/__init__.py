"""Decision optimisation (paper §IV, "Decision Optimisation").

Two halves, matching the paper's two claims:

* **Validation** — "outcomes can be reviewed by removing existing or adding
  further dimensions.  Optimal aggregates would be consistent regardless of
  the changes to dimensions."  :mod:`repro.optimize.consistency` makes that
  claim checkable.
* **Strategic optimisation** — clinical administrators "seek information
  relevant for optimising treatment regimen that have the best individual
  outcomes ... within the economic constraints of the current health care
  system."  :mod:`repro.optimize.regimen` and
  :mod:`repro.optimize.screening` formulate those as linear programs fed by
  warehouse aggregates.
"""

from repro.optimize.consistency import (
    ConsistencyReport,
    OptimalAggregate,
    check_dimension_consistency,
    find_optimal_aggregate,
)
from repro.optimize.regimen import (
    RegimenProblem,
    TreatmentOutcome,
    TreatmentPlan,
    optimize_regimen,
)
from repro.optimize.screening import ScreeningAllocation, allocate_screening

__all__ = [
    "OptimalAggregate",
    "ConsistencyReport",
    "find_optimal_aggregate",
    "check_dimension_consistency",
    "TreatmentOutcome",
    "RegimenProblem",
    "TreatmentPlan",
    "optimize_regimen",
    "ScreeningAllocation",
    "allocate_screening",
]
