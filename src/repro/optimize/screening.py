"""Screening-programme resource allocation.

The DiScRi context is a rural screening clinic with finite capacity: given
per-group attendance populations and detection rates (straight from the
warehouse: diabetics found / patients screened per group), allocate
screening slots to maximise expected new detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.optimize import linprog

from repro.errors import OptimizationError


@dataclass
class ScreeningAllocation:
    """Solved allocation: slots per group and expected detections."""

    slots: dict[str, float]
    expected_detections: float
    capacity: float

    def summary(self) -> str:
        """Readable allocation."""
        lines = [
            f"expected detections {self.expected_detections:.1f} "
            f"from capacity {self.capacity:g}"
        ]
        for group, n in sorted(self.slots.items(), key=lambda p: -p[1]):
            if n > 1e-9:
                lines.append(f"  {group}: {n:.1f} screening slots")
        return "\n".join(lines)


def allocate_screening(
    populations: Mapping[str, float],
    detection_rates: Mapping[str, float],
    capacity: float,
    min_slots: Mapping[str, float] | None = None,
) -> ScreeningAllocation:
    """Maximise Σ rate·slots s.t. Σ slots ≤ capacity, slots ≤ population.

    ``min_slots`` can force equity floors per group (a policy constraint a
    strategic user would impose).  Raises when the floors alone exceed
    capacity or reference unknown groups.
    """
    if capacity <= 0:
        raise OptimizationError("capacity must be positive")
    groups = sorted(populations)
    if not groups:
        raise OptimizationError("no groups supplied")
    missing = set(detection_rates) - set(groups)
    if missing:
        raise OptimizationError(
            f"detection rates for unknown groups: {sorted(missing)}"
        )
    min_slots = dict(min_slots or {})
    unknown_floors = set(min_slots) - set(groups)
    if unknown_floors:
        raise OptimizationError(
            f"min_slots for unknown groups: {sorted(unknown_floors)}"
        )

    n = len(groups)
    c = np.array([-float(detection_rates.get(g, 0.0)) for g in groups])
    a_ub = np.ones((1, n))
    b_ub = np.array([float(capacity)])
    bounds = []
    for g in groups:
        floor = float(min_slots.get(g, 0.0))
        ceiling = float(populations[g])
        if floor > ceiling:
            raise OptimizationError(
                f"min_slots for {g!r} ({floor}) exceeds its population ({ceiling})"
            )
        bounds.append((floor, ceiling))
    if sum(b[0] for b in bounds) > capacity + 1e-9:
        raise OptimizationError("equity floors alone exceed screening capacity")

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise OptimizationError(f"screening allocation failed: {result.message}")
    slots = {g: float(x) for g, x in zip(groups, result.x)}
    return ScreeningAllocation(
        slots=slots,
        expected_detections=float(-result.fun),
        capacity=float(capacity),
    )
