"""Clinical discretisation schemes — paper Table I plus the drill bands.

The four schemes of Table I are transcribed verbatim; the 10-year and
5-year age bands drive the Fig 5/6 drill-down hierarchy.
"""

from __future__ import annotations

from repro.etl.discretization import DiscretizationScheme

#: Table I row 1 — "Participant's age on test date": <40, 40-60, 60-80, >80
AGE_SCHEME = DiscretizationScheme.from_cut_points("Age", [40, 60, 80])

#: Table I row 2 — years since hypertension diagnosis:
#: <2, 2-5, 5-10, 10-20, >20
HT_YEARS_SCHEME = DiscretizationScheme.from_cut_points(
    "DiagnosticHTYears", [2, 5, 10, 20]
)

#: Table I row 3 — fasting blood glucose:
#: <5.5 very good, 5.5-6.1 high, 6.1-7 preDiabetic, >=7 Diabetic
FBG_SCHEME = DiscretizationScheme.from_cut_points(
    "FBG", [5.5, 6.1, 7.0],
    labels=["very good", "high", "preDiabetic", "Diabetic"],
)

#: Table I row 4 — lying diastolic blood pressure:
#: <60 low, 60-80 normal, 80-90 high normal, >90 hypertension
LYING_DBP_SCHEME = DiscretizationScheme.from_cut_points(
    "LyingDBPAverage", [60, 80, 90],
    labels=["low", "normal", "high normal", "hypertension"],
)

#: The paper's Table I, keyed by the attribute it discretises.
TABLE1_SCHEMES = {
    "age": AGE_SCHEME,
    "diagnostic_ht_years": HT_YEARS_SCHEME,
    "fbg": FBG_SCHEME,
    "lying_dbp_avg": LYING_DBP_SCHEME,
}

#: 10-year age bands — the coarse level of the Fig 5/6 drill hierarchy.
AGE_BAND_10_SCHEME = DiscretizationScheme.from_cut_points(
    "AgeBand10", [40, 50, 60, 70, 80, 90]
)

#: 5-year age bands — the fine level exposed by drill-down.
AGE_BAND_5_SCHEME = DiscretizationScheme.from_cut_points(
    "AgeBand5", [40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90]
)

#: BMI per WHO bands — used by the trial beyond Table I.
BMI_SCHEME = DiscretizationScheme.from_cut_points(
    "BMI", [18.5, 25, 30],
    labels=["underweight", "normal", "overweight", "obese"],
)

#: Total cholesterol (mmol/L).
CHOLESTEROL_SCHEME = DiscretizationScheme.from_cut_points(
    "TotalCholesterol", [5.5, 6.5],
    labels=["desirable", "borderline", "high"],
)


def clinical_schemes() -> dict[str, DiscretizationScheme]:
    """All clinician-supplied schemes keyed by source attribute."""
    return {
        **TABLE1_SCHEMES,
        "bmi": BMI_SCHEME,
        "chol_total": CHOLESTEROL_SCHEME,
    }
