"""Data-dictionary generation for the DiScRi catalogue.

Renders the 273-attribute catalogue — optionally with per-attribute
statistics from an actual cohort — as a markdown document.  Screening
programmes live or die by their data dictionaries; this keeps ours a
build artefact instead of a stale hand-written file.
"""

from __future__ import annotations

from pathlib import Path

from repro.discri.attributes import ATTRIBUTE_GROUPS, AttributeSpec, specs_by_group
from repro.tabular.table import Table


def _describe_sampler(spec: AttributeSpec) -> str:
    kind = spec.sampler[0]
    if kind == "special":
        return "clinical core logic (carries planted phenomena)"
    if kind == "normal":
        __, mean, sd, shift = spec.sampler
        base = f"Gaussian(μ={mean:g}, σ={sd:g})"
        if shift:
            base += f", diabetic shift {shift:+g}"
        return base
    if kind == "choice":
        __, values, __w, diabetic = spec.sampler
        base = "categorical {" + ", ".join(values) + "}"
        if diabetic:
            base += " (re-weighted for diabetics)"
        return base
    if kind == "flag":
        __, base_rate, diabetic_rate = spec.sampler
        if diabetic_rate != base_rate:
            return f"yes/no, P(yes)={base_rate:g} ({diabetic_rate:g} diabetic)"
        return f"yes/no, P(yes)={base_rate:g}"
    return kind


def generate_data_dictionary(
    cohort: Table | None = None,
    path: str | Path | None = None,
) -> str:
    """Build the dictionary markdown; optionally write it to ``path``.

    With a ``cohort`` supplied, each attribute row carries its observed
    null rate and distinct-value count from that cohort.
    """
    lines = [
        "# DiScRi data dictionary",
        "",
        "One row per attribute; grouped by warehouse dimension.  The "
        "*generation* column documents how the synthetic cohort fills the "
        "attribute (see DESIGN.md §2 for the substitution rationale).",
        "",
    ]
    grouped = specs_by_group()
    total = sum(len(specs) for specs in grouped.values())
    lines.append(f"Attributes: **{total}** across {len(grouped)} groups.")
    for group in ATTRIBUTE_GROUPS:
        specs = grouped[group]
        lines.append("")
        lines.append(f"## {group} ({len(specs)} attributes)")
        lines.append("")
        if cohort is not None:
            lines.append("| attribute | type | generation | nulls | distinct |")
            lines.append("|---|---|---|---|---|")
        else:
            lines.append("| attribute | type | generation |")
            lines.append("|---|---|---|")
        for spec in specs:
            row = (
                f"| `{spec.name}` | {spec.dtype.value} "
                f"| {_describe_sampler(spec)} "
            )
            if cohort is not None:
                column = cohort.column(spec.name)
                null_rate = column.null_count / max(cohort.num_rows, 1)
                row += f"| {null_rate:.1%} | {column.n_unique()} "
            lines.append(row + "|")
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
