"""The 273-attribute DiScRi catalogue.

The paper: "includes over one hundred features including demographics,
socio-economic variables, education background, clinical variables such as
blood pressure, body-mass-index (BMI), kidney function, sensori-motor
function as well as blood glucose levels, cholesterol profile,
pro-inflammatory markers, oxidative stress markers and use of medication.
Data on 273 attributes ...".

Each :class:`AttributeSpec` declares its dimension group, dtype and a
*sampler* hint the generator uses:

* ``("special",)`` — computed by the generator's clinical core logic
  (these carry the planted phenomena);
* ``("normal", mean, sd, diabetic_shift)`` — Gaussian, shifted for
  diabetic patients;
* ``("choice", values, weights, diabetic_weights)`` — categorical draw,
  optionally re-weighted for diabetics (``None`` = same weights);
* ``("flag", base_rate, diabetic_rate)`` — yes/no indicator.

The catalogue is data, not behaviour: tests assert it holds exactly 273
attributes, matching the paper's reported width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.tabular.dtypes import DType


@dataclass(frozen=True)
class AttributeSpec:
    """One catalogued clinical attribute."""

    name: str
    group: str
    dtype: DType
    sampler: tuple

    def is_special(self) -> bool:
        """Whether the generator core computes this attribute."""
        return self.sampler[0] == "special"


def _special(name: str, group: str, dtype: str) -> AttributeSpec:
    return AttributeSpec(name, group, DType.coerce(dtype), ("special",))


def _normal(
    name: str, group: str, mean: float, sd: float, shift: float = 0.0
) -> AttributeSpec:
    return AttributeSpec(name, group, DType.FLOAT, ("normal", mean, sd, shift))


def _choice(
    name: str,
    group: str,
    values: Sequence[str],
    weights: Sequence[float],
    diabetic_weights: Sequence[float] | None = None,
) -> AttributeSpec:
    return AttributeSpec(
        name, group, DType.STR,
        ("choice", tuple(values), tuple(weights),
         tuple(diabetic_weights) if diabetic_weights else None),
    )


def _flag(
    name: str, group: str, base_rate: float, diabetic_rate: float | None = None
) -> AttributeSpec:
    rate = diabetic_rate if diabetic_rate is not None else base_rate
    return AttributeSpec(name, group, DType.STR, ("flag", base_rate, rate))


_YN = ("no", "yes")


def _personal() -> list[AttributeSpec]:
    g = "personal"
    return [
        _special("gender", g, "str"),
        _choice("education_level", g,
                ["primary", "secondary", "trade", "tertiary"],
                [0.15, 0.45, 0.2, 0.2]),
        _choice("occupation_type", g,
                ["farming", "trades", "professional", "service", "retired"],
                [0.15, 0.15, 0.15, 0.15, 0.4]),
        _choice("marital_status", g,
                ["married", "widowed", "divorced", "single"],
                [0.55, 0.2, 0.15, 0.1]),
        _choice("smoking_status", g, ["never", "former", "current"],
                [0.5, 0.35, 0.15], [0.4, 0.42, 0.18]),
        _choice("alcohol_use", g, ["none", "moderate", "heavy"],
                [0.3, 0.58, 0.12]),
        _special("family_history_diabetes", g, "str"),
        _flag("family_history_cvd", g, 0.3, 0.38),
        _flag("family_history_ht", g, 0.35, 0.42),
        _flag("indigenous_status", g, 0.04, 0.07),
        _choice("postcode_region", g,
                ["town", "rural", "remote"], [0.55, 0.35, 0.1]),
        _flag("lives_alone", g, 0.25),
        _flag("private_insurance", g, 0.45, 0.4),
        _flag("pension_status", g, 0.5, 0.55),
        _flag("driving_status", g, 0.85, 0.8),
        _flag("carer_required", g, 0.08, 0.13),
        _choice("language_at_home", g,
                ["english", "italian", "german", "other"],
                [0.88, 0.05, 0.03, 0.04]),
        _normal("years_in_region", g, 25, 15),
    ]


def _medical_condition() -> list[AttributeSpec]:
    g = "medical_condition"
    return [
        _special("age", g, "int"),
        _special("diabetes_status", g, "str"),
        _special("diabetes_type", g, "str"),
        _special("years_since_diabetes", g, "float"),
        _special("hypertension", g, "str"),
        _special("diagnostic_ht_years", g, "float"),
        _special("can_status", g, "str"),
        _flag("retinopathy", g, 0.03, 0.18),
        _flag("nephropathy", g, 0.02, 0.14),
        _flag("neuropathy_peripheral", g, 0.05, 0.25),
        _flag("dyslipidemia", g, 0.3, 0.55),
        _choice("obesity_class", g, ["none", "class1", "class2", "class3"],
                [0.6, 0.25, 0.1, 0.05], [0.35, 0.35, 0.2, 0.1]),
        _flag("cvd_history", g, 0.12, 0.25),
        _flag("stroke_history", g, 0.04, 0.08),
        _flag("depression", g, 0.15, 0.22),
        _special("arthritis", g, "str"),
        _flag("asthma", g, 0.1),
        _flag("copd", g, 0.07, 0.09),
        _flag("thyroid_disorder", g, 0.08),
        _flag("kidney_disease", g, 0.05, 0.15),
        _flag("liver_disease", g, 0.03, 0.07),
        _flag("cancer_history", g, 0.08),
        _flag("foot_ulcer_history", g, 0.01, 0.08),
        _flag("amputation_history", g, 0.002, 0.015),
        _flag("hospitalised_last_year", g, 0.1, 0.18),
        _normal("gp_visits_per_year", g, 5, 3, 3),
        _special("medication_count", g, "int"),
        _normal("falls_last_year", g, 0.3, 0.7, 0.3),
        _flag("hearing_impairment", g, 0.18, 0.22),
        _flag("vision_impairment", g, 0.12, 0.2),
    ]


def _fasting_bloods() -> list[AttributeSpec]:
    g = "fasting_bloods"
    return [
        _special("fbg", g, "float"),
        _special("hba1c", g, "float"),
        _normal("chol_total", g, 5.2, 0.9, 0.4),
        _normal("hdl", g, 1.4, 0.35, -0.15),
        _normal("ldl", g, 3.0, 0.8, 0.3),
        _normal("trig", g, 1.4, 0.6, 0.5),
        _normal("creatinine", g, 80, 18, 8),
        _normal("egfr", g, 80, 15, -7),
        _normal("urea", g, 6.0, 1.6, 0.7),
        _normal("uric_acid", g, 0.33, 0.07, 0.03),
        _normal("albumin", g, 42, 3.5, -1),
        _normal("total_protein", g, 72, 5, 0),
        _normal("bilirubin", g, 10, 4, 0),
        _normal("alt", g, 26, 10, 6),
        _normal("ast", g, 24, 8, 4),
        _normal("ggt", g, 30, 18, 10),
        _normal("alp", g, 75, 20, 5),
        _normal("sodium", g, 140, 2.2, 0),
        _normal("potassium", g, 4.2, 0.35, 0.1),
        _normal("chloride", g, 103, 2.5, 0),
        _normal("bicarbonate", g, 26, 2.2, 0),
        _normal("calcium", g, 2.35, 0.09, 0),
        _normal("phosphate", g, 1.1, 0.15, 0),
        _normal("magnesium", g, 0.85, 0.07, -0.03),
        _normal("iron", g, 17, 5, -1),
        _normal("ferritin", g, 120, 70, 25),
        _normal("transferrin", g, 2.6, 0.4, 0),
        _normal("b12", g, 350, 120, -20),
        _normal("folate", g, 20, 7, -1),
        _normal("vitamin_d", g, 65, 20, -6),
        _normal("tsh", g, 2.0, 0.9, 0.1),
        _normal("ft4", g, 15, 2.2, 0),
        _normal("insulin_level", g, 9, 4, 6),
        _normal("c_peptide", g, 0.8, 0.3, 0.3),
        _special("homa_ir", g, "float"),
        _normal("wbc", g, 6.5, 1.5, 0.6),
        _normal("rbc", g, 4.7, 0.4, 0),
        _normal("haemoglobin", g, 142, 12, -3),
        _normal("haematocrit", g, 0.42, 0.035, 0),
        _normal("platelets", g, 260, 55, 10),
        _normal("esr", g, 12, 8, 4),
        _normal("glucose_random", g, 6.2, 1.4, 2.2),
    ]


def _limb_health() -> list[AttributeSpec]:
    g = "limb_health"
    return [
        _special("reflex_knee_left", g, "str"),
        _special("reflex_knee_right", g, "str"),
        _special("reflex_ankle_left", g, "str"),
        _special("reflex_ankle_right", g, "str"),
        _flag("monofilament_left", g, 0.06, 0.22),
        _flag("monofilament_right", g, 0.06, 0.22),
        _normal("vibration_left", g, 7.0, 1.2, -1.5),
        _normal("vibration_right", g, 7.0, 1.2, -1.5),
        _choice("pedal_pulse_left", g, ["present", "weak", "absent"],
                [0.85, 0.12, 0.03], [0.7, 0.22, 0.08]),
        _choice("pedal_pulse_right", g, ["present", "weak", "absent"],
                [0.85, 0.12, 0.03], [0.7, 0.22, 0.08]),
        _normal("foot_temperature_left", g, 30.5, 1.4, 0.4),
        _normal("foot_temperature_right", g, 30.5, 1.4, 0.4),
        _normal("toe_pressure_left", g, 105, 22, -14),
        _normal("toe_pressure_right", g, 105, 22, -14),
        _normal("abi_left", g, 1.08, 0.12, -0.08),
        _normal("abi_right", g, 1.08, 0.12, -0.08),
        _flag("foot_deformity", g, 0.1, 0.2),
        _choice("skin_condition", g, ["normal", "dry", "broken"],
                [0.7, 0.25, 0.05], [0.5, 0.38, 0.12]),
        _choice("nail_condition", g, ["normal", "thickened", "ingrown"],
                [0.7, 0.22, 0.08], [0.55, 0.33, 0.12]),
        _flag("callus_present", g, 0.25, 0.35),
        _normal("sensation_score", g, 9.0, 1.0, -1.8),
        _normal("gait_score", g, 8.5, 1.2, -1.0),
        _normal("balance_score", g, 8.0, 1.5, -1.2),
        _special("grip_strength_left", g, "float"),
        _special("grip_strength_right", g, "float"),
        _flag("tremor_present", g, 0.06, 0.09),
    ]


def _exercise() -> list[AttributeSpec]:
    g = "exercise"
    return [
        _choice("exercise_frequency", g,
                ["none", "1-2/week", "3-4/week", "daily"],
                [0.25, 0.3, 0.25, 0.2], [0.38, 0.32, 0.18, 0.12]),
        _normal("exercise_minutes_week", g, 150, 90, -50),
        _choice("exercise_intensity", g, ["light", "moderate", "vigorous"],
                [0.45, 0.45, 0.1], [0.6, 0.35, 0.05]),
        _normal("walking_minutes_day", g, 30, 18, -8),
        _normal("sitting_hours_day", g, 6.5, 2.0, 1.0),
        _flag("sport_participation", g, 0.2, 0.1),
        _flag("gym_member", g, 0.15, 0.1),
        _flag("physical_job", g, 0.2, 0.15),
        _flag("mobility_aid", g, 0.08, 0.15),
        _choice("exercise_tolerance", g, ["good", "fair", "poor"],
                [0.6, 0.3, 0.1], [0.4, 0.4, 0.2]),
        _normal("flights_stairs_daily", g, 3, 2, -1),
        _normal("falls_risk_score", g, 2.0, 1.2, 0.8),
    ]


def _blood_pressure() -> list[AttributeSpec]:
    g = "blood_pressure"
    return [
        _special("lying_sbp_avg", g, "float"),
        _special("lying_dbp_avg", g, "float"),
        _special("standing_sbp_1min", g, "float"),
        _special("standing_dbp_1min", g, "float"),
        _normal("standing_sbp_3min", g, 128, 14, 6),
        _normal("standing_dbp_3min", g, 78, 9, 3),
        _special("postural_drop_sbp", g, "float"),
        _normal("postural_drop_dbp", g, 3, 3, 2),
        _normal("sitting_sbp", g, 130, 15, 7),
        _normal("sitting_dbp", g, 80, 9, 3),
        _special("pulse_pressure", g, "float"),
        _special("map_lying", g, "float"),
        _special("heart_rate_lying", g, "float"),
        _special("heart_rate_standing", g, "float"),
        _special("bp_medication", g, "str"),
        _normal("ambulatory_sbp_day", g, 132, 13, 6),
        _normal("ambulatory_dbp_day", g, 81, 8, 3),
        _normal("ambulatory_sbp_night", g, 118, 13, 7),
        _normal("ambulatory_dbp_night", g, 70, 8, 3),
        _flag("white_coat_effect", g, 0.15),
    ]


def _ecg() -> list[AttributeSpec]:
    g = "ecg"
    return [
        _normal("heart_rate_ecg", g, 70, 10, 5),
        _normal("pr_interval", g, 160, 20, 4),
        _normal("qrs_duration", g, 92, 10, 2),
        _normal("qt_interval", g, 390, 25, 6),
        _normal("qtc", g, 415, 22, 9),
        _normal("p_wave_duration", g, 105, 12, 2),
        _special("rr_mean", g, "float"),
        _special("sdnn", g, "float"),
        _special("rmssd", g, "float"),
        _normal("pnn50", g, 12, 8, -5),
        _normal("lf_power", g, 550, 250, -170),
        _normal("hf_power", g, 350, 180, -130),
        _normal("lf_hf_ratio", g, 1.7, 0.7, 0.4),
        _normal("total_power", g, 1800, 700, -450),
        _normal("vlf_power", g, 800, 320, -150),
        _normal("sd1", g, 22, 9, -7),
        _normal("sd2", g, 55, 18, -12),
        _normal("sample_entropy", g, 1.6, 0.4, -0.25),
        _normal("approx_entropy", g, 1.1, 0.25, -0.15),
        _normal("dfa_alpha1", g, 1.05, 0.2, -0.1),
        _normal("dfa_alpha2", g, 0.95, 0.15, -0.03),
        _special("ewing_hr_deep_breathing", g, "float"),
        _special("ewing_valsalva_ratio", g, "float"),
        _special("ewing_30_15_ratio", g, "float"),
        _special("ewing_handgrip_dbp_rise", g, "float"),
        _special("ewing_postural_sbp_drop", g, "float"),
        _special("ewing_score", g, "float"),
        _flag("st_depression", g, 0.06, 0.12),
        _flag("t_wave_abnormal", g, 0.08, 0.15),
        _normal("qrs_axis", g, 30, 25, 0),
        _flag("af_present", g, 0.04, 0.07),
        _normal("ectopic_beats", g, 3, 4, 2),
        _flag("bundle_branch_block", g, 0.04, 0.06),
        _flag("lvh_voltage", g, 0.07, 0.12),
        _flag("ecg_abnormal", g, 0.15, 0.28),
    ]


def _medications() -> list[AttributeSpec]:
    g = "medications"
    return [
        _special("med_metformin", g, "str"),
        _special("med_insulin", g, "str"),
        _flag("med_sulfonylurea", g, 0.01, 0.2),
        _flag("med_dpp4", g, 0.005, 0.12),
        _flag("med_statin", g, 0.25, 0.55),
        _flag("med_ace_inhibitor", g, 0.2, 0.4),
        _flag("med_arb", g, 0.12, 0.2),
        _flag("med_beta_blocker", g, 0.12, 0.18),
        _flag("med_ccb", g, 0.12, 0.2),
        _flag("med_diuretic", g, 0.12, 0.18),
        _flag("med_aspirin", g, 0.2, 0.35),
        _flag("med_anticoagulant", g, 0.06, 0.1),
        _flag("med_antidepressant", g, 0.12, 0.18),
        _flag("med_nsaid", g, 0.15, 0.15),
        _flag("med_opioid", g, 0.05, 0.07),
        _flag("med_ppi", g, 0.2, 0.25),
        _flag("med_thyroxine", g, 0.07, 0.08),
        _flag("med_bronchodilator", g, 0.08, 0.09),
        _flag("med_vitamin_supp", g, 0.3, 0.35),
        _flag("med_fish_oil", g, 0.2, 0.22),
        _flag("med_allopurinol", g, 0.04, 0.08),
        _special("med_insulin_units", g, "float"),
        _normal("med_adherence_score", g, 8.0, 1.5, -0.5),
        _normal("med_changes_last_year", g, 0.8, 1.0, 0.6),
        _normal("otc_medication_count", g, 1.5, 1.2, 0.3),
    ]


def _inflammatory() -> list[AttributeSpec]:
    g = "inflammatory_markers"
    return [
        _normal("crp", g, 3.0, 2.2, 1.8),
        _normal("hs_crp", g, 2.0, 1.5, 1.3),
        _normal("il6", g, 2.5, 1.4, 1.2),
        _normal("il1b", g, 0.8, 0.4, 0.25),
        _normal("il10", g, 4.0, 1.8, -0.8),
        _normal("tnf_alpha", g, 7.0, 3.0, 2.5),
        _normal("fibrinogen", g, 3.2, 0.7, 0.4),
        _normal("d_dimer", g, 0.35, 0.2, 0.1),
        _normal("homocysteine", g, 11, 3.5, 1.5),
        _normal("adiponectin", g, 9, 3.5, -2.5),
        _normal("leptin", g, 12, 7, 6),
        _normal("resistin", g, 10, 3.5, 2),
        _normal("icam1", g, 230, 60, 45),
        _normal("vcam1", g, 520, 130, 90),
        _normal("e_selectin", g, 42, 15, 12),
        _normal("p_selectin", g, 120, 35, 20),
        _normal("mpo", g, 320, 110, 60),
        _normal("nt_probnp", g, 110, 80, 45),
        _normal("troponin", g, 6, 4, 2),
        _normal("serum_amyloid_a", g, 4.5, 2.5, 1.8),
    ]


def _oxidative() -> list[AttributeSpec]:
    g = "oxidative_markers"
    return [
        _normal("mda", g, 1.5, 0.5, 0.5),
        _normal("ohdg_8", g, 4.2, 1.5, 1.2),
        _normal("protein_carbonyls", g, 0.8, 0.3, 0.25),
        _normal("gsh", g, 900, 180, -140),
        _normal("gssg", g, 45, 14, 9),
        _normal("gsh_gssg_ratio", g, 20, 6, -5),
        _normal("sod_activity", g, 165, 35, -22),
        _normal("catalase_activity", g, 95, 22, -12),
        _normal("gpx_activity", g, 48, 11, -7),
        _normal("total_antioxidant_capacity", g, 1.35, 0.25, -0.15),
        _normal("f2_isoprostanes", g, 250, 80, 60),
        _normal("nitrotyrosine", g, 25, 9, 6),
        _normal("oxldl", g, 55, 16, 12),
        _normal("paraoxonase", g, 120, 40, -22),
        _normal("thiol_groups", g, 420, 80, -50),
        _normal("ceruloplasmin", g, 300, 60, 25),
        _normal("uric_acid_ratio", g, 1.0, 0.25, 0.1),
        _normal("vitamin_e_level", g, 28, 7, -3),
        _normal("vitamin_c_level", g, 55, 17, -8),
        _normal("coq10_level", g, 0.9, 0.3, -0.12),
    ]


def _anthropometry() -> list[AttributeSpec]:
    g = "anthropometry"
    return [
        _special("height", g, "float"),
        _special("weight", g, "float"),
        _special("bmi", g, "float"),
        _special("waist_circumference", g, "float"),
        _normal("hip_circumference", g, 103, 9, 5),
        _special("waist_hip_ratio", g, "float"),
        _normal("body_fat_percent", g, 30, 7, 5),
        _normal("lean_mass", g, 50, 9, -1),
        _normal("neck_circumference", g, 37, 3.5, 1.5),
        _normal("mid_arm_circumference", g, 30, 3.5, 1.5),
        _normal("calf_circumference", g, 36, 3.2, 0.5),
        _normal("skinfold_triceps", g, 18, 6, 3),
        _normal("skinfold_subscapular", g, 17, 6, 4),
        _normal("bioimpedance", g, 520, 70, -20),
        _normal("weight_change_year", g, 0.0, 2.5, 0.8),
    ]


def _lifestyle_diet() -> list[AttributeSpec]:
    g = "lifestyle_diet"
    return [
        _normal("diet_quality_score", g, 7.0, 1.6, -1.0),
        _normal("fruit_serves_day", g, 1.8, 0.9, -0.3),
        _normal("vegetable_serves_day", g, 3.2, 1.3, -0.4),
        _normal("takeaway_meals_week", g, 1.2, 1.1, 0.6),
        _normal("sugary_drinks_week", g, 2.0, 2.2, 1.4),
        _flag("salt_added", g, 0.35, 0.4),
        _normal("coffee_cups_day", g, 2.0, 1.3, 0),
        _normal("sleep_hours", g, 7.0, 1.1, -0.4),
        _normal("sleep_quality_score", g, 7.0, 1.6, -0.8),
        _normal("stress_score", g, 4.0, 2.0, 1.0),
    ]


#: Dimension-group order used by the Fig 3 star schema.
ATTRIBUTE_GROUPS = (
    "personal",
    "medical_condition",
    "fasting_bloods",
    "limb_health",
    "exercise",
    "blood_pressure",
    "ecg",
    "medications",
    "inflammatory_markers",
    "oxidative_markers",
    "anthropometry",
    "lifestyle_diet",
)


def catalog() -> list[AttributeSpec]:
    """The full 273-attribute catalogue, grouped in schema order."""
    specs = (
        _personal()
        + _medical_condition()
        + _fasting_bloods()
        + _limb_health()
        + _exercise()
        + _blood_pressure()
        + _ecg()
        + _medications()
        + _inflammatory()
        + _oxidative()
        + _anthropometry()
        + _lifestyle_diet()
    )
    return specs


def specs_by_group() -> dict[str, list[AttributeSpec]]:
    """Catalogue split by dimension group, in group order."""
    grouped: dict[str, list[AttributeSpec]] = {g: [] for g in ATTRIBUTE_GROUPS}
    for spec in catalog():
        grouped[spec.group].append(spec)
    return grouped
