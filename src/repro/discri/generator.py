"""The DiScRi cohort simulator.

Generates a wide visit-level table — one row per attendance, 273 clinical
attributes plus the keys (``patient_id``, ``visit_id``, ``visit_date``) —
matching the paper's reported scale ("2500 attendances of nearly 900
patients") and planting the phenomena of :mod:`repro.discri.phenomena`.

Everything is driven by one seeded :class:`random.Random`, so a given
(seed, size) pair always yields the identical cohort.
"""

from __future__ import annotations

import datetime as _dt
import random
from dataclasses import dataclass

from repro.discri.attributes import AttributeSpec, catalog
from repro.discri.phenomena import DISEASE_PROFILES, PhenomenaConfig, profile_config
from repro.discri.schemes import AGE_BAND_5_SCHEME
from repro.tabular.dtypes import DType
from repro.tabular.table import Table

_STAGES = ("normal", "preDiabetic", "Diabetic")

#: sampling bounds for years-since-diagnosis within each Fig 6 category
_HT_CATEGORY_RANGES = {
    "<2": (0.1, 2.0),
    "2-5": (2.0, 5.0),
    "5-10": (5.0, 10.0),
    "10-20": (10.0, 20.0),
    ">=20": (20.0, 32.0),
}

#: number-of-visits distribution; mean ≈ 2.8 so 900 patients ≈ 2500 visits
_VISIT_COUNT_WEIGHTS = ((1, 0.24), (2, 0.25), (3, 0.20), (4, 0.15),
                        (5, 0.10), (6, 0.06))


@dataclass
class _PatientState:
    patient_id: int
    gender: str
    age_first_visit: float
    family_history: bool
    develops_diabetes: bool
    stage: str
    years_since_diabetes: float
    hypertensive: bool
    ht_years_at_first: float
    arthritis: bool
    height: float
    bmi_base: float


class DiScRiGenerator:
    """Seeded simulator for the DiScRi screening cohort."""

    def __init__(
        self,
        n_patients: int = 900,
        seed: int = 42,
        config: PhenomenaConfig | None = None,
        missing_rate: float = 0.02,
        erroneous_rate: float = 0.002,
        profile: str = "discri",
    ):
        if n_patients < 1:
            raise ValueError("n_patients must be >= 1")
        if profile not in DISEASE_PROFILES:
            raise ValueError(
                f"unknown disease profile {profile!r} "
                f"(registered: {', '.join(DISEASE_PROFILES)})"
            )
        self.n_patients = n_patients
        self.seed = seed
        self.profile = profile
        # an explicit config wins; otherwise the profile picks the planted
        # effects ("discri" is byte-identical to PhenomenaConfig())
        self.config = config or profile_config(profile)
        self.config.validate()
        self.missing_rate = missing_rate
        self.erroneous_rate = erroneous_rate
        self.specs: list[AttributeSpec] = catalog()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def generate(self) -> Table:
        """Simulate the cohort; returns the wide visit-level table."""
        rng = random.Random(self.seed)
        rows: list[dict[str, object]] = []
        visit_id = 0
        for patient_id in range(1, self.n_patients + 1):
            state = self._new_patient(rng, patient_id)
            n_visits = self._draw_visit_count(rng)
            visit_date = _dt.date(2002, 1, 1) + _dt.timedelta(
                days=rng.randint(0, 8 * 365)
            )
            years_elapsed = 0.0
            for __ in range(n_visits):
                visit_id += 1
                row = self._visit_row(rng, state, visit_id, visit_date,
                                      years_elapsed)
                rows.append(row)
                gap_days = rng.randint(270, 540)
                visit_date = visit_date + _dt.timedelta(days=gap_days)
                years_elapsed += gap_days / 365.25
                self._progress(rng, state, gap_days / 365.25)
        schema: dict[str, DType | str] = {
            "patient_id": DType.INT,
            "visit_id": DType.INT,
            "visit_date": DType.DATE,
        }
        for spec in self.specs:
            schema[spec.name] = spec.dtype
        schema["develops_diabetes"] = DType.STR
        return Table.from_rows(rows, schema=schema)

    # ------------------------------------------------------------------
    # Patient-level simulation
    # ------------------------------------------------------------------

    def _new_patient(self, rng: random.Random, patient_id: int) -> _PatientState:
        gender = "F" if rng.random() < 0.55 else "M"
        age = min(max(rng.gauss(62, 13), 22), 94)
        # Key prevalence at the expected mid-follow-up age so the planted
        # band pattern survives patients ageing across band edges between
        # attendances.
        band = AGE_BAND_5_SCHEME.assign(age + 2)
        family_history = rng.random() < self.config.family_history_rate
        prevalence = self.config.diabetes_prevalence[(band, gender)]
        if family_history:
            odds = prevalence / (1 - prevalence)
            odds *= self.config.family_history_odds_multiplier
            prevalence = odds / (1 + odds)
        develops = rng.random() < prevalence
        if develops:
            stage = "Diabetic" if rng.random() < 0.75 else "preDiabetic"
        else:
            stage = "preDiabetic" if rng.random() < 0.18 else "normal"
        years_since_diabetes = (
            rng.uniform(0.5, 12.0) if stage == "Diabetic" else 0.0
        )
        ht_probability = min(
            self.config.ht_base_rate
            + self.config.ht_age_slope * max(age - 40, 0),
            0.85,
        )
        hypertensive = rng.random() < ht_probability
        ht_years = self._draw_ht_years(rng, band) if hypertensive else 0.0
        arthritis_probability = min(0.12 + 0.009 * max(age - 50, 0), 0.6)
        arthritis = rng.random() < arthritis_probability
        height = rng.gauss(163 if gender == "F" else 176, 6.5)
        bmi_base = max(rng.gauss(27.5, 4.2) + (2.5 if develops else 0.0), 16.5)
        return _PatientState(
            patient_id=patient_id,
            gender=gender,
            age_first_visit=age,
            family_history=family_history,
            develops_diabetes=develops,
            stage=stage,
            years_since_diabetes=years_since_diabetes,
            hypertensive=hypertensive,
            ht_years_at_first=ht_years,
            arthritis=arthritis,
            height=height,
            bmi_base=bmi_base,
        )

    def _draw_ht_years(self, rng: random.Random, band: str) -> float:
        """Draw years-since-HT-diagnosis so the *recorded* values land in the
        intended Fig 6 category.

        Recorded values grow by the time elapsed since the first visit
        (~1.5 years at mid-follow-up), so the draw is shifted back by that
        expectation; in bands where the 5–10 share is planted low the
        neighbouring categories sample away from the 5/10 borders, otherwise
        drift would leak 2–5 and 10–20 draws into the dip.
        """
        mix = self.config.ht_years_mix[band]
        categories = list(mix)
        weights = [mix[c] for c in categories]
        category = rng.choices(categories, weights=weights, k=1)[0]
        ranges = dict(_HT_CATEGORY_RANGES)
        if mix["5-10"] <= 0.15:
            ranges["2-5"] = (2.0, 4.0)
            ranges["5-10"] = (5.8, 9.2)
            ranges["10-20"] = (11.5, 20.0)
        low, high = ranges[category]
        return max(rng.uniform(low, high) - 1.5, 0.05)

    @staticmethod
    def _draw_visit_count(rng: random.Random) -> int:
        counts = [c for c, __ in _VISIT_COUNT_WEIGHTS]
        weights = [w for __, w in _VISIT_COUNT_WEIGHTS]
        return rng.choices(counts, weights=weights, k=1)[0]

    def _progress(self, rng: random.Random, state: _PatientState,
                  years: float) -> None:
        if state.stage == "Diabetic":
            state.years_since_diabetes += years
            return
        if state.stage == "preDiabetic" and state.develops_diabetes:
            if rng.random() < min(
                self.config.progression_pre_to_diabetic * years, 0.9
            ):
                state.stage = "Diabetic"
                state.years_since_diabetes = years / 2
            return
        if state.stage == "normal" and state.develops_diabetes:
            if rng.random() < min(
                self.config.progression_normal_to_pre * years * 3, 0.9
            ):
                state.stage = "preDiabetic"

    # ------------------------------------------------------------------
    # Visit-level simulation
    # ------------------------------------------------------------------

    def _visit_row(
        self,
        rng: random.Random,
        state: _PatientState,
        visit_id: int,
        visit_date: _dt.date,
        years_elapsed: float,
    ) -> dict[str, object]:
        age = state.age_first_visit + years_elapsed
        diabetic_now = state.stage == "Diabetic"
        row: dict[str, object] = {
            "patient_id": state.patient_id,
            "visit_id": visit_id,
            "visit_date": visit_date,
            "develops_diabetes": "yes" if state.develops_diabetes else "no",
        }
        special = self._special_values(rng, state, age)
        for spec in self.specs:
            if spec.is_special():
                row[spec.name] = special[spec.name]
            else:
                row[spec.name] = self._generic_value(rng, spec, diabetic_now)
        return row

    def _generic_value(
        self, rng: random.Random, spec: AttributeSpec, diabetic: bool
    ) -> object:
        if rng.random() < self.missing_rate:
            return None
        kind = spec.sampler[0]
        if kind == "normal":
            __, mean, sd, shift = spec.sampler
            value = rng.gauss(mean + (shift if diabetic else 0.0), sd)
            if rng.random() < self.erroneous_rate:
                value *= rng.choice((8.0, -1.0))  # plant an implausible value
            return round(value, 3)
        if kind == "choice":
            __, values, weights, diabetic_weights = spec.sampler
            use = diabetic_weights if (diabetic and diabetic_weights) else weights
            return rng.choices(values, weights=use, k=1)[0]
        if kind == "flag":
            __, base, diabetic_rate = spec.sampler
            rate = diabetic_rate if diabetic else base
            return "yes" if rng.random() < rate else "no"
        raise ValueError(f"unknown sampler {kind!r} for {spec.name!r}")

    def _special_values(
        self, rng: random.Random, state: _PatientState, age: float
    ) -> dict[str, object]:
        config = self.config
        stage = state.stage
        diabetic = stage == "Diabetic"

        # glycaemia
        if stage == "normal":
            fbg = max(rng.gauss(5.0, 0.40), 3.6)
        elif stage == "preDiabetic":
            fbg = rng.gauss(6.25, 0.45)
        else:
            fbg = max(rng.gauss(8.2, 1.2), 6.6)
        hba1c = max(4.5 + 0.52 * fbg + rng.gauss(0, 0.35), 4.3)
        insulin = max(rng.gauss(9 + (6 if diabetic else 0), 4), 2.0)
        homa_ir = fbg * insulin / 22.5

        # reflexes: the X1 interaction
        if stage == "preDiabetic":
            key = (
                "preDiabetic_developer"
                if state.develops_diabetes
                else "preDiabetic_stable"
            )
        else:
            key = stage
        absent_rate = config.reflex_absent_rate[key]

        def reflex() -> str:
            if rng.random() < absent_rate:
                return "absent"
            return "reduced" if rng.random() < 0.15 else "present"

        # CAN + Ewing battery
        can = rng.random() < config.can_rate[
            "Diabetic" if diabetic else ("preDiabetic" if stage == "preDiabetic" else "normal")
        ]
        age_decline = max(age - 40, 0) * 0.12
        if can:
            ewing_db = max(rng.gauss(6, 3), 0.5)
            ewing_valsalva = max(rng.gauss(1.12, 0.10), 1.0)
            ewing_3015 = max(rng.gauss(1.01, 0.05), 0.9)
            ewing_handgrip = max(rng.gauss(8, 4), 0.0)
            ewing_postural = max(rng.gauss(24, 8), 0.0)
        else:
            ewing_db = max(rng.gauss(19 - age_decline * 0.6, 5), 1.0)
            ewing_valsalva = max(rng.gauss(1.65, 0.22), 1.0)
            ewing_3015 = max(rng.gauss(1.22, 0.12), 0.9)
            ewing_handgrip = max(rng.gauss(17, 5), 0.0)
            ewing_postural = max(rng.gauss(6, 5), 0.0)
        abnormal = sum(
            (
                ewing_db < 10,
                ewing_valsalva < 1.2,
                ewing_3015 < 1.04,
                ewing_handgrip < 10,
                ewing_postural > 20,
            )
        )
        # hand-grip missingness (X2): arthritis and old age preclude the test
        handgrip_missing_probability = config.handgrip_missing_base
        if state.arthritis:
            handgrip_missing_probability = config.handgrip_missing_arthritis
        elif age >= 75:
            handgrip_missing_probability = config.handgrip_missing_over75
        handgrip_value: float | None = round(ewing_handgrip, 2)
        if rng.random() < handgrip_missing_probability:
            handgrip_value = None

        # blood pressure
        sbp = rng.gauss(124, 11) + (16 if state.hypertensive else 0)
        dbp = rng.gauss(76, 8) + (9 if state.hypertensive else 0)
        bp_treated = state.hypertensive and rng.random() < 0.7
        if bp_treated:
            sbp -= 8
            dbp -= 4
        standing_sbp = sbp - ewing_postural + rng.gauss(0, 3)
        standing_dbp = dbp - rng.gauss(2, 3)
        hr_lying = rng.gauss(68 + (5 if diabetic else 0), 9)
        hr_standing = hr_lying + rng.gauss(8, 4)

        # HRV
        sdnn = max(rng.gauss(22 if can else 45, 8 if can else 12), 4.0)
        rmssd = max(rng.gauss(14 if can else 32, 6 if can else 11), 3.0)
        rr_mean = 60000.0 / max(hr_lying, 35)

        # anthropometry
        bmi = max(state.bmi_base + rng.gauss(0, 0.7) + 0.05 * years_gain(age, state), 16.0)
        weight = bmi * (state.height / 100) ** 2
        waist = (
            88 if state.gender == "F" else 96
        ) + (bmi - 27) * 2.2 + rng.gauss(0, 4)
        hip = 103 + (bmi - 27) * 1.8 + rng.gauss(0, 4)
        whr = waist / max(hip, 1)

        # grip strength (kg): gender/age; arthritis penalty
        grip_base = (24 if state.gender == "F" else 40) - max(age - 50, 0) * 0.25
        if state.arthritis:
            grip_base -= 6
        grip_left = max(rng.gauss(grip_base, 5), 2.0)
        grip_right = max(grip_left + rng.gauss(1.5, 2.0), 2.0)

        # medications
        med_insulin = diabetic and (
            state.years_since_diabetes > 6 and rng.random() < 0.45
        )
        med_metformin = diabetic and rng.random() < (0.5 if med_insulin else 0.75)
        medication_count = max(
            int(rng.gauss(3 + (2.5 if diabetic else 0) + (1 if state.hypertensive else 0), 1.5)),
            0,
        )

        return {
            "gender": state.gender,
            "family_history_diabetes": "yes" if state.family_history else "no",
            "age": int(age),
            "diabetes_status": "yes" if diabetic else "no",
            "diabetes_type": ("type2" if rng.random() < 0.92 else "type1") if diabetic else "none",
            "years_since_diabetes": round(state.years_since_diabetes, 2) if diabetic else 0.0,
            "hypertension": "yes" if state.hypertensive else "no",
            "diagnostic_ht_years": (
                round(state.ht_years_at_first + years_gain(age, state), 2)
                if state.hypertensive
                else None
            ),
            "can_status": "yes" if can else "no",
            "arthritis": "yes" if state.arthritis else "no",
            "medication_count": medication_count,
            "fbg": round(fbg, 2),
            "hba1c": round(hba1c, 2),
            "homa_ir": round(homa_ir, 2),
            "reflex_knee_left": reflex(),
            "reflex_knee_right": reflex(),
            "reflex_ankle_left": reflex(),
            "reflex_ankle_right": reflex(),
            "grip_strength_left": round(grip_left, 1),
            "grip_strength_right": round(grip_right, 1),
            "lying_sbp_avg": round(sbp, 1),
            "lying_dbp_avg": round(dbp, 1),
            "standing_sbp_1min": round(standing_sbp, 1),
            "standing_dbp_1min": round(standing_dbp, 1),
            "postural_drop_sbp": round(sbp - standing_sbp, 1),
            "pulse_pressure": round(sbp - dbp, 1),
            "map_lying": round(dbp + (sbp - dbp) / 3, 1),
            "heart_rate_lying": round(hr_lying, 1),
            "heart_rate_standing": round(hr_standing, 1),
            "bp_medication": "yes" if bp_treated else "no",
            "rr_mean": round(rr_mean, 1),
            "sdnn": round(sdnn, 1),
            "rmssd": round(rmssd, 1),
            "ewing_hr_deep_breathing": round(ewing_db, 2),
            "ewing_valsalva_ratio": round(ewing_valsalva, 3),
            "ewing_30_15_ratio": round(ewing_3015, 3),
            "ewing_handgrip_dbp_rise": handgrip_value,
            "ewing_postural_sbp_drop": round(ewing_postural, 2),
            "ewing_score": round(abnormal / 5.0, 2),
            "med_metformin": "yes" if med_metformin else "no",
            "med_insulin": "yes" if med_insulin else "no",
            "med_insulin_units": round(rng.gauss(38, 12), 1) if med_insulin else 0.0,
            "height": round(state.height, 1),
            "weight": round(weight, 1),
            "bmi": round(bmi, 1),
            "waist_circumference": round(waist, 1),
            "waist_hip_ratio": round(whr, 3),
        }


def years_gain(age: float, state: _PatientState) -> float:
    """Years elapsed since the patient's first visit."""
    return max(age - state.age_first_visit, 0.0)


def offset_identifiers(
    table: Table, patient_offset: int, visit_offset: int
) -> Table:
    """Shift patient and visit ids by fixed offsets.

    Lets a second simulated cohort be ingested into an existing system as
    a fresh intake batch without id collisions (see
    :meth:`repro.dgms.system.DDDGMS.ingest_visits`).
    """
    shifted = table.with_column(
        "patient_id",
        [pid + patient_offset for pid in table.column("patient_id").to_list()],
        dtype="int",
    )
    return shifted.with_column(
        "visit_id",
        [vid + visit_offset for vid in table.column("visit_id").to_list()],
        dtype="int",
    )
