"""Planted-effect parameters for the synthetic DiScRi cohort.

Every figure of the paper's trial is a distribution shape over the cohort;
this module centralises the knobs that plant those shapes so benches and
tests can reference (and ablate) them explicitly.

Shapes planted:

* **Fig 5** — diabetes prevalence by (5-year age band, gender):
  prevalence rises into the 70s; males dominate 70–75 while females are
  the majority in 75–80; the female rate then falls sharply past ~78
  (encoded in the 80+ bands) while the male rate stays roughly level.
* **Fig 6** — years-since-hypertension-diagnosis mix per age band, with a
  depressed 5–10-year share inside 70–75 and 75–80.
* **§II narrative** — absent knee/ankle reflexes combined with a
  *mid-range* FBG (the 5.5–7 bands) is strongly predictive of diabetes on
  the next assessment: reflexes are generated to degrade at a pre-diabetic
  stage already.
* **§V.C narrative** — Ewing hand-grip is frequently missing for elderly
  patients (arthritis), and the remaining Ewing measures correlate with
  CAN status so substitutes exist to be found.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_diabetes_prevalence() -> dict[tuple[str, str], float]:
    # (age_band5, gender) -> probability of (eventual) diabetes.
    # Bands follow repro.discri.schemes.AGE_BAND_5_SCHEME labels.
    return {
        ("<40", "F"): 0.06, ("<40", "M"): 0.06,
        ("40-45", "F"): 0.08, ("40-45", "M"): 0.09,
        ("45-50", "F"): 0.10, ("45-50", "M"): 0.12,
        ("50-55", "F"): 0.14, ("50-55", "M"): 0.16,
        ("55-60", "F"): 0.18, ("55-60", "M"): 0.21,
        ("60-65", "F"): 0.24, ("60-65", "M"): 0.27,
        ("65-70", "F"): 0.28, ("65-70", "M"): 0.32,
        # Fig 5: males dominate 70-75 ...
        ("70-75", "F"): 0.16, ("70-75", "M"): 0.52,
        # ... females the majority in 75-80 ...
        ("75-80", "F"): 0.48, ("75-80", "M"): 0.20,
        # ... and the female share collapses past ~78/80.
        ("80-85", "F"): 0.09, ("80-85", "M"): 0.32,
        ("85-90", "F"): 0.06, ("85-90", "M"): 0.30,
        (">=90", "F"): 0.05, (">=90", "M"): 0.28,
    }


def _default_ht_years_mix() -> dict[str, dict[str, float]]:
    # age_band5 -> probability mass over HT_YEARS_SCHEME labels.
    base = {"<2": 0.18, "2-5": 0.27, "5-10": 0.27, "10-20": 0.20, ">=20": 0.08}
    older = {"<2": 0.12, "2-5": 0.22, "5-10": 0.26, "10-20": 0.27, ">=20": 0.13}
    dipped = {"<2": 0.22, "2-5": 0.30, "5-10": 0.08, "10-20": 0.27, ">=20": 0.13}
    return {
        "<40": base, "40-45": base, "45-50": base, "50-55": base,
        "55-60": base, "60-65": older, "65-70": older,
        # Fig 6: the 5-10y category drops sharply inside 70-75 and 75-80
        "70-75": dipped, "75-80": dipped,
        "80-85": older, "85-90": older, ">=90": older,
    }


@dataclass
class PhenomenaConfig:
    """All planted-effect knobs with the paper-faithful defaults."""

    #: (age_band5, gender) -> diabetes probability (Fig 5 shape)
    diabetes_prevalence: dict[tuple[str, str], float] = field(
        default_factory=_default_diabetes_prevalence
    )
    #: age_band5 -> HT-duration category mix (Fig 6 shape)
    ht_years_mix: dict[str, dict[str, float]] = field(
        default_factory=_default_ht_years_mix
    )
    #: hypertension prevalence grows with age: base + slope*(age-40), clipped
    ht_base_rate: float = 0.15
    ht_age_slope: float = 0.011

    #: probability an ankle/knee reflex is absent, keyed by glycaemic stage
    #: with pre-diabetics split by whether they go on to develop diabetes —
    #: reflexes degrading already at the pre-diabetic stage *of developers*
    #: is what makes reflex+mid-range-glucose unexpectedly predictive of
    #: diabetes (§II narrative)
    reflex_absent_rate: dict[str, float] = field(
        default_factory=lambda: {
            "normal": 0.05,
            "preDiabetic_developer": 0.50,
            "preDiabetic_stable": 0.12,
            "Diabetic": 0.55,
        }
    )

    #: CAN (cardiac autonomic neuropathy) probability by stage
    can_rate: dict[str, float] = field(
        default_factory=lambda: {
            "normal": 0.04, "preDiabetic": 0.12, "Diabetic": 0.33,
        }
    )
    #: hand-grip (Ewing) missingness: base, plus arthritis/elderly penalty
    handgrip_missing_base: float = 0.05
    handgrip_missing_arthritis: float = 0.85
    handgrip_missing_over75: float = 0.45

    #: family history of diabetes raises diabetes odds by this factor
    family_history_rate: float = 0.28
    family_history_odds_multiplier: float = 1.9

    #: annual probability a pre-diabetic progresses to diabetic, and a
    #: normoglycaemic to pre-diabetic, between attendances
    progression_pre_to_diabetic: float = 0.16
    progression_normal_to_pre: float = 0.08

    def validate(self) -> None:
        """Check all probabilities are in range."""
        def check(name: str, p: float) -> None:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} = {p} is not a probability")

        for key, p in self.diabetes_prevalence.items():
            check(f"diabetes_prevalence[{key}]", p)
        for band, mix in self.ht_years_mix.items():
            total = sum(mix.values())
            if abs(total - 1.0) > 1e-6:
                raise ValueError(
                    f"ht_years_mix[{band!r}] sums to {total}, expected 1"
                )
        for stage, p in self.reflex_absent_rate.items():
            check(f"reflex_absent_rate[{stage}]", p)
        for stage, p in self.can_rate.items():
            check(f"can_rate[{stage}]", p)
        check("handgrip_missing_base", self.handgrip_missing_base)
        check("handgrip_missing_arthritis", self.handgrip_missing_arthritis)
        check("handgrip_missing_over75", self.handgrip_missing_over75)
        check("family_history_rate", self.family_history_rate)
        check("progression_pre_to_diabetic", self.progression_pre_to_diabetic)
        check("progression_normal_to_pre", self.progression_normal_to_pre)


# ---------------------------------------------------------------------------
# Disease profiles
# ---------------------------------------------------------------------------
#
# The scenario-sweep harness runs the closed loop over *cohort variants*,
# not just the DiScRi default: each profile is a named PhenomenaConfig
# factory that reshapes the planted effects into a different clinical
# population.  The default ``discri`` profile is byte-identical to
# ``PhenomenaConfig()`` so existing seeds reproduce unchanged.


def _hypertension_config() -> PhenomenaConfig:
    """A hypertension-dominated screening clinic.

    HT prevalence roughly doubles (base + steeper age slope) and the
    years-since-diagnosis mix shifts long: most referrals arrive with an
    established diagnosis, so the ``>=20``/``10-20`` categories carry far
    more mass and the Fig 6 dip flattens out.
    """
    long_mix = {"<2": 0.08, "2-5": 0.17, "5-10": 0.25, "10-20": 0.32, ">=20": 0.18}
    config = PhenomenaConfig(
        ht_base_rate=0.34,
        ht_age_slope=0.016,
        ht_years_mix={band: dict(long_mix) for band in _default_ht_years_mix()},
    )
    return config


def _can_progression_config() -> PhenomenaConfig:
    """A cohort enriched for CAN and fast glycaemic progression.

    CAN rates rise across every stage, reflexes degrade earlier, and the
    stage-transition probabilities accelerate — the population the
    paper's Ewing-battery and trajectory analyses care about most.
    """
    return PhenomenaConfig(
        can_rate={"normal": 0.09, "preDiabetic": 0.28, "Diabetic": 0.58},
        reflex_absent_rate={
            "normal": 0.08,
            "preDiabetic_developer": 0.62,
            "preDiabetic_stable": 0.18,
            "Diabetic": 0.70,
        },
        progression_pre_to_diabetic=0.34,
        progression_normal_to_pre=0.18,
        handgrip_missing_base=0.08,
        handgrip_missing_over75=0.55,
    )


#: profile name -> PhenomenaConfig factory (the scenario-sweep cohort axis)
_PROFILE_FACTORIES = {
    "discri": PhenomenaConfig,
    "hypertension": _hypertension_config,
    "can_progression": _can_progression_config,
}

#: the registered disease-profile names, sweep-matrix order
DISEASE_PROFILES: tuple[str, ...] = tuple(_PROFILE_FACTORIES)


def profile_config(name: str) -> PhenomenaConfig:
    """The :class:`PhenomenaConfig` for a named disease profile.

    ``discri`` returns the paper-faithful defaults; unknown names raise
    ``ValueError`` listing the registered profiles.
    """
    try:
        factory = _PROFILE_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown disease profile {name!r} "
            f"(registered: {', '.join(DISEASE_PROFILES)})"
        ) from None
    config = factory()
    config.validate()
    return config
