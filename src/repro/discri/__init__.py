"""Synthetic DiScRi cohort (paper §V dataset, substituted).

The real Diabetes Screening Complications Research Initiative dataset
(Jelinek, Wilding & Tinley 2006 — the paper's reference [19]) is private:
"data on 273 attributes from over 2500 attendances of nearly 900 patients".
This package generates a synthetic cohort of the same shape with the
paper's observed phenomena planted, so every figure regenerates and the
discovery workflow can be exercised end-to-end:

* gender×age structure of diabetes (Fig 5) including the 70–75 male /
  75–80 female split and the falling female share past 78;
* the 5–10-year hypertension-duration dip inside the 70–80 bands (Fig 6);
* the reflex+mid-range-glucose pre-diabetes interaction (§II narrative);
* the Ewing battery with age-dependent hand-grip missingness (§V.C).

See :mod:`repro.discri.phenomena` for the planted-effect parameters and
DESIGN.md §2 for the substitution rationale.
"""

from repro.discri.attributes import ATTRIBUTE_GROUPS, AttributeSpec, catalog
from repro.discri.phenomena import (
    DISEASE_PROFILES,
    PhenomenaConfig,
    profile_config,
)
from repro.discri.generator import DiScRiGenerator
from repro.discri.schemes import (
    AGE_SCHEME,
    AGE_BAND_10_SCHEME,
    AGE_BAND_5_SCHEME,
    FBG_SCHEME,
    HT_YEARS_SCHEME,
    LYING_DBP_SCHEME,
    TABLE1_SCHEMES,
    clinical_schemes,
)
from repro.discri.warehouse import build_discri_warehouse
from repro.discri.dictionary import generate_data_dictionary

__all__ = [
    "AttributeSpec",
    "ATTRIBUTE_GROUPS",
    "catalog",
    "PhenomenaConfig",
    "DISEASE_PROFILES",
    "profile_config",
    "DiScRiGenerator",
    "AGE_SCHEME",
    "AGE_BAND_10_SCHEME",
    "AGE_BAND_5_SCHEME",
    "FBG_SCHEME",
    "HT_YEARS_SCHEME",
    "LYING_DBP_SCHEME",
    "TABLE1_SCHEMES",
    "clinical_schemes",
    "build_discri_warehouse",
    "generate_data_dictionary",
]
