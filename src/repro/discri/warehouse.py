"""Assembly of the Fig 3 DiScRi warehouse from the generated cohort.

Runs the clinical ETL pipeline (clean → discretise → cardinality) and
loads the result into the paper's dimensional model: Personal Information,
Medical Condition, Fasting Bloods, Limb Health, Exercise Routine, Blood
Pressure, ECG and Cardinality dimensions around a Medical Measures fact
table.  The age drill hierarchy (Table I bands → 10-year → 5-year) powers
the Fig 5/6 drill-downs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.discri.schemes import (
    AGE_BAND_5_SCHEME,
    AGE_BAND_10_SCHEME,
    AGE_SCHEME,
    BMI_SCHEME,
    CHOLESTEROL_SCHEME,
    FBG_SCHEME,
    HT_YEARS_SCHEME,
    LYING_DBP_SCHEME,
)
from repro.etl.cleaning import MissingValuePolicy, RangeRule
from repro.etl.incremental import EtlDeltaState, capture_etl_state
from repro.etl.pipeline import (
    CardinalityStep,
    CleaningStep,
    DeduplicateStep,
    DeriveStep,
    DiscretizationStep,
    Pipeline,
    PipelineResult,
)
from repro.tabular.table import Table
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dimension import Dimension
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


def _reflex_knees_ankles(row: dict) -> str:
    """The §II predictor: absent reflexes in the knees *and* the ankles."""
    knee_absent = "absent" in (
        row.get("reflex_knee_left"), row.get("reflex_knee_right")
    )
    ankle_absent = "absent" in (
        row.get("reflex_ankle_left"), row.get("reflex_ankle_right")
    )
    return "absent" if (knee_absent and ankle_absent) else "present"


def _ewing_risk(row: dict) -> str | None:
    """Ewing-battery CAN risk category from the abnormal-test share."""
    score = row.get("ewing_score")
    if score is None:
        return None
    if score < 0.2:
        return "normal"
    if score < 0.5:
        return "early"
    return "definite"


def discri_pipeline() -> Pipeline:
    """The trial's transformation pipeline (paper §V.A)."""
    return Pipeline(
        [
            DeduplicateStep("patient_id", "visit_date"),
            CleaningStep(
                missing={
                    "fbg": MissingValuePolicy.MEDIAN,
                    "lying_dbp_avg": MissingValuePolicy.MEDIAN,
                    "lying_sbp_avg": MissingValuePolicy.MEDIAN,
                    "bmi": MissingValuePolicy.MEDIAN,
                },
                range_rules=[
                    RangeRule("fbg", low=2.0, high=30.0),
                    RangeRule("lying_sbp_avg", low=70, high=250, action="clip"),
                    RangeRule("lying_dbp_avg", low=35, high=140, action="clip"),
                    RangeRule("bmi", low=12, high=70),
                    RangeRule("chol_total", low=1.5, high=15.0),
                ],
            ),
            DiscretizationStep("age", AGE_SCHEME, output="age_band"),
            DiscretizationStep("age", AGE_BAND_10_SCHEME, output="age_band10"),
            DiscretizationStep("age", AGE_BAND_5_SCHEME, output="age_band5"),
            DiscretizationStep("fbg", FBG_SCHEME, output="fbg_band"),
            DiscretizationStep(
                "diagnostic_ht_years", HT_YEARS_SCHEME, output="ht_years_band"
            ),
            DiscretizationStep(
                "lying_dbp_avg", LYING_DBP_SCHEME, output="dbp_band"
            ),
            DiscretizationStep("bmi", BMI_SCHEME, output="bmi_band"),
            DiscretizationStep(
                "chol_total", CHOLESTEROL_SCHEME, output="chol_band"
            ),
            DeriveStep(
                "reflex_knees_ankles",
                _reflex_knees_ankles,
                dtype="str",
                description="combined knee+ankle reflex absence (§II predictor)",
            ),
            DeriveStep(
                "ewing_risk", _ewing_risk, dtype="str",
                description="Ewing battery CAN risk category",
            ),
            DeriveStep(
                "visit_year",
                lambda row: row["visit_date"].year,
                dtype="int",
                description="calendar year of attendance",
            ),
            CardinalityStep("patient_id", "visit_date", output="visit_number"),
        ]
    )


def _dimensions() -> list[DimensionSpec]:
    personal = Dimension(
        "personal",
        {
            "gender": "str",
            "family_history_diabetes": "str",
            "education_level": "str",
            "smoking_status": "str",
        },
    )
    medical = Dimension(
        "conditions",
        {
            "diabetes_status": "str",
            "develops_diabetes": "str",
            "age_band": "str",
            "age_band10": "str",
            "age_band5": "str",
            "hypertension": "str",
            "ht_years_band": "str",
            "can_status": "str",
            "arthritis": "str",
        },
        hierarchies=[
            Hierarchy("age_drill", ["age_band", "age_band10", "age_band5"])
        ],
    )
    bloods = Dimension(
        "bloods",
        {"fbg_band": "str", "chol_band": "str", "bmi_band": "str"},
    )
    limbs = Dimension(
        "limbs",
        {
            "reflex_knees_ankles": "str",
            "reflex_knee_left": "str",
            "reflex_ankle_left": "str",
            "monofilament_left": "str",
        },
    )
    exercise = Dimension(
        "exercise",
        {"exercise_frequency": "str", "exercise_intensity": "str"},
    )
    pressure = Dimension(
        "pressure",
        {"dbp_band": "str", "bp_medication": "str"},
    )
    ecg = Dimension(
        "ecg",
        {"ewing_risk": "str", "af_present": "str"},
    )
    cardinality = Dimension(
        "cardinality",
        {"patient_id": "int", "visit_number": "int", "visit_year": "int"},
    )
    return [
        DimensionSpec(personal),
        DimensionSpec(medical),
        DimensionSpec(bloods),
        DimensionSpec(limbs),
        DimensionSpec(exercise),
        DimensionSpec(pressure),
        DimensionSpec(ecg),
        DimensionSpec(cardinality),
    ]


def _measures() -> list[Measure]:
    return [
        Measure.of("fbg", "float", "mean"),
        Measure.of("hba1c", "float", "mean"),
        Measure.of("bmi", "float", "mean"),
        Measure.of("lying_sbp_avg", "float", "mean"),
        Measure.of("lying_dbp_avg", "float", "mean"),
        Measure.of("sdnn", "float", "mean"),
        Measure.of("ewing_score", "float", "mean"),
        Measure.of("medication_count", "float", "mean"),
    ]


@dataclass
class DiscriWarehouse:
    """The built warehouse plus the ETL audit and the transformed table."""

    warehouse: DynamicWarehouse
    etl_result: PipelineResult
    #: positions (in the *source* batch) of rows that reached the fact
    #: table — ``None`` for strict builds, where every row either loaded
    #: or aborted the build
    kept_indices: list[int] | None = None

    #: source rows diverted to quarantine across ETL + load (0 if strict)
    rows_quarantined: int = 0

    #: the loader that built the star schema — retained so delta ingests
    #: can append facts to the same dimensions instead of rebuilding
    loader: WarehouseLoader | None = None

    #: cross-batch ETL state for incremental maintenance (None when the
    #: pipeline shape is ineligible; see :mod:`repro.etl.incremental`)
    delta_state: "EtlDeltaState | None" = None

    #: why no delta state was captured (None when ``delta_state`` is set)
    delta_reason: str | None = None

    @property
    def transformed(self) -> Table:
        """The post-ETL visit table (wide, with bands and cardinality)."""
        return self.etl_result.table


def build_discri_warehouse(
    source: Table,
    *,
    quarantine=None,
    batch: str = "",
) -> DiscriWarehouse:
    """ETL the cohort table and load the Fig 3 star schema.

    With a quarantine sink, malformed source rows divert to it (tagged
    with ``batch``) at whichever step rejects them — ETL transforms or
    star-schema load — and the build carries on with the valid rows; the
    returned :class:`DiscriWarehouse` then reports which source positions
    actually landed in the fact table, with the transformed table pruned
    to match.
    """
    pipeline = discri_pipeline()
    result = pipeline.run(source, quarantine=quarantine, batch=batch)
    # Capture the cross-batch ETL state *before* load pruning: cardinality
    # ordinals are assigned to every post-ETL row whether or not it later
    # survives the load, and dedup/fill statistics see the raw source.
    delta_state, delta_reason = capture_etl_state(pipeline, source, result.table)
    loader = WarehouseLoader(
        "discri", "medical_measures", _dimensions(), _measures()
    )
    report = loader.load(
        result.table,
        quarantine=quarantine,
        batch=batch,
        source_indices=result.kept_indices,
    )
    kept = result.kept_indices
    if report.quarantined_indices:
        dropped = set(report.quarantined_indices)
        survivors = [
            i for i in range(result.table.num_rows) if i not in dropped
        ]
        result.table = result.table.take(survivors)
        if kept is not None:
            kept = [kept[i] for i in survivors]
    problems = loader.schema.check_integrity()
    if problems:  # pragma: no cover - loader guarantees integrity
        raise AssertionError(f"integrity violations after load: {problems[:3]}")
    return DiscriWarehouse(
        DynamicWarehouse(loader.schema),
        result,
        kept,
        rows_quarantined=len(result.quarantined) + report.rows_quarantined,
        loader=loader,
        delta_state=delta_state,
        delta_reason=delta_reason,
    )
