"""Exception hierarchy for the DD-DGMS library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems raise the
most specific subclass available; error messages name the offending object
(column, dimension, token, ...) so failures are actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# --------------------------------------------------------------------------
# Tabular substrate
# --------------------------------------------------------------------------

class TabularError(ReproError):
    """Base class for errors from the columnar table engine."""


class ColumnNotFoundError(TabularError, KeyError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available) if available is not None else None
        message = f"column {name!r} not found"
        if self.available is not None:
            message += f" (available: {', '.join(self.available)})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0]


class DTypeError(TabularError, TypeError):
    """A value or operation is incompatible with a column's dtype."""


class SchemaMismatchError(TabularError):
    """Two tables (or a table and incoming rows) have incompatible schemas."""


class LengthMismatchError(TabularError, ValueError):
    """Columns of differing lengths were combined into one table."""


# --------------------------------------------------------------------------
# Storage engine
# --------------------------------------------------------------------------

class PersistenceError(ReproError):
    """A unified save/load/recover operation failed.

    Raised by :mod:`repro.persistence` — the one durable-artefact surface
    — wrapping whichever subsystem error occurred (kept as ``__cause__``),
    so callers of the unified API catch a single type regardless of
    whether the artefact was an operational snapshot, a warehouse or a
    knowledge base.
    """


class StorageError(ReproError):
    """Base class for embedded storage-engine errors."""


class TableExistsError(StorageError):
    """Attempt to create a table that already exists."""


class TableNotFoundError(StorageError, KeyError):
    """A referenced stored table does not exist."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class TransactionError(StorageError):
    """Invalid transaction state (e.g. commit without begin)."""


class IntegrityError(StorageError):
    """A constraint (primary key, foreign key, not-null) was violated."""


class DurabilityError(StorageError):
    """Base class for on-disk durability failures (framing, checksums)."""


class ChecksumError(DurabilityError):
    """Stored bytes do not match their recorded checksum."""


class WALCorruptionError(DurabilityError):
    """The write-ahead log is damaged beyond a repairable torn tail."""


class SnapshotError(DurabilityError):
    """A snapshot generation is missing files or fails verification."""


class InjectedFault(DurabilityError):
    """A deliberate failure raised by the fault-injection layer."""


# --------------------------------------------------------------------------
# Ingest resilience
# --------------------------------------------------------------------------

class IngestError(ReproError):
    """Base class for errors raised on the fault-tolerant ingest path."""


class RowQuarantined(IngestError):
    """A single row was diverted to the dead-letter store.

    Raised (and immediately caught) inside the resilient ingest path to
    signal that one row failed a step; the batch continues.  ``step`` is
    the ETL/load step that rejected the row, ``reason`` the human-readable
    diagnosis, and ``cause`` the originating error.
    """

    def __init__(self, step: str, reason: str, cause: BaseException | None = None):
        self.step = step
        self.reason = reason
        self.cause = cause
        super().__init__(f"row quarantined at step {step!r}: {reason}")


class TransientIngestError(IngestError):
    """An ingest boundary failed in a way that is expected to heal.

    Retried with exponential backoff + jitter by
    :func:`repro.storage.retry.with_retry`; injected via the ``transient``
    fault mode of :mod:`repro.storage.faults`.
    """


class PermanentIngestError(IngestError):
    """An ingest boundary failed unrecoverably (or retries were exhausted).

    Never retried.  Non-essential boundaries (lattice re-materialisation)
    degrade gracefully instead of failing the batch.
    """


# --------------------------------------------------------------------------
# Serving resilience
# --------------------------------------------------------------------------

class ServingError(ReproError):
    """Base class for errors from the overload-safe query-serving layer."""


class ServingOverloadError(ServingError):
    """The admission gate shed this query: in-flight and queue are full.

    Raised *fast* (bounded by the queue-wait budget, immediately when the
    wait queue itself is full) so callers can retry elsewhere or back off
    instead of piling onto an overloaded server.
    """


class QueryTimeoutError(ServingError, TimeoutError):
    """A query exceeded its deadline and was cooperatively cancelled.

    Raised at the next cancellation checkpoint after the deadline expires
    — at chunk boundaries inside the group-by/join kernels, between
    lattice nodes, and inside ``parallel_map`` workers — so expiry is
    observed in bounded time and no partial result is ever published.
    """


class QueryCancelledError(ServingError):
    """A query was cancelled before completing (e.g. a sibling worker
    failed and the fan-out is draining).  Checkpoints raise this when the
    active :class:`~repro.serving.resilience.Deadline` was explicitly
    cancelled rather than timing out.
    """


# --------------------------------------------------------------------------
# ETL / transformation
# --------------------------------------------------------------------------

class ETLError(ReproError):
    """Base class for data-transformation errors."""


class CleaningError(ETLError):
    """A cleaning policy could not be applied."""


class DiscretizationError(ETLError):
    """A discretisation scheme is malformed or cannot bin the data."""


class TemporalAbstractionError(ETLError):
    """Temporal abstraction failed (bad intervals, conflicting states)."""


class AbstractionConflictError(TemporalAbstractionError):
    """Two temporal abstractions assign contradictory states to one span."""


# --------------------------------------------------------------------------
# Warehouse
# --------------------------------------------------------------------------

class WarehouseError(ReproError):
    """Base class for dimensional-model errors."""


class DimensionError(WarehouseError):
    """A dimension is malformed or a member lookup failed."""


class UnknownMemberError(DimensionError, KeyError):
    """A natural key has no member row in the dimension."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class GrainViolationError(WarehouseError):
    """A fact row does not match the declared grain of the fact table."""


class HierarchyError(WarehouseError):
    """A hierarchy level is unknown or levels are ill-ordered."""


# --------------------------------------------------------------------------
# OLAP / query languages
# --------------------------------------------------------------------------

class OLAPError(ReproError):
    """Base class for cube/query errors."""


class UnknownLevelError(OLAPError, KeyError):
    """A referenced dimension attribute/level is not in the cube."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class UnknownMeasureError(OLAPError, KeyError):
    """A referenced measure is not in the cube."""

    def __str__(self) -> str:
        return self.args[0] if self.args else ""


class QueryLanguageError(ReproError):
    """Base class for MDX / DG-SQL language errors."""


class LexError(QueryLanguageError):
    """Tokenisation failed; message carries position and offending text."""

    def __init__(self, message: str, position: int):
        self.position = position
        super().__init__(f"{message} (at offset {position})")


class ParseError(QueryLanguageError):
    """Parsing failed; message carries the unexpected token."""


class EvaluationError(QueryLanguageError):
    """A syntactically valid query referenced unknown objects or misused them."""


# --------------------------------------------------------------------------
# Mining / prediction / optimisation
# --------------------------------------------------------------------------

class MiningError(ReproError):
    """Base class for data-analytics errors."""


class NotFittedError(MiningError, RuntimeError):
    """A model was used before ``fit`` was called."""


class PredictionError(ReproError):
    """Base class for trajectory/time-course prediction errors."""


class OptimizationError(ReproError):
    """Decision-optimisation problem is infeasible or malformed."""


# --------------------------------------------------------------------------
# Knowledge base
# --------------------------------------------------------------------------

class KnowledgeBaseError(ReproError):
    """Base class for knowledge-base errors."""


class PromotionError(KnowledgeBaseError):
    """A finding does not meet the evidence threshold for promotion."""
