"""CSV import/export for tables.

Import infers dtypes unless an explicit schema is given; empty fields and a
configurable set of missing-value markers become nulls.  Export writes
RFC-4180 CSV with ISO dates and empty fields for nulls.
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Mapping

from repro.tabular.dtypes import DType
from repro.tabular.table import Table

#: Field contents treated as null on import (case-insensitive).
DEFAULT_MISSING_MARKERS = frozenset({"", "na", "n/a", "null", "none", "?", "-"})


def _parse_field(text: str) -> object:
    """Best-effort typed parse of one CSV field (already known non-null)."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return _dt.date.fromisoformat(text)
    except ValueError:
        pass
    return text


def read_csv(
    path: str | Path,
    schema: Mapping[str, DType | str] | None = None,
    missing_markers: frozenset[str] = DEFAULT_MISSING_MARKERS,
) -> Table:
    """Read a CSV file into a :class:`Table`.

    With a ``schema``, fields are coerced to the declared types and only the
    scheduled columns are read.  Without one, each column's type is inferred
    from its parsed values.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        rows: list[dict[str, object]] = []
        for raw in reader:
            row: dict[str, object] = {}
            for name, text in raw.items():
                if name is None:
                    continue
                if schema is not None and name not in schema:
                    continue
                if text is None or text.strip().lower() in missing_markers:
                    row[name] = None
                else:
                    row[name] = _parse_field(text.strip())
            rows.append(row)
    return Table.from_rows(rows, schema=schema)


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV; nulls become empty fields, dates ISO-format."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        for row in table.iter_rows():
            out = []
            for name in table.column_names:
                value = row[name]
                if value is None:
                    out.append("")
                elif isinstance(value, _dt.date):
                    out.append(value.isoformat())
                else:
                    out.append(str(value))
            writer.writerow(out)
