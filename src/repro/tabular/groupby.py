"""Group-by aggregation over tables.

Aggregations are requested as ``output_name=(input_column, function)``
pairs, mirroring the named-aggregation style analysts already know::

    summary = table.groupby("age_group", "gender").agg(
        patients=("patient_id", "nunique"),
        mean_fbg=("fbg", "mean"),
    )

Supported functions: ``count`` (non-null), ``size`` (rows), ``sum``,
``mean``, ``min``, ``max``, ``std``, ``nunique``, ``first``, ``last``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ColumnNotFoundError, TabularError
from repro.tabular.column import Column

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


def _agg_count(col: Column, idx: np.ndarray) -> object:
    return int(col.valid[idx].sum())


def _agg_size(col: Column, idx: np.ndarray) -> object:
    return int(len(idx))


def _agg_sum(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).sum()


def _agg_mean(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).mean()


def _agg_min(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).min()


def _agg_max(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).max()


def _agg_std(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).std()


def _agg_nunique(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).n_unique()


def _agg_first(col: Column, idx: np.ndarray) -> object:
    return col.value(int(idx[0])) if len(idx) else None


def _agg_last(col: Column, idx: np.ndarray) -> object:
    return col.value(int(idx[-1])) if len(idx) else None


AGGREGATORS: dict[str, Callable[[Column, np.ndarray], object]] = {
    "count": _agg_count,
    "size": _agg_size,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "min": _agg_min,
    "max": _agg_max,
    "std": _agg_std,
    "nunique": _agg_nunique,
    "first": _agg_first,
    "last": _agg_last,
}


class GroupBy:
    """Lazy grouping over key columns; ``agg`` materialises the result.

    Groups appear in order of first occurrence, keeping results stable and
    deterministic.  Rows whose key tuple contains a null still form a group
    keyed by ``None`` — clinical data is full of partially-known records and
    silently dropping them would bias counts.
    """

    def __init__(self, table: "Table", keys: list[str]):
        if not keys:
            raise TabularError("groupby requires at least one key column")
        for key in keys:
            if key not in table:
                raise ColumnNotFoundError(key, table.column_names)
        self.table = table
        self.keys = keys

    def groups(self) -> dict[tuple, np.ndarray]:
        """Key tuple → row-index array, in first-occurrence order."""
        key_lists = [self.table.column(k).to_list() for k in self.keys]
        buckets: dict[tuple, list[int]] = {}
        for i in range(len(self.table)):
            key = tuple(values[i] for values in key_lists)
            buckets.setdefault(key, []).append(i)
        return {k: np.array(v, dtype=np.int64) for k, v in buckets.items()}

    def agg(self, **named: tuple[str, str]) -> "Table":
        """Aggregate each group; returns key columns plus one per request."""
        from repro.tabular.table import Table

        if not named:
            raise TabularError("agg() requires at least one aggregation")
        plans = []
        for out_name, spec in named.items():
            if not (isinstance(spec, tuple) and len(spec) == 2):
                raise TabularError(
                    f"aggregation {out_name!r} must be (column, function), "
                    f"got {spec!r}"
                )
            in_name, func_name = spec
            if func_name not in AGGREGATORS:
                raise TabularError(
                    f"unknown aggregation {func_name!r} "
                    f"(valid: {', '.join(sorted(AGGREGATORS))})"
                )
            plans.append((out_name, self.table.column(in_name), AGGREGATORS[func_name]))

        grouped = self.groups()
        rows: list[dict[str, object]] = []
        for key, idx in grouped.items():
            row: dict[str, object] = dict(zip(self.keys, key))
            for out_name, column, func in plans:
                row[out_name] = func(column, idx)
            rows.append(row)

        if rows:
            return Table.from_rows(rows)
        # Empty input: preserve the schema so downstream sorts/selects work.
        schema = {key: self.table.schema[key] for key in self.keys}
        for out_name, spec in named.items():
            in_name, func_name = spec
            if func_name in ("count", "size", "nunique"):
                schema[out_name] = "int"  # type: ignore[assignment]
            elif func_name in ("mean", "std"):
                schema[out_name] = "float"  # type: ignore[assignment]
            else:
                schema[out_name] = self.table.schema[in_name]
        return Table.empty(schema)

    def size(self) -> "Table":
        """Shorthand for a single row-count aggregation named ``size``."""
        return self.agg(size=(self.keys[0], "size"))

    def apply(self, func) -> dict[tuple, object]:
        """Run ``func(sub_table)`` per group; returns key → result."""
        return {
            key: func(self.table.take(idx)) for key, idx in self.groups().items()
        }
