"""Group-by aggregation over tables.

Aggregations are requested as ``output_name=(input_column, function)``
pairs, mirroring the named-aggregation style analysts already know::

    summary = table.groupby("age_group", "gender").agg(
        patients=("patient_id", "nunique"),
        mean_fbg=("fbg", "mean"),
    )

Supported functions: ``count`` (non-null), ``size`` (rows), ``sum``,
``mean``, ``min``, ``max``, ``std``, ``nunique``, ``first``, ``last``.

Two kernel paths produce identical results:

* the **vectorised** path (default) factorises the key columns to dense
  group codes (:mod:`repro.tabular.factorize`) and aggregates with numpy
  segment kernels — ``np.bincount`` for count/size, ``reduceat`` for
  integer sums and min/max, sorted-segment reductions elsewhere;
* the **scalar** path — the original per-row ``AGGREGATORS`` — is kept as
  the reference oracle and selected with ``REPRO_SCALAR_KERNELS=1``.

Float sum/mean/std deliberately reduce each group's segment with the very
same ``np.sum``/``np.mean``/``np.std`` calls the oracle makes (rather than
``bincount`` accumulation), so the fast path is bit-identical to the slow
one: numpy's pairwise float summation and a sequential bincount disagree
in the last ulp on large groups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.errors import ColumnNotFoundError, TabularError
from repro.tabular.column import Column
from repro.tabular.dtypes import DType
from repro.serving.parallel import map_group_ranges
from repro.serving.resilience import checkpoint
from repro.tabular.factorize import (
    Factorization,
    factorize,
    factorize_column,
    scalar_kernels_enabled,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


def _agg_count(col: Column, idx: np.ndarray) -> object:
    return int(col.valid[idx].sum())


def _agg_size(col: Column, idx: np.ndarray) -> object:
    return int(len(idx))


def _agg_sum(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).sum()


def _agg_mean(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).mean()


def _agg_min(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).min()


def _agg_max(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).max()


def _agg_std(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).std()


def _agg_nunique(col: Column, idx: np.ndarray) -> object:
    return col.take(idx).n_unique()


def _agg_first(col: Column, idx: np.ndarray) -> object:
    return col.value(int(idx[0])) if len(idx) else None


def _agg_last(col: Column, idx: np.ndarray) -> object:
    return col.value(int(idx[-1])) if len(idx) else None


#: groups (or rows) between cooperative cancellation checkpoints in the
#: per-group Python loops — coarse enough to be free, fine enough that a
#: timed-out query stops within a few hundred numpy calls
CHECK_EVERY_GROUPS = 256
CHECK_EVERY_ROWS = 4096

#: Scalar reference kernels — the parity oracle for the vectorised path.
AGGREGATORS: dict[str, Callable[[Column, np.ndarray], object]] = {
    "count": _agg_count,
    "size": _agg_size,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "min": _agg_min,
    "max": _agg_max,
    "std": _agg_std,
    "nunique": _agg_nunique,
    "first": _agg_first,
    "last": _agg_last,
}


class _GroupedColumn:
    """One input column, permuted into group order, with lazy projections.

    The lazy caches are lock-free but safe to race on: each property
    computes its value into locals, assigns any dependent attribute
    *before* the attribute that guards the fast path, and every
    computation is deterministic — concurrent first readers may duplicate
    work, never observe a torn state.
    """

    def __init__(self, column: Column, engine: "_VectorEngine"):
        self.column = column
        self.engine = engine
        self._svalid: np.ndarray | None = None
        self._pdata: np.ndarray | None = None
        self._pcodes: np.ndarray | None = None
        self._bounds: tuple[np.ndarray, np.ndarray] | None = None
        self._valid_counts: np.ndarray | None = None
        self._pvcodes: np.ndarray | None = None
        self._n_value_codes = 0

    @property
    def svalid(self) -> np.ndarray:
        """Validity mask permuted into group order."""
        if self._svalid is None:
            self._svalid = self.column.valid[self.engine.order]
        return self._svalid

    @property
    def pdata(self) -> np.ndarray:
        """Non-null data, group-major, row-ascending within each group."""
        if self._pdata is None:
            svalid = self.svalid
            # _pcodes before _pdata: pcodes' fast path keys off _pdata
            self._pcodes = self.engine.sorted_codes[svalid]
            self._pdata = self.column.data[self.engine.order][svalid]
        return self._pdata

    @property
    def pcodes(self) -> np.ndarray:
        """Group code per element of :attr:`pdata`."""
        self.pdata
        return self._pcodes  # type: ignore[return-value]

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-group [start, end) offsets into :attr:`pdata`."""
        if self._bounds is None:
            groups = np.arange(self.engine.n_groups)
            self._bounds = (
                np.searchsorted(self.pcodes, groups, side="left"),
                np.searchsorted(self.pcodes, groups, side="right"),
            )
        return self._bounds

    @property
    def pvcodes(self) -> np.ndarray:
        """Factorised value codes aligned with :attr:`pdata` (for nunique)."""
        if self._pvcodes is None:
            codes, uniques = factorize_column(self.column)
            # _n_value_codes before _pvcodes: n_value_codes keys off _pvcodes
            self._n_value_codes = len(uniques)
            self._pvcodes = codes[self.engine.order][self.svalid]
        return self._pvcodes

    @property
    def n_value_codes(self) -> int:
        """Size of the value-code space behind :attr:`pvcodes`."""
        self.pvcodes
        return self._n_value_codes

    def valid_counts(self) -> np.ndarray:
        """Non-null element count per group."""
        if self._valid_counts is None:
            self._valid_counts = np.bincount(
                self.engine.codes[self.column.valid],
                minlength=self.engine.n_groups,
            )
        return self._valid_counts


class _VectorEngine:
    """Shared per-``agg()`` state: group codes sorted once, reused by all plans."""

    def __init__(self, fact: Factorization):
        self.fact = fact
        self.codes = fact.codes
        self.n_groups = fact.n_groups
        self.order = np.argsort(fact.codes, kind="stable")
        self.sorted_codes = fact.codes[self.order]
        self._columns: dict[int, _GroupedColumn] = {}
        self._sizes: np.ndarray | None = None

    def grouped(self, column: Column) -> _GroupedColumn:
        key = id(column)
        if key not in self._columns:
            self._columns[key] = _GroupedColumn(column, self)
        return self._columns[key]

    def sizes(self) -> np.ndarray:
        if self._sizes is None:
            self._sizes = np.bincount(self.codes, minlength=self.n_groups)
        return self._sizes

    def _per_group(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        one_group: Callable[[int, int], object],
    ) -> list[object]:
        """``[one_group(a, b) for a, b in zip(starts, ends)]``, fanned out.

        The float reductions run one numpy call per group — a Python-level
        loop that dominates wide group-bys.  With workers configured
        (``REPRO_WORKERS``/``configure_workers``) the group range is split
        into contiguous chunks evaluated concurrently; every chunk runs
        the identical ``one_group`` on the identical slice, so the
        concatenated output equals the serial loop bit for bit.
        """
        def chunk(lo: int, hi: int) -> list[object]:
            out: list[object] = []
            for i, (a, b) in enumerate(zip(starts[lo:hi], ends[lo:hi])):
                if i % CHECK_EVERY_GROUPS == 0:
                    checkpoint()  # cancellation point at chunk granularity
                out.append(one_group(int(a), int(b)))
            return out

        fanned = map_group_ranges(chunk, self.n_groups)
        if fanned is not None:
            return fanned
        return chunk(0, self.n_groups)

    # -- kernels; each returns one Python value per group -----------------

    def count(self, column: Column) -> list[object]:
        return [int(c) for c in self.grouped(column).valid_counts()]

    def size(self, column: Column) -> list[object]:
        return [int(c) for c in self.sizes()]

    def sum(self, column: Column) -> list[object]:
        column._require_numeric("sum")
        g = self.grouped(column)
        starts, ends = g.bounds
        if column.dtype is DType.INT:
            # int64 addition is associative: reduceat == np.sum exactly
            sums = np.zeros(self.n_groups, dtype=np.int64)
            nonempty = ends > starts
            if g.pdata.size:
                sums[nonempty] = np.add.reduceat(g.pdata, starts[nonempty])
            return [
                int(s) if ne else None for s, ne in zip(sums, nonempty)
            ]
        pdata = g.pdata
        return self._per_group(
            starts, ends,
            lambda a, b: float(pdata[a:b].sum()) if b > a else None,
        )

    def mean(self, column: Column) -> list[object]:
        column._require_numeric("mean")
        g = self.grouped(column)
        starts, ends = g.bounds
        pdata = g.pdata
        return self._per_group(
            starts, ends,
            lambda a, b: float(pdata[a:b].mean()) if b > a else None,
        )

    def std(self, column: Column) -> list[object]:
        column._require_numeric("std")
        g = self.grouped(column)
        starts, ends = g.bounds
        pdata = g.pdata
        return self._per_group(
            starts, ends,
            lambda a, b: float(pdata[a:b].std()) if b > a else None,
        )

    def _extremum(self, column: Column, ufunc, py_reduce) -> list[object]:
        g = self.grouped(column)
        starts, ends = g.bounds
        if column.dtype is DType.STR:
            return [
                py_reduce(g.pdata[a:b].tolist()) if b > a else None
                for a, b in zip(starts, ends)
            ]
        out: list[object] = [None] * self.n_groups
        nonempty = np.flatnonzero(ends > starts)
        if len(nonempty):
            vals = ufunc.reduceat(g.pdata, starts[nonempty])
            for slot, v in zip(nonempty, vals):
                out[int(slot)] = column._to_python(v)
        return out

    def min(self, column: Column) -> list[object]:
        return self._extremum(column, np.minimum, min)

    def max(self, column: Column) -> list[object]:
        return self._extremum(column, np.maximum, max)

    def nunique(self, column: Column) -> list[object]:
        g = self.grouped(column)
        if g.pdata.size == 0:
            return [0] * self.n_groups
        # factorised values compare cheaply regardless of dtype (str included)
        p, n_values = g.pvcodes, g.n_value_codes
        cells = self.n_groups * n_values
        if cells <= max(4 * len(p), 1 << 16):
            # dense (group, value) occupancy grid: O(n) scatter, no sort
            seen = np.zeros(cells, dtype=bool)
            seen[g.pcodes * n_values + p] = True
            counts = seen.reshape(self.n_groups, n_values).sum(axis=1)
        else:
            within = np.lexsort((p, g.pcodes))
            values, codes = p[within], g.pcodes[within]
            new = np.ones(len(values), dtype=bool)
            new[1:] = (values[1:] != values[:-1]) | (codes[1:] != codes[:-1])
            counts = np.bincount(codes[new], minlength=self.n_groups)
        return [int(c) for c in counts]

    def first(self, column: Column) -> list[object]:
        return [column.value(int(r)) for r in self.fact.first_rows]

    def last(self, column: Column) -> list[object]:
        groups = np.arange(self.n_groups)
        ends = np.searchsorted(self.sorted_codes, groups, side="right")
        return [column.value(int(self.order[e - 1])) for e in ends]


class GroupBy:
    """Lazy grouping over key columns; ``agg`` materialises the result.

    Groups appear in order of first occurrence, keeping results stable and
    deterministic.  Rows whose key tuple contains a null still form a group
    keyed by ``None`` — clinical data is full of partially-known records and
    silently dropping them would bias counts.

    The factorisation of the key columns is computed once per ``GroupBy``
    and shared across ``groups()``/``agg()`` calls, so repeated
    aggregations over the same keys (the OLAP cube's access pattern) pay
    the grouping cost once.  The lazy caches are deterministic and
    assigned whole, so concurrent readers sharing one ``GroupBy`` (the
    epoch-cached cube path) can at worst duplicate the factorisation,
    never corrupt it.
    """

    def __init__(self, table: "Table", keys: list[str]):
        if not keys:
            raise TabularError("groupby requires at least one key column")
        for key in keys:
            if key not in table:
                raise ColumnNotFoundError(key, table.column_names)
        self.table = table
        self.keys = keys
        self._fact: Factorization | None = None
        self._engine: _VectorEngine | None = None

    def factorization(self) -> Factorization:
        """Dense group codes for the key columns (cached)."""
        if self._fact is None:
            obs.count("tabular.factorize.miss")
            with obs.span(
                "factorize", keys=",".join(self.keys), rows=len(self.table)
            ):
                self._fact = factorize(self.table, self.keys)
        else:
            obs.count("tabular.factorize.hit")
        return self._fact

    def _vector_engine(self) -> "_VectorEngine":
        """Sorted group order plus per-column projections (cached)."""
        if self._engine is None:
            self._engine = _VectorEngine(self.factorization())
        return self._engine

    def groups(self) -> dict[tuple, np.ndarray]:
        """Key tuple → row-index array, in first-occurrence order."""
        if scalar_kernels_enabled():
            return self._groups_scalar()
        fact = self.factorization()
        return dict(zip(fact.group_keys, fact.group_rows()))

    def _groups_scalar(self) -> dict[tuple, np.ndarray]:
        key_lists = [self.table.column(k).to_list() for k in self.keys]
        buckets: dict[tuple, list[int]] = {}
        for i in range(len(self.table)):
            if i % CHECK_EVERY_ROWS == 0:
                checkpoint()
            key = tuple(values[i] for values in key_lists)
            buckets.setdefault(key, []).append(i)
        return {k: np.array(v, dtype=np.int64) for k, v in buckets.items()}

    def agg(self, **named: tuple[str, str]) -> "Table":
        """Aggregate each group; returns key columns plus one per request."""
        from repro.tabular.table import Table

        if not named:
            raise TabularError("agg() requires at least one aggregation")
        plans: list[tuple[str, str, str]] = []
        for out_name, spec in named.items():
            if not (isinstance(spec, tuple) and len(spec) == 2):
                raise TabularError(
                    f"aggregation {out_name!r} must be (column, function), "
                    f"got {spec!r}"
                )
            in_name, func_name = spec
            if func_name not in AGGREGATORS:
                raise TabularError(
                    f"unknown aggregation {func_name!r} "
                    f"(valid: {', '.join(sorted(AGGREGATORS))})"
                )
            self.table.column(in_name)  # raise early if absent
            plans.append((out_name, in_name, func_name))

        path = "scalar" if scalar_kernels_enabled() else "vector"
        obs.count(f"tabular.groupby.path.{path}")
        with obs.span(
            "groupby.agg",
            keys=",".join(self.keys),
            path=path,
            rows=len(self.table),
            aggs=len(plans),
        ):
            if path == "scalar":
                group_keys, results = self._aggregate_scalar(plans)
            else:
                group_keys, results = self._aggregate_vector(plans)

        # Explicit output schema: dtype follows the function/input column, so
        # all-null cells (e.g. a sum over an all-null measure) keep the input
        # type instead of degrading to inferred str.
        schema: dict[str, object] = {
            key: self.table.schema[key] for key in self.keys
        }
        for out_name, in_name, func_name in plans:
            if func_name in ("count", "size", "nunique"):
                schema[out_name] = "int"
            elif func_name in ("mean", "std"):
                schema[out_name] = "float"
            else:
                schema[out_name] = self.table.schema[in_name]

        rows: list[dict[str, object]] = []
        for g, key in enumerate(group_keys):
            row: dict[str, object] = dict(zip(self.keys, key))
            for out_name, _, _ in plans:
                row[out_name] = results[out_name][g]
            rows.append(row)
        if rows:
            return Table.from_rows(rows, schema=schema)
        # Empty input: preserve the schema so downstream sorts/selects work.
        return Table.empty(schema)

    def _aggregate_scalar(
        self, plans: list[tuple[str, str, str]]
    ) -> tuple[list[tuple], dict[str, list[object]]]:
        grouped = self._groups_scalar()
        results: dict[str, list[object]] = {out: [] for out, _, _ in plans}
        for g, idx in enumerate(grouped.values()):
            if g % CHECK_EVERY_GROUPS == 0:
                checkpoint()
            for out_name, in_name, func_name in plans:
                results[out_name].append(
                    AGGREGATORS[func_name](self.table.column(in_name), idx)
                )
        return list(grouped), results

    def _aggregate_vector(
        self, plans: list[tuple[str, str, str]]
    ) -> tuple[list[tuple], dict[str, list[object]]]:
        fact = self.factorization()
        if fact.n_groups == 0:
            return [], {out: [] for out, _, _ in plans}
        engine = self._vector_engine()
        results: dict[str, list[object]] = {}
        for out_name, in_name, func_name in plans:
            checkpoint()  # between plan kernels: each is one hot segment pass
            kernel = getattr(engine, func_name)
            results[out_name] = kernel(self.table.column(in_name))
        return fact.group_keys, results

    def size(self) -> "Table":
        """Shorthand for a single row-count aggregation named ``size``."""
        return self.agg(size=(self.keys[0], "size"))

    def apply(self, func) -> dict[tuple, object]:
        """Run ``func(sub_table)`` per group; returns key → result."""
        return {
            key: func(self.table.take(idx)) for key, idx in self.groups().items()
        }
