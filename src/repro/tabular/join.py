"""Hash joins between tables.

The default path factorises the key columns of both sides into one shared
dense code space (:mod:`repro.tabular.factorize`) and matches codes with
sorted-array searches — no per-row Python.  The original per-row matcher
is kept as the parity oracle behind ``REPRO_SCALAR_KERNELS=1`` and as the
fallback when the two sides' key columns disagree on dtype (Python-level
equality, e.g. ``1 == 1.0``, still applies there).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.errors import TabularError
from repro.serving.resilience import checkpoint
from repro.tabular.column import Column
from repro.tabular.factorize import factorize_codes, scalar_kernels_enabled

#: rows between cooperative cancellation checkpoints in the scalar matcher
_CHECK_EVERY_ROWS = 4096

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


def hash_join(
    left: "Table",
    right: "Table",
    on: Sequence[str] | str,
    how: str = "inner",
    suffix: str = "_right",
) -> "Table":
    """Join two tables on equal key columns.

    ``how`` is ``"inner"`` or ``"left"``.  Null keys never match (SQL
    semantics).  Non-key columns of ``right`` that collide with ``left``
    names get ``suffix`` appended.  For a left join, unmatched right-side
    columns are null.
    """
    from repro.tabular.table import Table

    if how not in ("inner", "left"):
        raise TabularError(f"unsupported join type {how!r} (use 'inner' or 'left')")
    keys = [on] if isinstance(on, str) else list(on)
    if not keys:
        raise TabularError("join requires at least one key column")
    for k in keys:
        left.column(k)
        right.column(k)

    mixed_dtypes = any(
        left.column(k).dtype is not right.column(k).dtype for k in keys
    )
    path = "scalar" if scalar_kernels_enabled() or mixed_dtypes else "vector"
    obs.count(f"tabular.join.path.{path}")
    with obs.span(
        "join",
        keys=",".join(keys),
        how=how,
        path=path,
        left_rows=len(left),
        right_rows=len(right),
    ):
        if path == "scalar":
            left_take, right_take = _match_scalar(left, right, keys, how)
        else:
            left_take, right_take = _match_vector(left, right, keys, how)

    columns: dict[str, Column] = {
        name: left.column(name).take(left_take) for name in left.column_names
    }
    matched = right_take >= 0
    for name in right.column_names:
        if name in keys:
            continue
        out_name = name if name not in columns else f"{name}{suffix}"
        source = right.column(name)
        if len(right) == 0:
            # nothing to gather from; every output slot is an unmatched null
            gathered = Column.nulls(source.dtype, len(right_take))
        else:
            gathered = source.take(np.where(matched, right_take, 0))
            if how == "left" and not matched.all():
                gathered = Column(
                    gathered.dtype, gathered.data, gathered.valid & matched
                )
        columns[out_name] = gathered
    return Table(columns)


def _match_scalar(
    left: "Table", right: "Table", keys: list[str], how: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row reference matcher; ``-1`` in the right index marks no match."""
    right_key_lists = [right.column(k).to_list() for k in keys]
    index: dict[tuple, list[int]] = {}
    for j in range(len(right)):
        if j % _CHECK_EVERY_ROWS == 0:
            checkpoint()
        key = tuple(values[j] for values in right_key_lists)
        if any(v is None for v in key):
            continue
        index.setdefault(key, []).append(j)

    left_key_lists = [left.column(k).to_list() for k in keys]
    left_idx: list[int] = []
    right_idx: list[int] = []
    for i in range(len(left)):
        if i % _CHECK_EVERY_ROWS == 0:
            checkpoint()
        key = tuple(values[i] for values in left_key_lists)
        matches = index.get(key) if not any(v is None for v in key) else None
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(-1)
    return (
        np.array(left_idx, dtype=np.int64),
        np.array(right_idx, dtype=np.int64),
    )


def _match_vector(
    left: "Table", right: "Table", keys: list[str], how: str
) -> tuple[np.ndarray, np.ndarray]:
    """Factorised matcher: shared key codes + sorted-search range lookups."""
    from repro.tabular.table import Table

    n_left, n_right = len(left), len(right)
    checkpoint()  # stage boundary: before the factorise/search pipeline
    stacked = Table(
        {k: left.column(k).concat(right.column(k)) for k in keys}
    )
    codes = factorize_codes(stacked, keys)
    checkpoint()
    l_codes, r_codes = codes[:n_left], codes[n_left:]

    l_null = ~np.logical_and.reduce(
        [left.column(k).valid for k in keys] or [np.ones(n_left, dtype=bool)]
    )
    r_null = ~np.logical_and.reduce(
        [right.column(k).valid for k in keys] or [np.ones(n_right, dtype=bool)]
    )

    r_keep = np.flatnonzero(~r_null)
    r_order = np.argsort(r_codes[r_keep], kind="stable")
    r_sorted = r_codes[r_keep][r_order]
    r_rows = r_keep[r_order]  # right row numbers, code-major, row-ascending

    n_codes = int(codes.max()) + 1 if len(codes) else 0
    if 0 < n_codes <= 4 * len(codes) + 1024:
        # dense code space: per-code offsets by direct indexing, no search
        r_hist = np.bincount(r_sorted, minlength=n_codes)
        r_offsets = np.concatenate(
            ([0], np.cumsum(r_hist[:-1], dtype=np.int64))
        )
        starts = r_offsets[l_codes]
        counts = r_hist[l_codes]
    else:
        # sparse combined codes (multi-key radix): binary search instead
        starts = np.searchsorted(r_sorted, l_codes, side="left")
        counts = np.searchsorted(r_sorted, l_codes, side="right") - starts
    counts[l_null] = 0

    out_counts = np.maximum(counts, 1) if how == "left" else counts
    left_take = np.repeat(np.arange(n_left, dtype=np.int64), out_counts)
    total = int(out_counts.sum())
    block_starts = np.cumsum(out_counts) - out_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(
        block_starts, out_counts
    )
    matched = within < np.repeat(counts, out_counts)
    if len(r_rows) == 0:
        right_take = np.full(total, -1, dtype=np.int64)
    else:
        positions = np.repeat(starts, out_counts) + within
        positions = np.minimum(positions, len(r_rows) - 1)
        right_take = np.where(matched, r_rows[positions], -1)
    return left_take, right_take.astype(np.int64)
