"""Hash joins between tables."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import TabularError
from repro.tabular.column import Column

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


def hash_join(
    left: "Table",
    right: "Table",
    on: Sequence[str] | str,
    how: str = "inner",
    suffix: str = "_right",
) -> "Table":
    """Join two tables on equal key columns.

    ``how`` is ``"inner"`` or ``"left"``.  Null keys never match (SQL
    semantics).  Non-key columns of ``right`` that collide with ``left``
    names get ``suffix`` appended.  For a left join, unmatched right-side
    columns are null.
    """
    from repro.tabular.table import Table

    if how not in ("inner", "left"):
        raise TabularError(f"unsupported join type {how!r} (use 'inner' or 'left')")
    keys = [on] if isinstance(on, str) else list(on)
    if not keys:
        raise TabularError("join requires at least one key column")
    for k in keys:
        left.column(k)
        right.column(k)

    right_key_lists = [right.column(k).to_list() for k in keys]
    index: dict[tuple, list[int]] = {}
    for j in range(len(right)):
        key = tuple(values[j] for values in right_key_lists)
        if any(v is None for v in key):
            continue
        index.setdefault(key, []).append(j)

    left_key_lists = [left.column(k).to_list() for k in keys]
    left_idx: list[int] = []
    right_idx: list[int] = []  # -1 marks "no match" for left joins
    for i in range(len(left)):
        key = tuple(values[i] for values in left_key_lists)
        matches = index.get(key) if not any(v is None for v in key) else None
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(-1)

    left_take = np.array(left_idx, dtype=np.int64)
    right_take = np.array(right_idx, dtype=np.int64)

    columns: dict[str, Column] = {
        name: left.column(name).take(left_take) for name in left.column_names
    }
    matched = right_take >= 0
    safe_take = np.where(matched, right_take, 0)
    for name in right.column_names:
        if name in keys:
            continue
        out_name = name if name not in columns else f"{name}{suffix}"
        gathered = right.column(name).take(safe_take)
        if how == "left" and not matched.all():
            valid = gathered.valid & matched
            gathered = Column(gathered.dtype, gathered.data, valid)
        columns[out_name] = gathered
    return Table(columns)
