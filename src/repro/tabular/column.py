"""Typed column: a numpy data array paired with a validity mask."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import DTypeError, LengthMismatchError
from repro.tabular.dtypes import (
    NULL_SENTINELS,
    DType,
    coerce_value,
    infer_dtype,
    ordinal_to_date,
)


class Column:
    """An immutable, typed vector of values with per-element nullability.

    The data array and validity mask always have equal length; where
    ``valid`` is False the data slot holds a type-specific sentinel and must
    not be interpreted.  All transforming operations return new columns.
    """

    __slots__ = ("dtype", "data", "valid")

    def __init__(self, dtype: DType | str, data: np.ndarray, valid: np.ndarray):
        self.dtype = DType.coerce(dtype)
        if len(data) != len(valid):
            raise LengthMismatchError(
                f"data has {len(data)} elements but mask has {len(valid)}"
            )
        self.data = data
        self.valid = valid

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_values(
        cls, values: Iterable[object], dtype: DType | str | None = None
    ) -> "Column":
        """Build a column from Python values; ``None`` marks a null.

        When ``dtype`` is omitted it is inferred from the non-null values.
        """
        values = list(values)
        resolved = DType.coerce(dtype) if dtype is not None else infer_dtype(values)
        sentinel = NULL_SENTINELS[resolved]
        coerced = [
            sentinel if v is None else coerce_value(v, resolved) for v in values
        ]
        valid = np.array([v is not None for v in values], dtype=bool)
        data = np.array(coerced, dtype=resolved.numpy_dtype)
        return cls(resolved, data, valid)

    @classmethod
    def from_numpy(cls, array: np.ndarray, dtype: DType | str) -> "Column":
        """Wrap an existing numpy array; every element is considered valid
        except NaN in float arrays."""
        resolved = DType.coerce(dtype)
        array = np.asarray(array, dtype=resolved.numpy_dtype)
        if resolved is DType.FLOAT:
            valid = ~np.isnan(array)
        else:
            valid = np.ones(len(array), dtype=bool)
        return cls(resolved, array, valid)

    @classmethod
    def nulls(cls, dtype: DType | str, length: int) -> "Column":
        """A column of ``length`` nulls."""
        resolved = DType.coerce(dtype)
        sentinel = NULL_SENTINELS[resolved]
        data = np.full(length, sentinel, dtype=resolved.numpy_dtype)
        return cls(resolved, data, np.zeros(length, dtype=bool))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[object]:
        return iter(self.to_list())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.dtype is other.dtype
            and len(self) == len(other)
            and self.to_list() == other.to_list()
        )

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.to_list()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self.dtype.value}>[{preview}{suffix}] (n={len(self)})"

    @property
    def null_count(self) -> int:
        """Number of null elements."""
        return int((~self.valid).sum())

    def value(self, index: int) -> object:
        """The Python value at ``index`` (``None`` when null)."""
        if not self.valid[index]:
            return None
        raw = self.data[index]
        return self._to_python(raw)

    def _to_python(self, raw: object) -> object:
        if self.dtype is DType.INT:
            return int(raw)  # type: ignore[arg-type]
        if self.dtype is DType.FLOAT:
            return float(raw)  # type: ignore[arg-type]
        if self.dtype is DType.BOOL:
            return bool(raw)
        if self.dtype is DType.DATE:
            return ordinal_to_date(int(raw))  # type: ignore[arg-type]
        return raw

    def to_list(self) -> list[object]:
        """Materialise as a list of Python values with ``None`` for nulls."""
        if self.dtype is DType.STR:
            return [
                v if ok else None
                for v, ok in zip(self.data.tolist(), self.valid.tolist())
            ]
        return [self.value(i) for i in range(len(self))]

    def to_numpy(self) -> np.ndarray:
        """The backing array.  Null slots hold sentinels — check ``valid``."""
        return self.data

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather elements by positional index."""
        indices = np.asarray(indices, dtype=np.int64)
        return Column(self.dtype, self.data[indices], self.valid[indices])

    def mask(self, keep: np.ndarray) -> "Column":
        """Keep elements where the boolean ``keep`` mask is True."""
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != len(self):
            raise LengthMismatchError(
                f"mask of length {len(keep)} applied to column of {len(self)}"
            )
        return Column(self.dtype, self.data[keep], self.valid[keep])

    def concat(self, other: "Column") -> "Column":
        """Append ``other`` below this column (dtypes must match)."""
        if other.dtype is not self.dtype:
            raise DTypeError(
                f"cannot concat {other.dtype.value} column onto {self.dtype.value}"
            )
        return Column(
            self.dtype,
            np.concatenate([self.data, other.data]),
            np.concatenate([self.valid, other.valid]),
        )

    def fill_null(self, value: object) -> "Column":
        """Replace nulls with ``value`` (coerced to this column's dtype)."""
        coerced = coerce_value(value, self.dtype)
        data = self.data.copy()
        data[~self.valid] = coerced
        return Column(self.dtype, data, np.ones(len(self), dtype=bool))

    def map(self, func, dtype: DType | str | None = None) -> "Column":
        """Apply ``func`` to every non-null value; nulls stay null."""
        out = [func(v) if v is not None else None for v in self.to_list()]
        return Column.from_values(out, dtype=dtype)

    def factorize(self) -> "tuple[np.ndarray, list[object]]":
        """Dictionary-encode: dense int codes + the unique values they index.

        Null-aware — when the column has nulls they share one trailing code
        whose unique is ``None``.  See :mod:`repro.tabular.factorize`.
        """
        from repro.tabular.factorize import factorize_column

        return factorize_column(self)

    def cast(self, dtype: DType | str) -> "Column":
        """Convert to another logical type element-wise."""
        target = DType.coerce(dtype)
        if target is self.dtype:
            return self
        return Column.from_values(
            [None if v is None else v for v in self.to_list()], dtype=target
        )

    # ------------------------------------------------------------------
    # Reductions (null-aware)
    # ------------------------------------------------------------------

    def _present(self) -> np.ndarray:
        return self.data[self.valid]

    def sum(self) -> float | int | None:
        """Sum of non-null values (``None`` when all null)."""
        self._require_numeric("sum")
        present = self._present()
        if len(present) == 0:
            return None
        total = present.sum()
        return int(total) if self.dtype is DType.INT else float(total)

    def mean(self) -> float | None:
        """Mean of non-null values."""
        self._require_numeric("mean")
        present = self._present()
        return float(present.mean()) if len(present) else None

    def min(self) -> object:
        """Minimum non-null value."""
        present = self._present()
        if len(present) == 0:
            return None
        if self.dtype is DType.STR:
            return min(present.tolist())
        return self._to_python(present.min())

    def max(self) -> object:
        """Maximum non-null value."""
        present = self._present()
        if len(present) == 0:
            return None
        if self.dtype is DType.STR:
            return max(present.tolist())
        return self._to_python(present.max())

    def std(self) -> float | None:
        """Population standard deviation of non-null values."""
        self._require_numeric("std")
        present = self._present()
        return float(present.std()) if len(present) else None

    def count(self) -> int:
        """Number of non-null values."""
        return int(self.valid.sum())

    def n_unique(self) -> int:
        """Number of distinct non-null values."""
        present = self._present()
        if len(present) == 0:
            return 0
        if self.dtype is DType.STR:
            return len(set(present.tolist()))
        return len(np.unique(present))

    def unique(self) -> list[object]:
        """Sorted distinct non-null Python values."""
        present = self._present()
        if len(present) == 0:
            return []
        if self.dtype is DType.STR:
            return sorted(set(present.tolist()))
        return [self._to_python(v) for v in np.unique(present)]

    def value_counts(self) -> dict[object, int]:
        """Frequency of each distinct non-null value."""
        counts: dict[object, int] = {}
        for v in self.to_list():
            if v is None:
                continue
            counts[v] = counts.get(v, 0) + 1
        return counts

    def _require_numeric(self, op: str) -> None:
        if not self.dtype.is_numeric:
            raise DTypeError(f"{op}() requires a numeric column, got {self.dtype.value}")
