"""The Table: an ordered mapping of equal-length typed columns."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import (
    ColumnNotFoundError,
    LengthMismatchError,
    SchemaMismatchError,
)
from repro.tabular.column import Column
from repro.tabular.dtypes import DType
from repro.tabular.expressions import Expression
from repro.tabular.factorize import factorize, scalar_kernels_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.groupby import GroupBy


class Table:
    """An immutable columnar table.

    All operations return new tables; the underlying numpy arrays are shared
    where safe, so selection and filtering are cheap.  Row order is
    significant and preserved by every operation except ``sort_by``.
    """

    def __init__(self, columns: Mapping[str, Column]):
        lengths = {len(c) for c in columns.values()}
        if len(lengths) > 1:
            detail = ", ".join(f"{n}={len(c)}" for n, c in columns.items())
            raise LengthMismatchError(f"columns differ in length: {detail}")
        self._columns: dict[str, Column] = dict(columns)
        self._length = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls, schema: Mapping[str, DType | str]) -> "Table":
        """A zero-row table with the given column types."""
        return cls(
            {name: Column.from_values([], dtype=dt) for name, dt in schema.items()}
        )

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, object]],
        schema: Mapping[str, DType | str] | None = None,
    ) -> "Table":
        """Build a table from a list of dict rows.

        Column order follows ``schema`` when given, otherwise first-seen
        order across the rows.  Missing keys become nulls; with an explicit
        schema, keys outside it raise :class:`SchemaMismatchError`.
        """
        if schema is not None:
            names = list(schema)
            allowed = set(names)
            for i, row in enumerate(rows):
                extra = set(row) - allowed
                if extra:
                    raise SchemaMismatchError(
                        f"row {i} has columns outside the schema: {sorted(extra)}"
                    )
            columns = {
                name: Column.from_values(
                    [row.get(name) for row in rows], dtype=schema[name]
                )
                for name in names
            }
        else:
            names = []
            seen = set()
            for row in rows:
                for key in row:
                    if key not in seen:
                        seen.add(key)
                        names.append(key)
            columns = {
                name: Column.from_values([row.get(name) for row in rows])
                for name in names
            }
        return cls(columns)

    @classmethod
    def from_columns(
        cls,
        data: Mapping[str, Iterable[object]],
        schema: Mapping[str, DType | str] | None = None,
    ) -> "Table":
        """Build a table from column-name → values, with optional dtypes."""
        columns = {}
        for name, values in data.items():
            dtype = schema.get(name) if schema else None
            columns[name] = Column.from_values(values, dtype=dtype)
        return cls(columns)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Row count."""
        return self._length

    @property
    def column_names(self) -> list[str]:
        """Column names in order."""
        return list(self._columns)

    @property
    def schema(self) -> dict[str, DType]:
        """Column name → logical type."""
        return {name: c.dtype for name, c in self._columns.items()}

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def column(self, name: str) -> Column:
        """Fetch one column, with a helpful error when absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def row(self, index: int) -> dict[str, object]:
        """Materialise one row as a dict (``None`` for nulls)."""
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: c.value(index) for name, c in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate rows as dicts.  Convenient but not the fast path."""
        lists = {name: c.to_list() for name, c in self._columns.items()}
        for i in range(self._length):
            yield {name: values[i] for name, values in lists.items()}

    def to_rows(self) -> list[dict[str, object]]:
        """All rows as a list of dicts."""
        return list(self.iter_rows())

    def equals(self, other: "Table") -> bool:
        """True when schemas, row order and all values match."""
        return (
            self.column_names == other.column_names
            and all(
                self._columns[n] == other._columns[n] for n in self._columns
            )
        )

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{n}:{c.dtype.value}" for n, c in list(self._columns.items())[:8]
        )
        more = ", ..." if len(self._columns) > 8 else ""
        return f"Table({self._length} rows; {cols}{more})"

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------

    def filter(self, predicate: Expression | np.ndarray) -> "Table":
        """Rows where ``predicate`` holds (expression or boolean mask)."""
        if isinstance(predicate, Expression):
            mask = predicate.evaluate(self)
        else:
            mask = np.asarray(predicate, dtype=bool)
            if len(mask) != self._length:
                raise LengthMismatchError(
                    f"mask of length {len(mask)} applied to {self._length} rows"
                )
        return Table({n: c.mask(mask) for n, c in self._columns.items()})

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Gather rows by position (allows reordering and duplication)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Table({n: c.take(idx) for n, c in self._columns.items()})

    def scan(self, predicate: "Expression | None" = None) -> "Iterator[Table]":
        """Iterate matching rows chunk by chunk (the scan/storage API).

        A plain table is a single chunk, so this yields one filtered
        table; partition-aware holders of the same contract
        (:meth:`repro.storage.columnar.store.PartitionedStore.scan`,
        ``Cube.scan``) yield one chunk per surviving partition segment.
        Writing consumers against ``scan()`` instead of ad-hoc
        ``filter()`` calls lets them run unchanged over both layouts.
        """
        yield self if predicate is None else self.filter(predicate)

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def sort_by(self, *names: str, descending: bool = False) -> "Table":
        """Stable sort by one or more columns (nulls last)."""
        if not names:
            return self
        order = np.arange(self._length)
        # numpy lexsort sorts by the last key first, so iterate reversed.
        for name in reversed(names):
            column = self.column(name)
            keys = column.data[order]
            valid = column.valid[order]
            if column.dtype is DType.STR:
                sortable = np.array(
                    [("" if not ok else str(v)) for v, ok in zip(keys, valid)],
                    dtype=object,
                )
                within = np.argsort(sortable, kind="stable")
            else:
                within = np.argsort(keys, kind="stable")
            if descending:
                within = within[::-1]
            # push nulls to the end regardless of direction
            sorted_valid = valid[within]
            within = np.concatenate([within[sorted_valid], within[~sorted_valid]])
            order = order[within]
        return self.take(order)

    def append(self, other: "Table") -> "Table":
        """Concatenate another table below (schemas must match exactly)."""
        if self.column_names != other.column_names or self.schema != other.schema:
            raise SchemaMismatchError(
                f"cannot append table with schema {other.schema} "
                f"onto schema {self.schema}"
            )
        return Table(
            {n: self._columns[n].concat(other._columns[n]) for n in self._columns}
        )

    @classmethod
    def concat_all(cls, tables: Sequence["Table"]) -> "Table":
        """Concatenate many same-schema tables in one pass.

        Equivalent to folding :meth:`append` left to right, but each
        column's buffers are joined with a single ``np.concatenate`` —
        O(total) instead of O(parts · total).  This is what materialises
        a lazily-extended epoch's flat view (see ``CubeState``).
        """
        if not tables:
            raise SchemaMismatchError("concat_all needs at least one table")
        first = tables[0]
        if len(tables) == 1:
            return first
        for other in tables[1:]:
            if (
                other.column_names != first.column_names
                or other.schema != first.schema
            ):
                raise SchemaMismatchError(
                    f"cannot concat table with schema {other.schema} "
                    f"onto schema {first.schema}"
                )
        return cls(
            {
                name: Column(
                    first._columns[name].dtype,
                    np.concatenate([t._columns[name].data for t in tables]),
                    np.concatenate([t._columns[name].valid for t in tables]),
                )
                for name in first.column_names
            }
        )

    def distinct(self, *names: str) -> "Table":
        """Rows with the first occurrence of each distinct key combination.

        With no names, full rows are deduplicated.
        """
        keys = list(names) if names else self.column_names
        if not keys:
            return self  # zero-column table: nothing to deduplicate
        if scalar_kernels_enabled():
            lists = [self.column(k).to_list() for k in keys]
            seen: set[tuple] = set()
            indices = []
            for i in range(self._length):
                key = tuple(values[i] for values in lists)
                if key not in seen:
                    seen.add(key)
                    indices.append(i)
            return self.take(np.array(indices, dtype=np.int64))
        # first-occurrence rows come out of factorisation already ascending
        return self.take(factorize(self, keys).first_rows)

    # ------------------------------------------------------------------
    # Column operations
    # ------------------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns, in the given order."""
        return Table({n: self.column(n) for n in names})

    def drop(self, *names: str) -> "Table":
        """Remove the named columns (each must exist)."""
        for n in names:
            self.column(n)  # raise if absent
        dropped = set(names)
        return Table(
            {n: c for n, c in self._columns.items() if n not in dropped}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; keys not present raise."""
        for old in mapping:
            self.column(old)
        return Table(
            {mapping.get(n, n): c for n, c in self._columns.items()}
        )

    def with_column(
        self,
        name: str,
        values: Column | Iterable[object],
        dtype: DType | str | None = None,
    ) -> "Table":
        """Add or replace a column (length must match)."""
        if isinstance(values, Column):
            column = values
        else:
            column = Column.from_values(values, dtype=dtype)
        if self._columns and len(column) != self._length:
            raise LengthMismatchError(
                f"new column {name!r} has {len(column)} values, table has "
                f"{self._length} rows"
            )
        columns = dict(self._columns)
        columns[name] = column
        return Table(columns)

    def with_derived(self, name: str, func, dtype: DType | str | None = None) -> "Table":
        """Add a column computed from each row dict via ``func(row)``."""
        values = [func(row) for row in self.iter_rows()]
        return self.with_column(name, values, dtype=dtype)

    # ------------------------------------------------------------------
    # Aggregation entry point
    # ------------------------------------------------------------------

    def groupby(self, *keys: str) -> "GroupBy":
        """Start a group-by over the given key columns."""
        from repro.tabular.groupby import GroupBy

        return GroupBy(self, list(keys))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------

    def describe(self) -> "Table":
        """Per-column summary statistics.

        Numeric columns get count/nulls/mean/std/min/max; other columns get
        count/nulls/distinct plus the modal value.  One row per column —
        the first thing an analyst prints against an unfamiliar extract.
        """
        rows = []
        for name, column in self._columns.items():
            row: dict[str, object] = {
                "column": name,
                "dtype": column.dtype.value,
                "count": column.count(),
                "nulls": column.null_count,
                "distinct": column.n_unique(),
                "mean": None,
                "std": None,
                "min": None,
                "max": None,
                "mode": None,
            }
            if column.dtype.is_numeric:
                row["mean"] = column.mean()
                row["std"] = column.std()
                row["min"] = column.min()
                row["max"] = column.max()
            else:
                counts = column.value_counts()
                if counts:
                    peak = max(counts.values())
                    row["mode"] = str(
                        min(k for k, v in counts.items() if v == peak)
                    )
                if column.dtype is not DType.BOOL:
                    row["min"] = None if column.dtype is DType.STR else row["min"]
            rows.append(row)
        schema = {
            "column": "str", "dtype": "str", "count": "int", "nulls": "int",
            "distinct": "int", "mean": "float", "std": "float",
            "min": "float", "max": "float", "mode": "str",
        }
        # min/max of non-numeric columns do not fit the float schema; drop
        for row in rows:
            if not isinstance(row["min"], (int, float)) or isinstance(row["min"], bool):
                row["min"] = None
            if not isinstance(row["max"], (int, float)) or isinstance(row["max"], bool):
                row["max"] = None
        return Table.from_rows(rows, schema=schema)

    def to_text(self, max_rows: int = 20) -> str:
        """Plain-text rendering for terminals and logs."""
        names = self.column_names
        if not names:
            return "(empty table)"
        shown = min(self._length, max_rows)
        cells = [[str(self._columns[n].value(i)) for n in names] for i in range(shown)]
        widths = [
            max(len(n), *(len(row[j]) for row in cells)) if cells else len(n)
            for j, n in enumerate(names)
        ]
        lines = [
            " | ".join(n.ljust(w) for n, w in zip(names, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in cells:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if shown < self._length:
            lines.append(f"... ({self._length - shown} more rows)")
        return "\n".join(lines)
