"""Factorisation kernels: values → dense integer codes.

This is the primitive under the vectorised group-by and join paths.
:func:`factorize_column` dictionary-encodes one column (codes + uniques,
null-aware: nulls get their own trailing code).  :func:`factorize`
combines several key columns into one dense group-code vector via
mixed-radix combination and remaps the result to first-occurrence order,
so downstream consumers (group-by buckets, join build sides) see groups
in exactly the order the per-row Python path produced.

The per-row Python kernels are kept as a reference oracle; setting the
``REPRO_SCALAR_KERNELS`` environment variable to a truthy value routes
``GroupBy``, ``hash_join`` and ``Table.distinct`` through them.  The
property suite in ``tests/tabular/test_kernel_parity.py`` asserts the two
paths agree cell-for-cell.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.tabular.column import Column
from repro.tabular.dtypes import DType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table

#: Environment switch: truthy → use the per-row scalar reference kernels.
SCALAR_KERNELS_ENV = "REPRO_SCALAR_KERNELS"

#: Mixed-radix combination stays below this bound to avoid int64 overflow;
#: past it, intermediate codes are re-compressed to a dense range first.
_RADIX_LIMIT = np.int64(1) << 62


def scalar_kernels_enabled() -> bool:
    """True when the scalar (per-row Python) reference kernels are forced."""
    return os.environ.get(SCALAR_KERNELS_ENV, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def _encode_column(column: Column) -> tuple[np.ndarray, object, int, bool]:
    """Raw dictionary encoding: ``(codes, uniques, n_codes, has_null)``.

    ``uniques`` stays in storage representation (numpy values or a Python
    list for str columns) so codes-only callers skip the Python
    conversion.  Nulls share the trailing code ``n_codes - 1`` when
    ``has_null``.
    """
    valid = column.valid
    present = column.data[valid]
    if column.dtype is DType.STR:
        # np.unique on an object array sorts with per-element Python
        # compares; a set + dict map is ~4x faster and produces the same
        # sorted uniques (both orders are code-point comparisons).
        values = present.tolist()
        uniq: object = sorted(set(values))
        lookup = {v: i for i, v in enumerate(uniq)}
        inverse = np.fromiter(
            (lookup[v] for v in values), dtype=np.int64, count=len(values)
        )
    else:
        uniq, inverse = np.unique(present, return_inverse=True)
    codes = np.empty(len(column), dtype=np.int64)
    codes[valid] = inverse
    n_codes, has_null = len(uniq), not valid.all()
    if has_null:
        codes[~valid] = n_codes
        n_codes += 1
    return codes, uniq, n_codes, has_null


def factorize_column(column: Column) -> tuple[np.ndarray, list[object]]:
    """Dictionary-encode one column.

    Returns ``(codes, uniques)`` where ``codes[i]`` indexes ``uniques`` for
    every row.  Uniques are Python values in sorted order; when the column
    has nulls they share a single trailing code whose unique is ``None``.
    """
    codes, uniq, _, has_null = _encode_column(column)
    if column.dtype is DType.STR:
        uniques: list[object] = list(uniq)
    else:
        uniques = [column._to_python(v) for v in uniq]
    if has_null:
        uniques.append(None)
    return codes, uniques


@dataclass
class Factorization:
    """Dense group codes for one or more key columns.

    ``codes`` assigns every row a group id in first-occurrence order;
    ``group_keys[g]`` is group *g*'s Python key tuple; ``first_rows[g]``
    is the row index of its first occurrence (strictly increasing).
    """

    codes: np.ndarray
    group_keys: list[tuple]
    first_rows: np.ndarray

    @property
    def n_groups(self) -> int:
        """Number of distinct key combinations."""
        return len(self.group_keys)

    def group_rows(self) -> list[np.ndarray]:
        """Row-index array per group (ascending), in group order."""
        order = np.argsort(self.codes, kind="stable")
        boundaries = np.searchsorted(
            self.codes[order], np.arange(1, self.n_groups)
        )
        return np.split(order, boundaries)


def _combine_codes(
    col_codes: list[np.ndarray], sizes: list[int]
) -> np.ndarray:
    """Mixed-radix combination of per-column codes into one code vector."""
    combined = col_codes[0]
    space = np.int64(max(sizes[0], 1))
    for codes, size in zip(col_codes[1:], sizes[1:]):
        radix = np.int64(max(size, 1))
        if space > _RADIX_LIMIT // radix:
            # re-compress to a dense range before the next radix step
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64)
            space = np.int64(len(combined) and int(combined.max()) + 1 or 1)
        combined = combined * radix + codes
        space = space * radix
    return combined


def factorize_codes(table: "Table", keys: Sequence[str]) -> np.ndarray:
    """Composite key codes only — equal key tuples share a code.

    The cheap sibling of :func:`factorize` for callers that match keys but
    never look at key *values* (the join build side): it skips the Python
    uniques and the first-occurrence remap.  Codes are dense per column
    but the combined vector is not remapped, so code values are
    order-of-magnitude ranks, not first-occurrence ranks.
    """
    encoded = [_encode_column(table.column(key)) for key in keys]
    return _combine_codes(
        [codes for codes, _, _, _ in encoded],
        [n_codes for _, _, n_codes, _ in encoded],
    )


def factorize(table: "Table", keys: Sequence[str]) -> Factorization:
    """Factorise the composite key over ``keys`` columns of ``table``."""
    col_codes: list[np.ndarray] = []
    col_uniques: list[list[object]] = []
    for key in keys:
        codes, uniques = factorize_column(table.column(key))
        col_codes.append(codes)
        col_uniques.append(uniques)

    combined = _combine_codes(col_codes, [len(u) for u in col_uniques])

    if len(combined) == 0:
        return Factorization(
            np.empty(0, dtype=np.int64), [], np.empty(0, dtype=np.int64)
        )

    _, first_pos, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    order = np.argsort(first_pos, kind="stable")
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order))
    codes = rank[np.asarray(inverse, dtype=np.int64)]
    first_rows = np.asarray(first_pos, dtype=np.int64)[order]
    group_keys = [
        tuple(uniques[int(codes_c[row])]
              for codes_c, uniques in zip(col_codes, col_uniques))
        for row in first_rows
    ]
    return Factorization(codes, group_keys, first_rows)
