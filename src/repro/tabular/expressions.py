"""Composable row-filter and value expressions.

Expressions are built from :func:`col` and :func:`lit` with ordinary Python
operators and evaluated against a :class:`~repro.tabular.table.Table`::

    mask = ((col("age") > 40) & col("sex").eq("F")).evaluate(table)

Comparison against a null is never True (SQL-style three-valued logic
collapsed to False), so filters silently drop rows with nulls in the
compared column — matching warehouse semantics where unknown members are
excluded from aggregates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.errors import DTypeError
from repro.tabular.column import Column
from repro.tabular.dtypes import DType, coerce_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tabular.table import Table


class Expression:
    """Base class: anything evaluable to a boolean mask or value column."""

    # -- boolean combinators ------------------------------------------------

    def __and__(self, other: "Expression") -> "Expression":
        return _BoolOp(self, other, np.logical_and, "AND")

    def __or__(self, other: "Expression") -> "Expression":
        return _BoolOp(self, other, np.logical_or, "OR")

    def __invert__(self) -> "Expression":
        return _NotOp(self)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, table: "Table") -> np.ndarray:
        """Evaluate to a boolean mask of the table's length."""
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """Column names this predicate reads.

        Lets planners (the materialised lattice) decide whether a filtered
        query can be answered from a projection that only carries certain
        columns.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()

    def describe(self) -> str:
        """Human-readable rendering used in error messages and audit trails."""
        raise NotImplementedError


class ColumnRef(Expression):
    """Reference to a named column; comparison operators build predicates."""

    def __init__(self, name: str):
        self.name = name

    # comparisons -------------------------------------------------------

    def __eq__(self, other: object) -> "Expression":  # type: ignore[override]
        return self.eq(other)

    def __ne__(self, other: object) -> "Expression":  # type: ignore[override]
        return ~self.eq(other)

    def __lt__(self, other: object) -> "Expression":
        return _Compare(self.name, other, np.less, "<")

    def __le__(self, other: object) -> "Expression":
        return _Compare(self.name, other, np.less_equal, "<=")

    def __gt__(self, other: object) -> "Expression":
        return _Compare(self.name, other, np.greater, ">")

    def __ge__(self, other: object) -> "Expression":
        return _Compare(self.name, other, np.greater_equal, ">=")

    def __hash__(self) -> int:
        return hash(("ColumnRef", self.name))

    def eq(self, other: object) -> "Expression":
        """Equality predicate (named form, since ``==`` builds expressions)."""
        return _Compare(self.name, other, np.equal, "==")

    def isin(self, values: Iterable[object]) -> "Expression":
        """True where the column value is one of ``values``."""
        return _IsIn(self.name, list(values))

    def is_null(self) -> "Expression":
        """True where the column is null."""
        return _IsNull(self.name, want_null=True)

    def is_not_null(self) -> "Expression":
        """True where the column is present."""
        return _IsNull(self.name, want_null=False)

    def between(self, low: object, high: object, inclusive: bool = True) -> "Expression":
        """Range predicate ``low <= col <= high`` (or strict upper bound)."""
        upper = self.__le__(high) if inclusive else self.__lt__(high)
        return (self.__ge__(low)) & upper

    def evaluate(self, table: "Table") -> np.ndarray:
        column = table.column(self.name)
        if column.dtype is not DType.BOOL:
            raise DTypeError(
                f"column {self.name!r} used as a filter must be bool, "
                f"got {column.dtype.value}"
            )
        return column.data & column.valid

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return self.name


class Literal(Expression):
    """A constant; only useful as a comparison operand."""

    def __init__(self, value: object):
        self.value = value

    def evaluate(self, table: "Table") -> np.ndarray:
        raise DTypeError("a bare literal is not a filter predicate")

    def columns(self) -> frozenset[str]:
        return frozenset()

    def describe(self) -> str:
        return repr(self.value)


class _Compare(Expression):
    def __init__(self, name: str, operand: object, ufunc: Callable, symbol: str):
        self.name = name
        self.operand = operand.value if isinstance(operand, Literal) else operand
        self.ufunc = ufunc
        self.symbol = symbol

    def evaluate(self, table: "Table") -> np.ndarray:
        column = table.column(self.name)
        operand = coerce_value(self.operand, column.dtype)
        if operand is None:
            # NULL comparisons are never true; use is_null() to test nulls.
            return np.zeros(len(column), dtype=bool)
        if column.dtype is DType.STR:
            values = column.data
            # object-array comparisons against str work element-wise via ufunc
            with np.errstate(all="ignore"):
                raw = self.ufunc(values, operand)
            raw = np.asarray(raw, dtype=bool)
        else:
            raw = self.ufunc(column.data, operand)
        return raw & column.valid

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return f"({self.name} {self.symbol} {self.operand!r})"


class _IsIn(Expression):
    def __init__(self, name: str, values: list[object]):
        self.name = name
        self.values = values

    def evaluate(self, table: "Table") -> np.ndarray:
        column = table.column(self.name)
        coerced = {
            coerce_value(v, column.dtype) for v in self.values if v is not None
        }
        raw = np.array([v in coerced for v in column.data.tolist()], dtype=bool)
        return raw & column.valid

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return f"({self.name} IN {self.values!r})"


class _IsNull(Expression):
    def __init__(self, name: str, want_null: bool):
        self.name = name
        self.want_null = want_null

    def evaluate(self, table: "Table") -> np.ndarray:
        column = table.column(self.name)
        return ~column.valid if self.want_null else column.valid.copy()

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        suffix = "IS NULL" if self.want_null else "IS NOT NULL"
        return f"({self.name} {suffix})"


class _BoolOp(Expression):
    def __init__(self, left: Expression, right: Expression, ufunc: Callable, symbol: str):
        self.left = left
        self.right = right
        self.ufunc = ufunc
        self.symbol = symbol

    def evaluate(self, table: "Table") -> np.ndarray:
        return self.ufunc(self.left.evaluate(table), self.right.evaluate(table))

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def describe(self) -> str:
        return f"({self.left.describe()} {self.symbol} {self.right.describe()})"


class _NotOp(Expression):
    def __init__(self, inner: Expression):
        self.inner = inner

    def evaluate(self, table: "Table") -> np.ndarray:
        return ~self.inner.evaluate(table)

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def describe(self) -> str:
        return f"(NOT {self.inner.describe()})"


def col(name: str) -> ColumnRef:
    """Reference a column by name for use in an expression."""
    return ColumnRef(name)


def lit(value: object) -> Literal:
    """Wrap a constant (rarely needed; plain Python values also work)."""
    return Literal(value)
