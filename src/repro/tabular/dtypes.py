"""Logical column types and their numpy storage mapping.

The engine supports five logical types:

========  =================  ============================================
logical   numpy storage      notes
========  =================  ============================================
int       ``int64``          nulls tracked in a separate validity mask
float     ``float64``        nulls stored as NaN *and* masked
str       ``object``         Python ``str`` values; nulls masked
bool      ``bool``           nulls masked
date      ``int64``          days since 1970-01-01 (proleptic Gregorian)
========  =================  ============================================

Dates are deliberately stored as integer day ordinals rather than
``datetime64`` so arithmetic (age at visit, years since diagnosis) stays in
plain integer space and serialises trivially.
"""

from __future__ import annotations

import datetime as _dt
from enum import Enum

import numpy as np

from repro.errors import DTypeError

_EPOCH = _dt.date(1970, 1, 1)


class DType(str, Enum):
    """Logical column type."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    DATE = "date"

    @classmethod
    def coerce(cls, value: "DType | str") -> "DType":
        """Accept either a :class:`DType` or its string name."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise DTypeError(f"unknown dtype {value!r} (valid: {valid})") from None

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store this logical type."""
        return _NUMPY_STORAGE[self]

    @property
    def is_numeric(self) -> bool:
        """True for types on which arithmetic aggregation makes sense."""
        return self in (DType.INT, DType.FLOAT)


_NUMPY_STORAGE = {
    DType.INT: np.dtype(np.int64),
    DType.FLOAT: np.dtype(np.float64),
    DType.STR: np.dtype(object),
    DType.BOOL: np.dtype(bool),
    DType.DATE: np.dtype(np.int64),
}

#: Placeholder stored in the data array where the validity mask is False.
NULL_SENTINELS = {
    DType.INT: 0,
    DType.FLOAT: float("nan"),
    DType.STR: None,
    DType.BOOL: False,
    DType.DATE: 0,
}


def date_to_ordinal(value: "_dt.date | str") -> int:
    """Convert a date (or ISO ``YYYY-MM-DD`` string) to days since epoch."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    if isinstance(value, _dt.datetime):
        value = value.date()
    if not isinstance(value, _dt.date):
        raise DTypeError(f"cannot interpret {value!r} as a date")
    return (value - _EPOCH).days


def ordinal_to_date(ordinal: int) -> _dt.date:
    """Convert days-since-epoch back to a :class:`datetime.date`."""
    return _EPOCH + _dt.timedelta(days=int(ordinal))


def infer_dtype(values: "list[object]") -> DType:
    """Infer the narrowest logical type that holds every non-null value.

    Preference order is bool < int < float < date < str.  An empty or
    all-null input infers ``str`` (the most permissive type).
    """
    present = [v for v in values if v is not None]
    if not present:
        return DType.STR
    if all(isinstance(v, bool) for v in present):
        return DType.BOOL
    if all(isinstance(v, int) and not isinstance(v, bool) for v in present):
        return DType.INT
    if all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in present
    ):
        return DType.FLOAT
    if all(isinstance(v, (_dt.date, _dt.datetime)) for v in present):
        return DType.DATE
    return DType.STR


def coerce_value(value: object, dtype: DType) -> object:
    """Coerce one Python value to the storage representation of ``dtype``.

    Returns the coerced value; raises :class:`DTypeError` when the value is
    incompatible.  ``None`` passes through (the caller masks it).
    """
    if value is None:
        return None
    try:
        if dtype is DType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and not float(value).is_integer():
                raise DTypeError(f"cannot store {value!r} in int column")
            return int(value)
        if dtype is DType.FLOAT:
            return float(value)
        if dtype is DType.STR:
            return str(value)
        if dtype is DType.BOOL:
            if isinstance(value, (bool, np.bool_)):
                return bool(value)
            if value in (0, 1):
                return bool(value)
            raise DTypeError(f"cannot store {value!r} in bool column")
        if dtype is DType.DATE:
            if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
                return int(value)
            return date_to_ordinal(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise DTypeError(f"cannot store {value!r} in {dtype.value} column") from exc
    raise DTypeError(f"unhandled dtype {dtype!r}")
