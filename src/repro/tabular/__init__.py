"""Columnar table engine — the in-memory substrate under every other layer.

This package is a small, dependency-free (numpy only) replacement for the
slice of pandas the DD-DGMS stack needs: typed columns with null masks,
filtering via composable expressions, group-by aggregation, hash joins and
CSV round-trips.

Quick tour::

    from repro.tabular import Table, col

    t = Table.from_rows(
        [{"age": 61, "sex": "F"}, {"age": 45, "sex": "M"}],
        schema={"age": "int", "sex": "str"},
    )
    older = t.filter(col("age") > 50)
    by_sex = t.groupby("sex").agg(n=("age", "count"), mean_age=("age", "mean"))
"""

from repro.tabular.dtypes import DType
from repro.tabular.column import Column
from repro.tabular.expressions import Expression, col, lit
from repro.tabular.factorize import (
    SCALAR_KERNELS_ENV,
    Factorization,
    factorize,
    factorize_column,
    scalar_kernels_enabled,
)
from repro.tabular.table import Table
from repro.tabular.groupby import GroupBy
from repro.tabular.join import hash_join
from repro.tabular.csvio import read_csv, write_csv

__all__ = [
    "DType",
    "Column",
    "Expression",
    "col",
    "lit",
    "SCALAR_KERNELS_ENV",
    "Factorization",
    "factorize",
    "factorize_column",
    "scalar_kernels_enabled",
    "Table",
    "GroupBy",
    "hash_join",
    "read_csv",
    "write_csv",
]
