"""Trajectory prediction and validation of known disease courses.

Ties together the warehouse's cardinality ordering, similar-patient
retrieval and the stage-transition model: "even well known disease
trajectories can be validated with the DD-DGMS approach" (paper §IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PredictionError
from repro.prediction.markov import StageTransitionModel
from repro.prediction.similarity import SimilarPatientIndex


def extract_stage_sequences(
    rows: Sequence[dict],
    patient_key: str,
    order_key: str,
    stage_key: str,
) -> dict[object, list[str]]:
    """Per-patient ordered stage sequences from visit-level rows.

    ``order_key`` is typically the cardinality visit number; rows with a
    null stage are skipped (an unstaged visit breaks no sequence).
    """
    by_patient: dict[object, list[tuple[object, str]]] = {}
    for row in rows:
        patient = row.get(patient_key)
        order = row.get(order_key)
        stage = row.get(stage_key)
        if patient is None or order is None or stage is None:
            continue
        by_patient.setdefault(patient, []).append((order, str(stage)))
    sequences: dict[object, list[str]] = {}
    for patient, visits in by_patient.items():
        visits.sort(key=lambda pair: pair[0])
        sequences[patient] = [stage for __, stage in visits]
    return sequences


@dataclass(frozen=True)
class TrajectoryValidation:
    """Result of validating a hypothesised disease course."""

    trajectory: tuple[str, ...]
    likelihood: float
    #: likelihood of the same-length most-probable path from the same start
    best_path_likelihood: float
    #: ratio of the two (1.0 == the hypothesised course IS the modal course)
    relative_plausibility: float
    supported: bool


class TrajectoryPredictor:
    """Cohort-conditioned next-stage prediction."""

    def __init__(
        self,
        rows: Sequence[dict],
        patient_key: str,
        order_key: str,
        stage_key: str,
        similarity_attributes: Sequence[str] | None = None,
        smoothing: float = 0.5,
    ):
        self.rows = list(rows)
        self.patient_key = patient_key
        self.order_key = order_key
        self.stage_key = stage_key
        self.sequences = extract_stage_sequences(
            rows, patient_key, order_key, stage_key
        )
        usable = [s for s in self.sequences.values() if len(s) >= 2]
        if not usable:
            raise PredictionError(
                "no patient has two or more staged visits; cannot model "
                "transitions"
            )
        self.model = StageTransitionModel(smoothing).fit(usable)
        self._index = (
            SimilarPatientIndex(self.rows, similarity_attributes, patient_key)
            if similarity_attributes
            else None
        )

    def predict_next_stage(self, patient_row: dict) -> tuple[str, dict[str, float]]:
        """(most probable next stage, full distribution) for one patient.

        When a similarity index is configured, the transition model is
        re-fit on the similar cohort's sequences — "past records of other
        patients in similar circumstances" — falling back to the global
        model when the cohort is too thin.
        """
        current = patient_row.get(self.stage_key)
        if current is None:
            raise PredictionError("patient row has no current stage")
        current = str(current)
        model = self.model
        if self._index is not None:
            cohort = self._index.cohort_for(patient_row, min_similarity=0.6)
            cohort_patients = {row.get(self.patient_key) for row in cohort}
            cohort_sequences = [
                sequence
                for patient, sequence in self.sequences.items()
                if patient in cohort_patients and len(sequence) >= 2
            ]
            if sum(len(s) - 1 for s in cohort_sequences) >= 10:
                model = StageTransitionModel(self.model.smoothing).fit(
                    cohort_sequences
                )
        if current not in model.states:
            model = self.model
        if current not in model.states:
            raise PredictionError(
                f"stage {current!r} never observed "
                f"(known: {', '.join(self.model.states)})"
            )
        return model.predict_next(current), model.distribution_after(current)

    def validate_trajectory(
        self, trajectory: Sequence[str], plausibility_floor: float = 0.5
    ) -> TrajectoryValidation:
        """Check a hypothesised course against observed transitions.

        The hypothesised trajectory is *supported* when its likelihood is
        at least ``plausibility_floor`` times that of the most probable
        path of the same length from the same starting stage.
        """
        if len(trajectory) < 2:
            raise PredictionError("a trajectory needs at least two stages")
        likelihood = self.model.sequence_likelihood(list(trajectory))
        best_path = [trajectory[0]] + self.model.predict_path(
            trajectory[0], len(trajectory) - 1
        )
        best_likelihood = self.model.sequence_likelihood(best_path)
        ratio = likelihood / best_likelihood if best_likelihood > 0 else 0.0
        return TrajectoryValidation(
            trajectory=tuple(trajectory),
            likelihood=likelihood,
            best_path_likelihood=best_likelihood,
            relative_plausibility=ratio,
            supported=ratio >= plausibility_floor,
        )
