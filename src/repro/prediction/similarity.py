"""Similar-patient retrieval over warehouse attributes."""

from __future__ import annotations

from typing import Sequence

from repro.errors import PredictionError


class SimilarPatientIndex:
    """Find patients whose dimensional profile resembles a probe patient.

    Built from flattened warehouse rows (one per patient or visit).
    Similarity is the mean per-attribute match: exact match for
    categorical attributes, range-normalised closeness for numeric ones;
    attributes missing on either side score zero (unknown ≠ similar).
    """

    def __init__(
        self,
        rows: Sequence[dict],
        attributes: Sequence[str],
        patient_key: str,
    ):
        if not rows:
            raise PredictionError("no rows to index")
        if not attributes:
            raise PredictionError("no attributes to compare on")
        self.attributes = list(attributes)
        self.patient_key = patient_key
        self._rows = list(rows)
        self._ranges: dict[str, tuple[float, float]] = {}
        for attribute in self.attributes:
            present = [
                row[attribute]
                for row in self._rows
                if row.get(attribute) is not None
            ]
            if present and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in present
            ):
                low, high = float(min(present)), float(max(present))
                self._ranges[attribute] = (low, max(high - low, 1e-12))

    def similarity(self, a: dict, b: dict) -> float:
        """Mean per-attribute similarity in [0, 1]."""
        total = 0.0
        for attribute in self.attributes:
            va, vb = a.get(attribute), b.get(attribute)
            if va is None or vb is None:
                continue
            if attribute in self._ranges:
                __, span = self._ranges[attribute]
                total += max(0.0, 1.0 - abs(float(va) - float(vb)) / span)
            else:
                total += 1.0 if str(va) == str(vb) else 0.0
        return total / len(self.attributes)

    def most_similar(
        self,
        probe: dict,
        top: int = 10,
        exclude_same_patient: bool = True,
    ) -> list[tuple[float, dict]]:
        """The ``top`` most similar rows as (similarity, row), descending.

        ``exclude_same_patient`` drops rows sharing the probe's patient key
        — when predicting a patient's next phase, their own history must
        not leak in as "similar circumstances".
        """
        probe_patient = probe.get(self.patient_key)
        scored = []
        for row in self._rows:
            if (
                exclude_same_patient
                and probe_patient is not None
                and row.get(self.patient_key) == probe_patient
            ):
                continue
            scored.append((self.similarity(probe, row), row))
        scored.sort(key=lambda pair: -pair[0])
        return scored[:top]

    def cohort_for(
        self, probe: dict, min_similarity: float = 0.7
    ) -> list[dict]:
        """All rows at or above a similarity floor (a reference cohort)."""
        return [
            row
            for score, row in self.most_similar(
                probe, top=len(self._rows), exclude_same_patient=True
            )
            if score >= min_similarity
        ]
