"""Disease-stage Markov chain estimated from visit-to-visit transitions."""

from __future__ import annotations

from typing import Sequence

from repro.errors import PredictionError


class StageTransitionModel:
    """First-order Markov model over qualitative disease stages.

    Fit on per-patient stage sequences (the output of temporal abstraction
    + cardinality ordering).  Laplace smoothing keeps unseen transitions
    possible but unlikely.
    """

    def __init__(self, smoothing: float = 0.5):
        if smoothing < 0:
            raise PredictionError("smoothing must be non-negative")
        self.smoothing = smoothing
        self._fitted = False

    def fit(self, sequences: Sequence[Sequence[str]]) -> "StageTransitionModel":
        """Count transitions across all sequences."""
        transitions: dict[str, dict[str, int]] = {}
        states: set[str] = set()
        total_transitions = 0
        for sequence in sequences:
            for current, following in zip(sequence, sequence[1:]):
                states.add(current)
                states.add(following)
                transitions.setdefault(current, {})
                transitions[current][following] = (
                    transitions[current].get(following, 0) + 1
                )
                total_transitions += 1
            for state in sequence:
                states.add(state)
        if total_transitions == 0:
            raise PredictionError(
                "no transitions observed (sequences of length < 2?)"
            )
        self.states = sorted(states)
        self._counts = transitions
        self._fitted = True
        return self

    def transition_probability(self, current: str, following: str) -> float:
        """P(next = following | current), Laplace-smoothed."""
        if not self._fitted:
            raise PredictionError("StageTransitionModel used before fit()")
        if current not in self.states or following not in self.states:
            raise PredictionError(
                f"unknown stage in transition {current!r} -> {following!r} "
                f"(known: {', '.join(self.states)})"
            )
        row = self._counts.get(current, {})
        total = sum(row.values())
        k = len(self.states)
        return (row.get(following, 0) + self.smoothing) / (
            total + self.smoothing * k
        )

    def distribution_after(self, current: str) -> dict[str, float]:
        """Full next-stage distribution from ``current``."""
        return {
            state: self.transition_probability(current, state)
            for state in self.states
        }

    def predict_next(self, current: str) -> str:
        """Most probable next stage."""
        dist = self.distribution_after(current)
        return max(sorted(dist), key=lambda s: dist[s])

    def predict_path(self, current: str, steps: int) -> list[str]:
        """Greedy most-probable path of ``steps`` stages ahead."""
        if steps < 1:
            raise PredictionError("steps must be >= 1")
        path = []
        state = current
        for __ in range(steps):
            state = self.predict_next(state)
            path.append(state)
        return path

    def stationary_hint(self, iterations: int = 200) -> dict[str, float]:
        """Approximate long-run stage distribution by power iteration.

        Useful to a strategic user: the equilibrium case-mix the current
        transition behaviour implies.
        """
        if not self._fitted:
            raise PredictionError("StageTransitionModel used before fit()")
        dist = {state: 1.0 / len(self.states) for state in self.states}
        for __ in range(iterations):
            new = {state: 0.0 for state in self.states}
            for current, mass in dist.items():
                for following in self.states:
                    new[following] += mass * self.transition_probability(
                        current, following
                    )
            dist = new
        return dist

    def expected_steps_to(self, target: str) -> dict[str, float]:
        """Expected number of transitions until first reaching ``target``.

        Classic absorption analysis: make ``target`` absorbing, solve
        ``(I - Q) t = 1`` over the transient states.  For the DiScRi
        model this answers "how many visit-cycles until a pre-diabetic
        patient is expected to present as diabetic?".  States that cannot
        reach the target get ``inf``.
        """
        import numpy as np

        if not self._fitted:
            raise PredictionError("StageTransitionModel used before fit()")
        if target not in self.states:
            raise PredictionError(
                f"unknown target stage {target!r} "
                f"(known: {', '.join(self.states)})"
            )
        transient = [state for state in self.states if state != target]
        if not transient:
            return {target: 0.0}
        n = len(transient)
        Q = np.zeros((n, n))
        for i, current in enumerate(transient):
            for j, following in enumerate(transient):
                Q[i, j] = self.transition_probability(current, following)
        try:
            times = np.linalg.solve(np.eye(n) - Q, np.ones(n))
        except np.linalg.LinAlgError:
            times = np.full(n, float("inf"))
        out = {target: 0.0}
        for state, value in zip(transient, times):
            out[state] = float(value) if value > 0 else float("inf")
        return out

    def sequence_likelihood(self, sequence: Sequence[str]) -> float:
        """Product of transition probabilities along a sequence."""
        if len(sequence) < 2:
            raise PredictionError("need at least two stages for a likelihood")
        likelihood = 1.0
        for current, following in zip(sequence, sequence[1:]):
            likelihood *= self.transition_probability(current, following)
        return likelihood
