"""Prediction (paper §IV, "Prediction").

"The availability of time-course analysis capabilities allows a clinician
to use the warehouse to predict the subsequent phase of a patient affected
by a medical condition based on past records of other patients in similar
circumstances."

* :mod:`repro.prediction.similarity` — retrieve those "other patients in
  similar circumstances" from the warehouse's dimensional attributes.
* :mod:`repro.prediction.markov` — a disease-stage Markov chain estimated
  from observed visit-to-visit transitions.
* :mod:`repro.prediction.trajectory` — combine both: predict a patient's
  next stage and validate well-known disease trajectories.
"""

from repro.prediction.similarity import SimilarPatientIndex
from repro.prediction.markov import StageTransitionModel
from repro.prediction.simulation import (
    CohortProjection,
    CohortSimulator,
    ProjectionStep,
)
from repro.prediction.trajectory import (
    TrajectoryPredictor,
    TrajectoryValidation,
    extract_stage_sequences,
)

__all__ = [
    "SimilarPatientIndex",
    "StageTransitionModel",
    "CohortSimulator",
    "CohortProjection",
    "ProjectionStep",
    "TrajectoryPredictor",
    "TrajectoryValidation",
    "extract_stage_sequences",
]
