"""Cohort progression simulation (the "simulation" of DGMS phase 2).

Projects the screening cohort's stage mix forward in time using the
fitted :class:`~repro.prediction.markov.StageTransitionModel` — either
deterministically (expected counts via the transition matrix) or as a
seeded Monte-Carlo over individual patients.  Strategic users feed the
projections into capacity and budget planning.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import PredictionError
from repro.prediction.markov import StageTransitionModel


@dataclass
class ProjectionStep:
    """Stage mix after one simulated period."""

    period: int
    counts: dict[str, float]

    def total(self) -> float:
        """Cohort size at this step (conserved by the simulation)."""
        return sum(self.counts.values())


@dataclass
class CohortProjection:
    """A full projection: one step per simulated period."""

    steps: list[ProjectionStep]

    def final(self) -> ProjectionStep:
        """The last step."""
        return self.steps[-1]

    def series(self, stage: str) -> list[float]:
        """One stage's count over time (chart-ready)."""
        return [step.counts.get(stage, 0.0) for step in self.steps]

    def to_text(self) -> str:
        """A small table: periods × stages."""
        stages = sorted(self.steps[0].counts)
        header = "period | " + " | ".join(f"{s:>12}" for s in stages)
        lines = [header, "-" * len(header)]
        for step in self.steps:
            cells = " | ".join(f"{step.counts.get(s, 0.0):12.1f}" for s in stages)
            lines.append(f"{step.period:>6} | {cells}")
        return "\n".join(lines)


class CohortSimulator:
    """Forward simulation of a cohort through the stage-transition model."""

    def __init__(self, model: StageTransitionModel):
        self.model = model

    def _check_counts(self, initial: Mapping[str, float]) -> dict[str, float]:
        if not initial:
            raise PredictionError("no initial stage counts supplied")
        unknown = set(initial) - set(self.model.states)
        if unknown:
            raise PredictionError(
                f"unknown stages in initial counts: {sorted(unknown)} "
                f"(model knows: {', '.join(self.model.states)})"
            )
        counts = {state: 0.0 for state in self.model.states}
        for state, count in initial.items():
            if count < 0:
                raise PredictionError(f"negative count for stage {state!r}")
            counts[state] = float(count)
        if sum(counts.values()) <= 0:
            raise PredictionError("initial cohort is empty")
        return counts

    def project_expected(
        self, initial: Mapping[str, float], periods: int
    ) -> CohortProjection:
        """Deterministic projection: expected counts per period.

        One period = one visit-to-visit transition of the fitted model.
        Cohort size is conserved (the model has no entry/exit states).
        """
        if periods < 1:
            raise PredictionError("periods must be >= 1")
        counts = self._check_counts(initial)
        steps = [ProjectionStep(0, dict(counts))]
        for period in range(1, periods + 1):
            nxt = {state: 0.0 for state in self.model.states}
            for current, mass in counts.items():
                if mass == 0:
                    continue
                for following in self.model.states:
                    nxt[following] += mass * self.model.transition_probability(
                        current, following
                    )
            counts = nxt
            steps.append(ProjectionStep(period, dict(counts)))
        return CohortProjection(steps)

    def project_monte_carlo(
        self,
        initial: Mapping[str, float],
        periods: int,
        runs: int = 50,
        seed: int = 0,
    ) -> tuple[CohortProjection, dict[str, tuple[float, float]]]:
        """Stochastic projection: per-patient sampling, averaged over runs.

        Returns (mean projection, final-period (low, high) band per stage
        from the 10th/90th percentile across runs).
        """
        if runs < 1:
            raise PredictionError("runs must be >= 1")
        counts = self._check_counts(initial)
        patients = [
            state for state, n in counts.items() for __ in range(int(round(n)))
        ]
        if not patients:
            raise PredictionError("initial cohort rounds to zero patients")
        rng = random.Random(seed)
        states = self.model.states
        per_run_finals: list[dict[str, int]] = []
        sums = [
            {state: 0.0 for state in states} for __ in range(periods + 1)
        ]
        for __ in range(runs):
            current = list(patients)
            for state in current:
                sums[0][state] += 1
            for period in range(1, periods + 1):
                nxt = []
                for state in current:
                    weights = [
                        self.model.transition_probability(state, following)
                        for following in states
                    ]
                    nxt.append(rng.choices(states, weights=weights, k=1)[0])
                current = nxt
                for state in current:
                    sums[period][state] += 1
            finals: dict[str, int] = {state: 0 for state in states}
            for state in current:
                finals[state] += 1
            per_run_finals.append(finals)

        steps = [
            ProjectionStep(
                period, {state: total / runs for state, total in sums[period].items()}
            )
            for period in range(periods + 1)
        ]
        bands: dict[str, tuple[float, float]] = {}
        for state in states:
            values = sorted(run[state] for run in per_run_finals)
            low = values[int(0.1 * (len(values) - 1))]
            high = values[int(0.9 * (len(values) - 1))]
            bands[state] = (float(low), float(high))
        return CohortProjection(steps), bands
