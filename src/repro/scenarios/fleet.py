"""Crash-isolated fleet runner: scenarios fanned across a process pool.

Every scenario runs in its *own* OS process so an injected die-style
kill (``os._exit``) — or any genuine worker death — is an observation,
not a sweep failure: the parent reaps the corpse, records a structured
outcome, and moves on.  The parent enforces a per-scenario wall-clock
deadline (terminate + record ``timeout``) and retries failed attempts
with exponential backoff; a retry after a crash re-enters the scenario
workdir, so die-style scenarios recover from their durable root exactly
like a restarted service would.

Worker <-> parent protocol is files, not pipes, so a dead worker still
leaves evidence: ``events.jsonl`` is appended and flushed per event, and
each attempt's result lands in ``attempt-N.json`` (atomic rename).  Only
the parent writes the ledger's final ``result.json``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import time
import traceback
from collections import deque
from pathlib import Path

from repro.scenarios.ledger import SweepLedger
from repro.scenarios.runner import CRASH_EXIT_CODE, run_scenario
from repro.scenarios.spec import ScenarioSpec

#: base delay before a retry attempt (doubled per attempt)
RETRY_BACKOFF_S = 0.25

#: parent poll interval while workers run
_POLL_S = 0.05


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_entry(spec_payload: dict, workdir: str, attempt: int) -> None:
    """Process target: run one scenario attempt, leave files behind."""
    from repro.storage.durable import atomic_write_json

    spec = ScenarioSpec.from_json(spec_payload)
    events_path = Path(workdir) / "events.jsonl"
    with open(events_path, "a", encoding="utf-8") as events:

        def emit(event: dict) -> None:
            # flush per line: a killed worker keeps everything emitted
            events.write(json.dumps(
                {"t": round(time.time(), 3), **event}, default=str
            ) + "\n")
            events.flush()
            os.fsync(events.fileno())

        try:
            result = run_scenario(
                spec, workdir, attempt=attempt, emit=emit
            )
        except BaseException as exc:  # noqa: BLE001 - reported, then fatal
            emit({
                "event": "worker_error",
                "error_type": type(exc).__name__,
                "error": str(exc),
                "traceback": traceback.format_exc(),
            })
            raise SystemExit(3)
        atomic_write_json(
            Path(workdir) / f"attempt-{attempt}.json", result
        )
    raise SystemExit(0)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


def _reset_workdir(directory: Path) -> None:
    """Scrub mutable attempt state; keep the pinned spec."""
    for name in ("durable", "baseline.json", "events.jsonl", "result.json"):
        path = directory / name
        if path.is_dir():
            shutil.rmtree(path)
        elif path.exists():
            path.unlink()
    for attempt_file in directory.glob("attempt-*.json"):
        attempt_file.unlink()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _Run:
    """Book-keeping for one scenario across its attempts."""

    __slots__ = (
        "spec", "attempt", "crashes", "timeouts", "errors",
        "started_at", "not_before",
    )

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.attempt = 0
        self.crashes = 0
        self.timeouts = 0
        self.errors = 0
        self.started_at = time.monotonic()
        self.not_before = 0.0

    @property
    def attempts_left(self) -> int:
        return self.spec.retries + 1 - self.attempt


def run_fleet(
    specs: "list[ScenarioSpec]",
    root: "str | Path",
    *,
    jobs: int | None = None,
    fresh: bool = False,
    progress=None,
) -> dict:
    """Execute the due scenarios; returns ``{slug: result_record}``.

    Resume contract: with ``fresh=False`` only scenarios without a
    recorded ``ok`` run (their workdirs are scrubbed first, so every
    executed attempt 1 starts from a clean durable root); recorded
    ``ok`` results are returned as-is with ``"resumed": True``.
    """
    ledger = SweepLedger(root)
    progress = progress or (lambda message: None)
    due = ledger.pending(specs, fresh=fresh)
    due_slugs = {spec.slug for spec in due}
    results: dict[str, dict] = {}
    for spec in specs:
        if spec.slug not in due_slugs:
            recorded = ledger.result(spec)
            assert recorded is not None
            results[spec.slug] = {**recorded, "resumed": True}
    if not due:
        return results

    ctx = _mp_context()
    if jobs is None:
        jobs = min(len(due), max(2, (os.cpu_count() or 2) - 1))
    jobs = max(1, jobs)
    progress(
        f"running {len(due)}/{len(specs)} scenarios "
        f"({len(specs) - len(due)} already ok), {jobs} workers"
    )

    queue: deque[_Run] = deque()
    for spec in due:
        directory = ledger.prepare(spec)
        _reset_workdir(directory)
        queue.append(_Run(spec))
    active: list[tuple] = []  # (process, run, deadline_at)

    def launch(run: _Run) -> None:
        run.attempt += 1
        workdir = str(ledger.scenario_dir(run.spec))
        process = ctx.Process(
            target=_worker_entry,
            args=(run.spec.to_json(), workdir, run.attempt),
            daemon=True,
        )
        process.start()
        active.append((process, run, time.monotonic() + run.spec.deadline_s))

    def finalize(run: _Run, status: str, attempt_result: dict | None) -> None:
        record = dict(attempt_result or {})
        record.setdefault("scenario_id", run.spec.scenario_id)
        record.setdefault("name", run.spec.name)
        record.setdefault("profile", run.spec.profile)
        record.setdefault("plan", run.spec.plan)
        record.setdefault("regime", run.spec.regime)
        record["status"] = status
        record["attempts"] = run.attempt
        record["crashed_attempts"] = run.crashes
        record["timeout_attempts"] = run.timeouts
        record["error_attempts"] = run.errors
        record["wall_s"] = round(time.monotonic() - run.started_at, 4)
        ledger.record(run.spec, record)
        results[run.spec.slug] = record
        progress(
            f"  {run.spec.name}: {status} "
            f"(attempts={run.attempt}, crashes={run.crashes})"
        )

    def note(run: _Run, event: dict) -> None:
        events_path = ledger.scenario_dir(run.spec) / "events.jsonl"
        with open(events_path, "a", encoding="utf-8") as events:
            events.write(json.dumps(
                {"t": round(time.time(), 3), **event}, default=str
            ) + "\n")

    def retry_or(run: _Run, status: str) -> None:
        if run.attempts_left > 0:
            run.not_before = (
                time.monotonic() + RETRY_BACKOFF_S * (2 ** (run.attempt - 1))
            )
            queue.append(run)
        else:
            finalize(run, status, None)

    def reap(process, run: _Run) -> None:
        attempt_path = (
            ledger.scenario_dir(run.spec) / f"attempt-{run.attempt}.json"
        )
        exitcode = process.exitcode
        if exitcode == 0 and attempt_path.exists():
            attempt_result = json.loads(attempt_path.read_text())
            finalize(run, attempt_result["status"], attempt_result)
            return
        if exitcode == CRASH_EXIT_CODE or (
            exitcode is not None and exitcode < 0
        ):
            # the injected (or real) kill: isolated, recorded, retried
            run.crashes += 1
            note(run, {
                "event": "worker_died", "exitcode": exitcode,
                "attempt": run.attempt,
            })
            retry_or(run, "crashed")
            return
        run.errors += 1
        note(run, {
            "event": "worker_failed", "exitcode": exitcode,
            "attempt": run.attempt,
        })
        retry_or(run, "error")

    while queue or active:
        now = time.monotonic()
        while queue and len(active) < jobs:
            if queue[0].not_before > now:
                break
            launch(queue.popleft())
        if not active:
            if queue:
                time.sleep(
                    max(_POLL_S, min(r.not_before for r in queue) - now)
                )
            continue
        time.sleep(_POLL_S)
        still_active = []
        for process, run, deadline_at in active:
            if process.is_alive():
                if time.monotonic() >= deadline_at:
                    process.terminate()
                    process.join(2.0)
                    if process.is_alive():  # pragma: no cover - stuck child
                        process.kill()
                        process.join(1.0)
                    run.timeouts += 1
                    note(run, {
                        "event": "deadline_exceeded",
                        "deadline_s": run.spec.deadline_s,
                        "attempt": run.attempt,
                    })
                    retry_or(run, "timeout")
                else:
                    still_active.append((process, run, deadline_at))
                continue
            process.join()
            reap(process, run)
        active = still_active
    return results
