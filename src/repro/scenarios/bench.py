"""The ``python -m repro sweep`` harness: run the matrix, score it.

Produces ``BENCH_scenarios.json``: outcome counts, the loop-level
invariant pass rate (the CI gate — must be 1.0), crash-isolation
accounting, and p50/p99 closed-loop latency per size/dirt regime.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.scenarios.fleet import run_fleet
from repro.scenarios.ledger import OUTCOMES, SweepLedger
from repro.scenarios.spec import ScenarioSpec, default_matrix


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, round(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def run_sweep(
    specs: "list[ScenarioSpec] | None" = None,
    *,
    root: "str | Path" = "sweep-out",
    out: "str | Path | None" = "BENCH_scenarios.json",
    jobs: int | None = None,
    fresh: bool = False,
    seed: int = 7,
    deadline_s: float = 120.0,
    progress=None,
) -> dict:
    """Run the scenario sweep and write the benchmark payload.

    With no ``specs`` the stock :func:`default_matrix` runs.  Re-running
    over the same ``root`` executes only scenarios that are missing or
    not ``ok`` (``fresh=True`` forces everything).
    """
    if specs is None:
        specs = default_matrix(seed=seed, deadline_s=deadline_s)
    started = time.perf_counter()
    results = run_fleet(
        specs, root, jobs=jobs, fresh=fresh, progress=progress
    )

    outcome_counts = {status: 0 for status in OUTCOMES}
    violations: list[dict] = []
    latency_by_regime: dict[str, list[float]] = {}
    crashes_isolated = 0
    resumed = 0
    for spec in specs:
        record = results[spec.slug]
        status = record["status"]
        outcome_counts[status] = outcome_counts.get(status, 0) + 1
        crashes_isolated += int(record.get("crashed_attempts", 0))
        resumed += int(bool(record.get("resumed")))
        if status != "ok":
            violations.append({
                "name": spec.name,
                "status": status,
                "violations": record.get("violations", []),
                "invariants": record.get("invariants", {}),
            })
        if record.get("loop_s") is not None:
            latency_by_regime.setdefault(spec.regime, []).append(
                float(record["loop_s"]) * 1e3
            )

    ok = outcome_counts.get("ok", 0)
    payload = {
        "harness": "chaos-scenario-sweep",
        "matrix": {
            "scenarios": len(specs),
            "profiles": sorted({spec.profile for spec in specs}),
            "plans": sorted({spec.plan for spec in specs}),
            "regimes": sorted({spec.regime for spec in specs}),
        },
        "outcomes": outcome_counts,
        "invariant_pass_rate": round(ok / len(specs), 6) if specs else 1.0,
        "violations": violations,
        "crashed_workers_isolated": crashes_isolated,
        "resumed_scenarios": resumed,
        "executed_scenarios": len(specs) - resumed,
        "loop_latency_ms_by_regime": {
            regime: {
                "n": len(values),
                "p50": round(_percentile(values, 50), 3),
                "p99": round(_percentile(values, 99), 3),
            }
            for regime, values in sorted(latency_by_regime.items())
        },
        "sweep_s": round(time.perf_counter() - started, 3),
        "root": str(root),
        "ok": ok == len(specs),
    }
    if out is not None:
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def format_summary(payload: dict) -> str:
    """Human-readable sweep summary for the CLI."""
    lines = [
        "== chaos scenario sweep ==",
        "scenarios          "
        f"{payload['matrix']['scenarios']} "
        f"({len(payload['matrix']['profiles'])} profiles x "
        f"{len(payload['matrix']['plans'])} plans x "
        f"{len(payload['matrix']['regimes'])} regimes)",
        "outcomes           " + ", ".join(
            f"{status}={count}"
            for status, count in sorted(payload["outcomes"].items())
            if count
        ),
        f"invariant pass     {payload['invariant_pass_rate']:.1%}",
        "crashed workers    "
        f"{payload['crashed_workers_isolated']} (all isolated)",
        "resumed / executed "
        f"{payload['resumed_scenarios']} / {payload['executed_scenarios']}",
    ]
    for regime, stats in payload["loop_latency_ms_by_regime"].items():
        lines.append(
            f"loop latency       {regime:<12} "
            f"p50={stats['p50']:.0f}ms p99={stats['p99']:.0f}ms "
            f"(n={stats['n']})"
        )
    for violation in payload["violations"]:
        lines.append(
            f"VIOLATION          {violation['name']}: {violation['status']} "
            f"{','.join(violation['violations']) or ''}"
        )
    lines.append(f"sweep wall time    {payload['sweep_s']:.1f}s")
    lines.append("verdict            " + ("OK" if payload["ok"] else "FAILED"))
    return "\n".join(lines)


def list_matrix(specs: "list[ScenarioSpec] | None" = None, seed: int = 7) -> str:
    """One line per scenario of the (default) matrix."""
    if specs is None:
        specs = default_matrix(seed=seed)
    lines = []
    for spec in specs:
        fault_text = ",".join(
            f"{f.point}:{f.mode}@{f.nth}" for f in spec.faults
        ) or "none"
        lines.append(
            f"{spec.slug:<52} {spec.regime:<12} "
            f"style={spec.crash_style:<8} faults={fault_text}"
        )
    return "\n".join(lines)
