"""Chaos scenario sweeps: the full DD-DGMS closed loop under a fault matrix.

The harness behind ``python -m repro sweep``.  A declarative
:class:`~repro.scenarios.spec.ScenarioSpec` pins one cell of the sweep
matrix (disease profile x size/dirt regime x fault plan); the fleet
(:func:`~repro.scenarios.fleet.run_fleet`) fans the cells across
crash-isolated worker processes with per-scenario deadlines and
retry-with-backoff; the ledger (:class:`~repro.scenarios.ledger.SweepLedger`)
content-addresses each scenario's artifact directory so a re-run resumes
exactly the missing/failed cells.  Each scenario drives ingest -> OLAP ->
mining -> prediction -> optimisation -> feedback-fold against an injected
fault plan and checks loop-level invariants against a clean-twin oracle
(see :mod:`repro.scenarios.runner`).
"""

from repro.scenarios.bench import format_summary, list_matrix, run_sweep
from repro.scenarios.fleet import run_fleet
from repro.scenarios.ledger import OUTCOMES, SweepLedger
from repro.scenarios.runner import (
    CRASH_EXIT_CODE,
    battery_fingerprint,
    run_scenario,
)
from repro.scenarios.spec import (
    CRASH_STYLES,
    FAULT_SCOPES,
    FaultSpec,
    ScenarioSpec,
    default_matrix,
)

__all__ = [
    "FaultSpec", "ScenarioSpec", "default_matrix",
    "CRASH_STYLES", "FAULT_SCOPES", "CRASH_EXIT_CODE",
    "run_scenario", "battery_fingerprint",
    "run_fleet", "SweepLedger", "OUTCOMES",
    "run_sweep", "format_summary", "list_matrix",
]
