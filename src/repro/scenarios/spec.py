"""Declarative chaos-scenario specs and the default sweep matrix.

A :class:`ScenarioSpec` pins everything one closed-loop chaos run needs:
the cohort (disease profile x size x dirt regime), the system shape
(storage / incremental / lattice), and the :class:`FaultSpec` list armed
while the loop runs.  Specs are plain data — JSON round-trippable and
content-addressed (:attr:`ScenarioSpec.scenario_id` hashes the canonical
spec JSON), so the sweep ledger can tell "already ran exactly this"
from "the spec changed; run it again" without timestamps.

Fault points/modes come from :mod:`repro.storage.faults` and are
validated at construction: a typo'd point fails the spec, not the sweep.
``scope="first_attempt"`` marks rules the fleet must *not* re-arm on a
retry attempt — the spelling for die-style kills, where attempt 2 is the
recovery run and must be allowed to finish.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.discri.phenomena import DISEASE_PROFILES
from repro.errors import ReproError
from repro.storage.faults import FaultRule, _MODES, validate_points

#: how a scenario experiences an injected ``kill``
#:
#: ``recover``
#:     The runner catches :class:`~repro.storage.faults.SimulatedCrash`
#:     in-process, calls :meth:`~repro.dgms.system.DDDGMS.recover` and
#:     re-ingests idempotently — the classic crash-recovery test shape.
#: ``die``
#:     The worker *actually exits* (``os._exit(137)``) so the fleet sees
#:     a dead process; the retry attempt recovers from the durable root.
CRASH_STYLES = ("recover", "die")

#: when a fault rule is armed across fleet retry attempts
FAULT_SCOPES = ("always", "first_attempt")


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule of a scenario plan (a serialisable FaultRule)."""

    point: str
    mode: str = "error"
    nth: int = 1
    scope: str = "always"
    keep_fraction: float = 0.5
    delay_s: float | None = None

    def __post_init__(self) -> None:
        validate_points([self.point])
        if self.mode not in _MODES:
            raise ReproError(
                f"unknown fault mode {self.mode!r} (valid: {', '.join(_MODES)})"
            )
        if self.scope not in FAULT_SCOPES:
            raise ReproError(
                f"unknown fault scope {self.scope!r} "
                f"(valid: {', '.join(FAULT_SCOPES)})"
            )
        if self.nth < 0:
            raise ReproError(f"fault nth must be >= 0, got {self.nth}")
        if self.mode in ("kill", "short") and self.nth == 0:
            # an every-hit crash can never converge: each recovery re-runs
            # the boundary and dies again, forever
            raise ReproError(
                f"{self.mode!r} faults need nth >= 1 (an every-hit crash "
                f"at {self.point!r} would make the scenario unfinishable)"
            )

    def to_rule(self) -> FaultRule:
        return FaultRule(
            point=self.point, mode=self.mode, nth=self.nth,
            keep_fraction=self.keep_fraction, delay_s=self.delay_s,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the sweep matrix: cohort x system shape x fault plan."""

    name: str
    profile: str = "discri"
    patients: int = 30
    batch_patients: int = 8
    seed: int = 7
    missing_rate: float = 0.02
    erroneous_rate: float = 0.002
    #: fraction of the ingest batch deliberately corrupted (quarantine food)
    dirty_rate: float = 0.0
    faults: tuple[FaultSpec, ...] = ()
    #: display name of the fault plan (for grouping in the summary)
    plan: str = "clean"
    crash_style: str = "recover"
    storage: bool = False
    incremental: bool = True
    lattice: bool = False
    #: wall-clock budget for one attempt, enforced by the fleet (seconds)
    deadline_s: float = 120.0
    #: extra attempts after a crash/transient failure
    retries: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("scenario name cannot be empty")
        if self.profile not in DISEASE_PROFILES:
            raise ReproError(
                f"unknown disease profile {self.profile!r} "
                f"(registered: {', '.join(DISEASE_PROFILES)})"
            )
        if self.crash_style not in CRASH_STYLES:
            raise ReproError(
                f"unknown crash style {self.crash_style!r} "
                f"(valid: {', '.join(CRASH_STYLES)})"
            )
        if self.patients < 2 or self.batch_patients < 1:
            raise ReproError("scenario cohorts need patients>=2, batch>=1")
        if not (0.0 <= self.dirty_rate <= 1.0):
            raise ReproError(f"dirty_rate must be in [0,1], got {self.dirty_rate}")
        if self.deadline_s <= 0:
            raise ReproError("deadline_s must be positive")
        if self.retries < 0:
            raise ReproError("retries must be >= 0")
        object.__setattr__(self, "faults", tuple(
            f if isinstance(f, FaultSpec) else FaultSpec(**f)
            for f in self.faults
        ))

    # -- identity -------------------------------------------------------

    def to_json(self) -> dict:
        """The canonical JSON form (key-sorted by the hasher)."""
        payload = asdict(self)
        payload["faults"] = [asdict(f) for f in self.faults]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ScenarioSpec":
        data = dict(payload)
        data.pop("scenario_id", None)
        data["faults"] = tuple(
            FaultSpec(**f) for f in data.get("faults", ())
        )
        return cls(**data)

    @property
    def scenario_id(self) -> str:
        """Content address: first 12 hex of the canonical spec digest."""
        canon = json.dumps(self.to_json(), sort_keys=True, default=str)
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]

    @property
    def slug(self) -> str:
        """Ledger directory name: human name + content address."""
        return f"{self.name}-{self.scenario_id}"

    def rules_for_attempt(self, attempt: int) -> list[FaultRule]:
        """The fault rules armed on the given (1-based) attempt."""
        return [
            f.to_rule() for f in self.faults
            if f.scope == "always" or attempt == 1
        ]

    @property
    def regime(self) -> str:
        """Size/dirt regime label used for latency grouping."""
        dirty = "dirty" if self.dirty_rate > 0 else "clean"
        size = "small" if self.patients <= 40 else "mid"
        return f"{size}-{dirty}"


# ---------------------------------------------------------------------------
# The default sweep matrix
# ---------------------------------------------------------------------------

#: the two stock fault plans of the default matrix
def _kill_mid_loop(crash_style: str) -> tuple[str, tuple[FaultSpec, ...]]:
    # the 4th wal.commit lands mid-ingest (initial load + checkpoint come
    # first), so the crash interrupts a half-applied batch.  die-style
    # kills are first-attempt-only: the retry is the recovery run.
    scope = "first_attempt" if crash_style == "die" else "always"
    return "kill-mid-loop", (
        FaultSpec("wal.commit", mode="kill", nth=4, scope=scope),
    )


def _flaky_deps() -> tuple[str, tuple[FaultSpec, ...]]:
    return "flaky-deps", (
        # transient OLTP hiccup: with_retry must heal it
        FaultSpec("ingest.oltp", mode="transient", nth=1),
        # the lattice fold breaks for good: must degrade, not fail
        FaultSpec("lattice.delta_merge", mode="permanent", nth=1),
        # the result cache errors once: served-through, answer-identical
        FaultSpec("serving.cache", mode="error", nth=1),
        # every scan is slow: latency pressure, same answers
        FaultSpec("serving.scan", mode="slow", nth=0, delay_s=0.002),
    )


def default_matrix(seed: int = 7, deadline_s: float = 120.0) -> list[ScenarioSpec]:
    """The stock 12-scenario matrix: 3 profiles x 2 plans x 2 regimes.

    Every kill-mid-loop cell is durable (the crash must be recoverable);
    the mid-dirty regime adds deliberate batch dirt and partitioned
    storage so the quarantine-partition and storage invariants bite.
    """
    scenarios: list[ScenarioSpec] = []
    for profile in DISEASE_PROFILES:
        for plan_kind in ("kill-mid-loop", "flaky-deps"):
            for regime in ("small-clean", "mid-dirty"):
                small = regime == "small-clean"
                crash_style = "die" if (plan_kind == "kill-mid-loop"
                                        and not small) else "recover"
                if plan_kind == "kill-mid-loop":
                    plan, fault_specs = _kill_mid_loop(crash_style)
                else:
                    plan, fault_specs = _flaky_deps()
                scenarios.append(ScenarioSpec(
                    name=f"{profile}.{plan}.{regime}",
                    profile=profile,
                    patients=30 if small else 60,
                    batch_patients=8 if small else 14,
                    seed=seed + len(scenarios),
                    dirty_rate=0.0 if small else 0.15,
                    faults=fault_specs,
                    plan=plan,
                    crash_style=crash_style,
                    storage=not small,
                    lattice=not small,
                    deadline_s=deadline_s,
                ))
    return scenarios
