"""Run ONE chaos scenario: the full DD-DGMS closed loop under faults.

The runner is deliberately in-process (the fleet adds process isolation
around it) and deterministic: cohort, batch, dirt and faults all derive
from the spec.  Each run is twinned:

1. the **clean twin (oracle)** drives the identical loop with no faults
   armed and records a fingerprint of the query battery at each
   checkpoint;
2. the **chaotic run** drives the loop with the spec's fault plan armed
   over a durable root, surviving injected crashes either by in-process
   recovery (``crash_style="recover"``: catch
   :class:`~repro.storage.faults.SimulatedCrash`, call
   :meth:`DDDGMS.recover`, resume the phase list) or by actually dying
   (``crash_style="die"``: ``os._exit(137)`` — the fleet's retry attempt
   re-enters this module and recovers from the durable root).

Loop-level invariants checked post-recovery:

``answers_match``
    Every comparable checkpoint fingerprint equals the oracle's — no
    wrong or stale answers after recovery.  On a retry attempt the
    pre-ingest checkpoints are skipped (the recovered system may already
    hold part of the interrupted batch); the post-ingest and final
    fingerprints are always strict.
``batch_partitioned``
    Rows loaded into the warehouse plus rows quarantined exactly
    partition the ingest batch (conservation: nothing lost, nothing
    duplicated, even across a mid-batch crash).
``recovered_serves``
    The query battery executes against the recovered state.
``degradation_surfaced``
    Every *fired* permanent fault shows up as a degraded-mode flag in
    ``ingest_health()`` at some checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable

from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator, offset_identifiers
from repro.etl.quarantine import QuarantineStore
from repro.storage import faults
from repro.storage.faults import FaultPlan, SimulatedCrash
from repro.tabular.table import Table
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry

from repro.scenarios.spec import ScenarioSpec

#: exit code a die-style worker uses for an injected crash (mirrors the
#: shell convention for SIGKILL'd processes)
CRASH_EXIT_CODE = 137

#: cap on in-process recover->resume cycles before declaring divergence
MAX_RECOVERIES = 6

EventCallback = Callable[[dict], None]


# ---------------------------------------------------------------------------
# Deterministic inputs
# ---------------------------------------------------------------------------


def build_cohort(spec: ScenarioSpec) -> Table:
    """The scenario's initial cohort (profile + size + noise regime)."""
    return DiScRiGenerator(
        n_patients=spec.patients,
        seed=spec.seed,
        profile=spec.profile,
        missing_rate=spec.missing_rate,
        erroneous_rate=spec.erroneous_rate,
    ).generate()


def build_batch(spec: ScenarioSpec, source: Table) -> Table:
    """The ingest batch: a follow-up intake, optionally made dirty.

    Dirty rows get ``visit_date=None`` — structurally insertable, but the
    ETL derive step rejects them, so they must land in quarantine (the
    partition invariant counts them there).  Corrupted indices derive
    from the spec seed, so twin runs dirty the very same rows.
    """
    batch = DiScRiGenerator(
        n_patients=spec.batch_patients,
        seed=spec.seed + 1000,
        profile=spec.profile,
        missing_rate=spec.missing_rate,
        erroneous_rate=spec.erroneous_rate,
    ).generate()
    batch = offset_identifiers(
        batch,
        max(source.column("patient_id").to_list()),
        max(source.column("visit_id").to_list()),
    )
    if spec.dirty_rate <= 0:
        return batch
    rows = batch.to_rows()
    # at most one dirty visit per patient: two null-dated visits of the
    # same patient would collapse in the ETL dedup step (a policy drop,
    # not a failure), muddying the loaded+quarantined==batch partition
    first_visit: dict[object, int] = {}
    for index, row in enumerate(rows):
        first_visit.setdefault(row["patient_id"], index)
    candidates = sorted(first_visit.values())
    n_dirty = min(max(1, int(len(rows) * spec.dirty_rate)), len(candidates))
    import random

    dirty_at = random.Random(spec.seed + 2000).sample(candidates, n_dirty)
    for index in dirty_at:
        rows[index]["visit_date"] = None
    return Table.from_rows(rows, schema=dict(batch.schema))


def feedback_builders() -> list[FeedbackDimensionBuilder]:
    """The loop's feedback dimensions (recreatable after recovery)."""
    return [
        FeedbackDimensionBuilder("chaos_flag").add(
            FeedbackEntry(
                "watch", lambda row: row.get("fbg_band") == "Diabetic"
            )
        ),
        FeedbackDimensionBuilder("chaos_risk").add(
            FeedbackEntry(
                "elevated",
                lambda row: row.get("reflex_knees_ankles") == "absent",
            )
        ),
    ]


# ---------------------------------------------------------------------------
# The query battery (fingerprinted at every checkpoint)
# ---------------------------------------------------------------------------


def battery_fingerprint(system: DDDGMS) -> str:
    """A digest of the loop's observable answers (OLTP + OLAP)."""
    parts: list[str] = []
    fig4 = (
        system.query().rows("age_band").columns("gender")
        .count_records("attendances")
        .where("personal.family_history_diabetes", "yes")
        .execute().sorted_rows()
    )
    parts.append(fig4.to_text(with_totals=True))
    fig5 = (
        system.query().rows("age_band10").columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute().sorted_rows()
    )
    parts.append(fig5.to_text(with_totals=True))
    fig6 = (
        system.query().rows("age_band10").columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes")
        .execute().sorted_rows()
    )
    parts.append(fig6.to_text(with_totals=True))
    parts.append(f"flat_rows={system.cube.flat.num_rows}")
    parts.append("dims=" + ",".join(system.warehouse.dimension_names))
    visit_ids = system.source.column("visit_id").to_list()
    for vid in (min(visit_ids), max(visit_ids)):
        row = system.oltp_lookup(vid)
        parts.append(json.dumps(row, sort_keys=True, default=str))
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The closed loop, phase by phase
# ---------------------------------------------------------------------------


def _attach(system: DDDGMS, spec: ScenarioSpec) -> None:
    system.attach_result_cache(64)
    if spec.storage:
        system.attach_storage(True)


def _drive_loop(
    system_ref: dict,
    spec: ScenarioSpec,
    batch: Table,
    *,
    checkpoints: dict,
    state: dict,
    emit: EventCallback,
) -> None:
    """Run every remaining loop phase over ``system_ref['system']``.

    Raises :class:`SimulatedCrash` out to the caller; ``state['done']``
    marks phases already completed so a resumed call skips them (each
    phase is itself idempotent, so re-running the interrupted one is
    safe).
    """

    def phase(name: str, fn) -> None:
        if name in state["done"]:
            return
        started = time.perf_counter()
        fn()
        state["done"].add(name)
        emit({
            "event": "phase", "phase": name,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        })

    system = system_ref["system"]

    def checkpoint(name: str) -> None:
        health = system_ref["system"].ingest_health()
        checkpoints[name] = {
            "fingerprint": battery_fingerprint(system_ref["system"]),
            "degraded": dict(health["degraded"]),
            "degradations": list(health["degradations"]),
        }

    def fold_all() -> None:
        for builder in feedback_builders():
            system_ref["system"].fold_feedback(builder)

    phase("fold", fold_all)
    if spec.lattice:
        phase("lattice", lambda: system_ref["system"].materialize_lattice())
    phase("checkpoint.fold", lambda: checkpoint("fold"))

    def baseline() -> None:
        sys_ = system_ref["system"]
        state["baseline"] = {
            "oltp_rows": sys_.source.num_rows,
            "flat_rows": sys_.cube.flat.num_rows,
            "quarantined": len(sys_.quarantine) if sys_.quarantine is not None else 0,
        }
        # survives a die-style crash: the retry attempt reloads it
        if state.get("baseline_path"):
            Path(state["baseline_path"]).write_text(
                json.dumps(state["baseline"])
            )

    phase("baseline", baseline)
    phase("ingest", lambda: system_ref["system"].ingest_visits(
        batch, batch="chaos-y2"
    ))

    def partition_check() -> None:
        sys_ = system_ref["system"]
        base = state["baseline"]
        quarantined = len(sys_.quarantine) if sys_.quarantine is not None else 0
        state["partition"] = {
            "batch_rows": batch.num_rows,
            "flat_gain": sys_.cube.flat.num_rows - base["flat_rows"],
            "oltp_gain": sys_.source.num_rows - base["oltp_rows"],
            "quarantine_gain": quarantined - base["quarantined"],
        }

    phase("partition", partition_check)
    phase("checkpoint.ingest", lambda: checkpoint("ingest"))

    def mine() -> None:
        model = system_ref["system"].awsum(
            "develops_diabetes", ["fbg_band", "reflex_knees_ankles"],
            min_support=2,
        )
        state["mining_influences"] = len(model.value_influences())

    phase("mine", mine)

    def predict() -> None:
        predictor = system_ref["system"].trajectory_predictor()
        # predict from a stage the transition model has actually seen
        # (tiny cohorts may never produce a given band)
        current = sorted(predictor.model.states)[0]
        stage, distribution = predictor.predict_next_stage(
            {"patient_id": -1, "fbg_band": current}
        )
        state["predicted_stage"] = stage
        state["prediction_mass"] = round(sum(distribution.values()), 6)

    phase("predict", predict)

    def optimise() -> None:
        report = system_ref["system"].check_optimum_consistency(
            ["conditions.age_band", "personal.gender"], "fbg",
            min_records=5, removable=["exercise"],
        )
        state["optimum_consistent"] = bool(report.consistent)

    phase("optimize", optimise)

    def acquire() -> None:
        system_ref["system"].fold_feedback(
            FeedbackDimensionBuilder("chaos_outcome").add(
                FeedbackEntry(
                    "followup",
                    lambda row: row.get("develops_diabetes") == "yes",
                )
            )
        )

    phase("acquire", acquire)
    phase("checkpoint.final", lambda: checkpoint("final"))


def _run_oracle(spec: ScenarioSpec, source: Table, batch: Table) -> dict:
    """The clean twin: same loop, no faults, in-memory quarantine."""
    faults.uninstall()
    system = DDDGMS(
        source, quarantine=QuarantineStore(), incremental=spec.incremental
    )
    _attach(system, spec)
    checkpoints: dict = {}
    state: dict = {"done": set(), "baseline_path": None}
    _drive_loop(
        {"system": system}, spec, batch,
        checkpoints=checkpoints, state=state, emit=lambda event: None,
    )
    return {"checkpoints": checkpoints, "state": state}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec,
    workdir: "str | Path",
    *,
    attempt: int = 1,
    emit: EventCallback | None = None,
) -> dict:
    """Run the scenario once; returns the structured result record.

    ``workdir`` persists across attempts (the durable root lives there),
    so a retry after a die-style crash recovers real on-disk state.  The
    result's ``status`` is ``ok`` or ``invariant_violation``; crashes and
    unexpected errors propagate (die-style kills exit the process with
    :data:`CRASH_EXIT_CODE`).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    emit = emit or (lambda event: None)
    durable_root = workdir / "durable"
    baseline_path = workdir / "baseline.json"
    started = time.perf_counter()

    source = build_cohort(spec)
    batch = build_batch(spec, source)
    emit({
        "event": "inputs", "cohort_rows": source.num_rows,
        "batch_rows": batch.num_rows, "attempt": attempt,
    })

    oracle = _run_oracle(spec, source, batch)
    emit({"event": "oracle", "checkpoints": sorted(oracle["checkpoints"])})

    rules = spec.rules_for_attempt(attempt)
    plan = FaultPlan(rules)
    checkpoints: dict = {}
    state: dict = {
        "done": set(),
        "baseline_path": str(baseline_path),
    }
    recovered = attempt > 1 and (durable_root / "snaps").exists()
    if recovered and baseline_path.exists():
        state["baseline"] = json.loads(baseline_path.read_text())
        state["done"].update({"fold", "baseline"})
        if spec.lattice:
            state["done"].add("lattice")
    recoveries = 0

    faults.install(plan)
    try:
        if recovered:
            system = DDDGMS.recover(
                durable_root, feedback_builders=feedback_builders()
            )
            _attach(system, spec)
        else:
            if durable_root.exists():
                # a prior attempt died before its first checkpoint: there
                # is nothing recoverable, so rebuild from scratch
                import shutil

                shutil.rmtree(durable_root)
            system = DDDGMS(
                source, durable_root=durable_root, incremental=spec.incremental
            )
            _attach(system, spec)
        system_ref = {"system": system}
        while True:
            try:
                _drive_loop(
                    system_ref, spec, batch,
                    checkpoints=checkpoints, state=state, emit=emit,
                )
                break
            except SimulatedCrash as crash:
                emit({
                    "event": "crash", "point": crash.point,
                    "occurrence": crash.occurrence,
                    "style": spec.crash_style,
                })
                if spec.crash_style == "die":
                    # flush behaviour is the caller's: events are written
                    # line-buffered, so the record above survives us
                    os._exit(CRASH_EXIT_CODE)
                recoveries += 1
                if recoveries > MAX_RECOVERIES:
                    raise
                system_ref["system"] = DDDGMS.recover(
                    durable_root, feedback_builders=feedback_builders()
                )
                _attach(system_ref["system"], spec)
                if state.get("baseline") is None and baseline_path.exists():
                    state["baseline"] = json.loads(baseline_path.read_text())
                emit({"event": "recovered", "recoveries": recoveries})
        fault_hits = {rule.point: plan.hits(rule.point) for rule in rules}
    finally:
        faults.uninstall()

    elapsed_s = time.perf_counter() - started
    invariants = _check_invariants(
        spec, attempt=attempt, recovered=recovered or recoveries > 0,
        oracle=oracle, checkpoints=checkpoints, state=state,
        rules=rules, fault_hits=fault_hits,
    )
    violations = sorted(
        name for name, entry in invariants.items() if not entry["ok"]
    )
    result = {
        "scenario_id": spec.scenario_id,
        "name": spec.name,
        "profile": spec.profile,
        "plan": spec.plan,
        "regime": spec.regime,
        "attempt": attempt,
        "status": "ok" if not violations else "invariant_violation",
        "violations": violations,
        "invariants": invariants,
        "recoveries": recoveries,
        "fault_hits": fault_hits,
        "partition": state.get("partition"),
        "loop_s": round(elapsed_s, 4),
    }
    emit({"event": "result", **result})
    return result


def _check_invariants(
    spec: ScenarioSpec,
    *,
    attempt: int,
    recovered: bool,
    oracle: dict,
    checkpoints: dict,
    state: dict,
    rules: list,
    fault_hits: dict,
) -> dict:
    invariants: dict = {}

    # -- answers_match: checkpoint fingerprints vs the clean twin -------
    comparable = ["ingest", "final"] if attempt > 1 else ["fold", "ingest", "final"]
    mismatches = []
    for name in comparable:
        ours = checkpoints.get(name, {}).get("fingerprint")
        theirs = oracle["checkpoints"].get(name, {}).get("fingerprint")
        if ours is None or ours != theirs:
            mismatches.append(name)
    invariants["answers_match"] = {
        "ok": not mismatches,
        "detail": {"compared": comparable, "mismatched": mismatches},
    }

    # -- batch_partitioned: loaded + quarantined == batch ---------------
    partition = state.get("partition")
    if partition is None:
        invariants["batch_partitioned"] = {
            "ok": False, "detail": "ingest never completed",
        }
    else:
        conserved = (
            partition["flat_gain"] + partition["quarantine_gain"]
            == partition["batch_rows"]
        )
        # structurally rejected rows never enter OLTP; derive rejects do,
        # so the OLTP gain brackets the warehouse gain
        bracketed = (
            partition["flat_gain"]
            <= partition["oltp_gain"]
            <= partition["batch_rows"]
        )
        invariants["batch_partitioned"] = {
            "ok": conserved and bracketed, "detail": partition,
        }

    # -- recovered_serves: the battery ran post-recovery ----------------
    invariants["recovered_serves"] = {
        "ok": "final" in checkpoints,
        "detail": {
            "recovered": recovered,
            "checkpoints": sorted(checkpoints),
        },
    }

    # -- degradation_surfaced: fired permanent faults are visible -------
    fired_permanent = [
        rule.point for rule in rules
        if rule.mode == "permanent"
        and fault_hits.get(rule.point, 0) >= max(rule.nth, 1)
    ]
    flagged = any(
        checkpoints[name]["degraded"] or checkpoints[name]["degradations"]
        for name in checkpoints
    )
    invariants["degradation_surfaced"] = {
        "ok": (not fired_permanent) or flagged,
        "detail": {"fired_permanent": fired_permanent, "flagged": flagged},
    }
    return invariants
