"""Resumable sweep ledger: content-addressed per-scenario artifact dirs.

Each scenario owns ``<root>/<name>-<scenario_id>/`` where the id hashes
the canonical spec JSON — edit a spec and it gets a *new* directory, so
stale artifacts can never satisfy a changed scenario.  The directory
holds:

``spec.json``
    The spec as submitted (provenance; re-runnable on its own).
``events.jsonl``
    One JSON object per line, appended and flushed as the worker runs —
    a worker killed mid-loop still leaves its trail.
``result.json``
    The structured outcome, written atomically once per attempt cycle.
``durable/`` / ``baseline.json``
    The scenario's own durable system root (crash-recovery state).

A re-run with the same specs executes only scenarios whose directory is
missing a ``result.json`` or whose recorded outcome is not ``ok``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.scenarios.spec import ScenarioSpec
from repro.storage.durable import atomic_write_json

#: outcome statuses a sweep can record per scenario
OUTCOMES = ("ok", "invariant_violation", "crashed", "timeout", "error")


class SweepLedger:
    """Filesystem ledger of one sweep root."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    def scenario_dir(self, spec: ScenarioSpec) -> Path:
        return self.root / spec.slug

    def prepare(self, spec: ScenarioSpec) -> Path:
        """Create (or reuse) the scenario directory; pin the spec."""
        directory = self.scenario_dir(spec)
        directory.mkdir(parents=True, exist_ok=True)
        spec_path = directory / "spec.json"
        if not spec_path.exists():
            atomic_write_json(
                spec_path,
                {**spec.to_json(), "scenario_id": spec.scenario_id},
            )
        return directory

    def record(self, spec: ScenarioSpec, result: dict) -> Path:
        """Atomically persist the scenario outcome."""
        directory = self.prepare(spec)
        atomic_write_json(directory / "result.json", result)
        return directory / "result.json"

    def result(self, spec: ScenarioSpec) -> dict | None:
        """The recorded outcome, or ``None`` (missing/unreadable/torn)."""
        path = self.scenario_dir(spec) / "result.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def outcome(self, spec: ScenarioSpec) -> str | None:
        result = self.result(spec)
        if result is None:
            return None
        return str(result.get("status") or "") or None

    def pending(
        self, specs: Iterable[ScenarioSpec], *, fresh: bool = False
    ) -> list[ScenarioSpec]:
        """The scenarios a (re-)run must execute.

        ``fresh=True`` ignores recorded outcomes (full re-run); otherwise
        only scenarios without a recorded ``ok`` are due — the resume
        contract.
        """
        if fresh:
            return list(specs)
        return [spec for spec in specs if self.outcome(spec) != "ok"]

    def results(self, specs: Iterable[ScenarioSpec]) -> dict[str, dict | None]:
        """slug -> recorded result (or None) for the given specs."""
        return {spec.slug: self.result(spec) for spec in specs}
