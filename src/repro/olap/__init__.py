"""OLAP reporting over the warehouse (paper §IV, "Reporting - OLTP and OLAP").

The cube (:mod:`repro.olap.cube`) is built from a star schema and answers
multidimensional aggregation queries; :mod:`repro.olap.operations` provides
the classic verbs — slice, dice, drill-down, roll-up, pivot; results render
as :class:`~repro.olap.crosstab.Crosstab` grids (the "query area" of paper
Fig. 4).  Queries can be built programmatically with
:class:`~repro.olap.query.QueryBuilder` (the drag-and-drop analogue) or
written in the MDX subset (:mod:`repro.olap.mdx`).
"""

from repro.olap.cube import Cube
from repro.olap.materialized import LatticeStats, MaterializedCube
from repro.olap.aggregates import AGGREGATION_NAMES, validate_aggregation
from repro.olap.crosstab import Crosstab
from repro.olap.query import CubeQuery, MeasureSpec, QueryBuilder, measure
from repro.olap.operations import (
    dice,
    drill_down,
    pivot,
    roll_up,
    slice_cube,
)
from repro.olap.mdx import execute_mdx, parse_mdx

__all__ = [
    "Cube",
    "MaterializedCube",
    "LatticeStats",
    "AGGREGATION_NAMES",
    "validate_aggregation",
    "Crosstab",
    "CubeQuery",
    "QueryBuilder",
    "MeasureSpec",
    "measure",
    "slice_cube",
    "dice",
    "drill_down",
    "roll_up",
    "pivot",
    "parse_mdx",
    "execute_mdx",
]
