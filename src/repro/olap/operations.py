"""The OLAP verbs: slice, dice, drill-down, roll-up, pivot.

Each verb maps a :class:`~repro.olap.query.CubeQuery` to a new query —
"slicing and dicing operations can be performed on a cube to
increase/decrease granularity of a multivariate query" (paper §IV).
Drill-down and roll-up use the dimension hierarchies, reproducing the
interaction behind paper Figs. 5 and 6 (10-year age bands opened into
5-year sub-bands).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from repro.errors import HierarchyError, OLAPError
from repro.olap.cube import Cube
from repro.olap.query import CubeQuery


def slice_cube(query: CubeQuery, level: str, value: object) -> CubeQuery:
    """Fix one level to a single member and remove it from the axes.

    The classic slice: the cube loses one dimension of variation.
    """
    sliced = query.with_filter(level, (value,))
    return replace(
        sliced,
        rows=tuple(l for l in sliced.rows if l != level),
        columns=tuple(l for l in sliced.columns if l != level),
    )


def dice(query: CubeQuery, restrictions: Mapping[str, Sequence[object]]) -> CubeQuery:
    """Restrict several levels to member subsets, keeping the axes.

    The classic dice: a sub-cube over the selected members.
    """
    result = query
    for level, values in restrictions.items():
        if not values:
            raise OLAPError(f"dice on {level!r} with an empty member list")
        result = result.with_filter(level, tuple(values))
    return result


def _swap_level(levels: tuple[str, ...], old: str, new: str) -> tuple[str, ...]:
    return tuple(new if level == old else level for level in levels)


def drill_down(query: CubeQuery, cube: Cube, level: str) -> CubeQuery:
    """Replace ``level`` with the next finer level of its hierarchy.

    This is the "drill-down feature" used twice in the paper's trial: age
    distribution at two levels of granularity (Fig. 5) and hypertension
    years by age sub-groups (Fig. 6).
    """
    qualified = cube.check_level(level)
    found = cube.hierarchy_for(qualified)
    if found is None:
        raise HierarchyError(
            f"level {qualified!r} belongs to no hierarchy; cannot drill down"
        )
    dim_name, hierarchy = found
    attr = qualified.split(".", 1)[1]
    finer = f"{dim_name}.{hierarchy.drill_down(attr)}"
    if qualified not in query.rows and qualified not in query.columns:
        raise OLAPError(f"level {qualified!r} is not on a query axis")
    return replace(
        query,
        rows=_swap_level(query.rows, qualified, finer),
        columns=_swap_level(query.columns, qualified, finer),
    )


def roll_up(query: CubeQuery, cube: Cube, level: str) -> CubeQuery:
    """Replace ``level`` with the next coarser level of its hierarchy."""
    qualified = cube.check_level(level)
    found = cube.hierarchy_for(qualified)
    if found is None:
        raise HierarchyError(
            f"level {qualified!r} belongs to no hierarchy; cannot roll up"
        )
    dim_name, hierarchy = found
    attr = qualified.split(".", 1)[1]
    coarser = f"{dim_name}.{hierarchy.roll_up(attr)}"
    if qualified not in query.rows and qualified not in query.columns:
        raise OLAPError(f"level {qualified!r} is not on a query axis")
    return replace(
        query,
        rows=_swap_level(query.rows, qualified, coarser),
        columns=_swap_level(query.columns, qualified, coarser),
    )


def pivot(query: CubeQuery) -> CubeQuery:
    """Swap the row and column axes."""
    return replace(query, rows=query.columns, columns=query.rows)
