"""The OLAP cube: multidimensional aggregation over a star schema.

Concurrency model (the serving layer, DESIGN.md §"Serving & epochs"):
all per-version derived data — the flattened view, the cached group-bys,
the qualified-attribute map — lives in one immutable-after-build
:class:`CubeState` (an **epoch**).  Readers pin the current state once
per query; writers build the next state off to the side and publish it
with a single reference swap (:meth:`Cube.publish`), so a query running
concurrently with an ingest finishes on the epoch it started on and can
never observe a torn rebuild or alias an old group-by against a new flat
view.  :meth:`Cube.snapshot` hands out an explicit pinned read view.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence

from repro import obs
from repro.errors import (
    OLAPError,
    QueryCancelledError,
    QueryTimeoutError,
    UnknownLevelError,
)
from repro.olap.aggregates import validate_aggregation
from repro.serving import resilience
from repro.serving.epoch import next_epoch_id
from repro.serving.resilience import checkpoint
from repro.storage import faults
from repro.storage.faults import SimulatedCrash
from repro.tabular.expressions import Expression, col
from repro.tabular.groupby import GroupBy
from repro.tabular.table import Table
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.star import StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.olap.materialized import MaterializedCube
    from repro.olap.query import QueryBuilder
    from repro.planner import QueryPlanner
    from repro.serving.admission import ServingRuntime
    from repro.serving.cache import ResultCache
    from repro.storage.columnar import PartitionedStore, StorageConfig


class CubeState:
    """One committed epoch: the flat view plus every cache derived from it.

    Instances are immutable once published, except the group-by cache,
    which only ever *adds* entries over the state's own (frozen) flat
    view under the state's lock — so sharing a state between reader
    threads is safe, and holding a stale state keeps serving a fully
    consistent old snapshot rather than a mix of versions.
    """

    __slots__ = (
        "epoch", "schema_version", "qattrs", "groupbys", "lock",
        "_flat", "_parts", "store",
    )

    def __init__(
        self,
        epoch: int,
        schema_version: int,
        flat: Table | None,
        qattrs: dict[str, tuple[str, str]],
        *,
        parts: Sequence[Table] | None = None,
        store: "PartitionedStore | None" = None,
    ):
        if flat is None and not parts and store is None:
            raise OLAPError("CubeState needs a flat view or parts to build one")
        self.epoch = epoch
        self.schema_version = schema_version
        #: either the materialised flat view, or None while ``_parts``
        #: holds the predecessor's view plus appended row blocks — a
        #: delta publish stays O(batch) and the concatenation happens on
        #: the first read that actually needs the full view.  With a
        #: partitioned ``store`` attached, None means the flat view is
        #: decoded from the store's segments on the first read that
        #: actually needs it — filtered scans never force it.
        self._flat = flat
        self._parts: list[Table] | None = (
            list(parts) if flat is None and parts else None
        )
        #: partitioned columnar segments holding exactly this epoch's
        #: rows (immutable, like the state itself); None when the epoch
        #: runs on the classic monolithic flat view
        self.store = store
        self.qattrs = qattrs
        self.groupbys: dict[tuple[str, ...], GroupBy] = {}
        self.lock = threading.Lock()

    @property
    def flat(self) -> Table:
        """The epoch's flat view (concatenated/decoded on first access)."""
        flat = self._flat
        if flat is None:
            with self.lock:
                flat = self._flat
                if flat is None:
                    if self._parts is not None:
                        flat = Table.concat_all(self._parts)
                    else:
                        # store-backed epoch: decode all segments back
                        # into exact flat-view row order
                        flat = self.store.to_table()  # type: ignore[union-attr]
                    self._flat = flat
        return flat

    @property
    def num_rows(self) -> int:
        """Row count of the flat view, without forcing a lazy concat."""
        if self._flat is not None:
            return self._flat.num_rows
        with self.lock:
            if self._flat is not None:
                return self._flat.num_rows
            if self._parts is not None:
                return sum(part.num_rows for part in self._parts)
            return self.store.num_rows  # type: ignore[union-attr]

    def scan_filter(
        self, filters: "Expression | None"
    ) -> "tuple[Table, object | None]":
        """Partition-aware ``flat.filter``: ``(rows, ScanStats | None)``.

        Store-backed epochs prune segments via zone maps and fan the
        surviving scans out (byte-identical to the flat filter); classic
        epochs fall through to the monolithic path with ``None`` stats.
        """
        if self.store is not None:
            return self.store.scan_filter(filters)
        flat = self.flat
        return (flat if filters is None else flat.filter(filters)), None

    def scan(self, predicate: "Expression | None" = None):
        """Iterate the epoch's rows partition by partition.

        Yields decoded per-segment chunks for store-backed epochs
        (pruned by zone maps); a single flat-view chunk otherwise.
        """
        if self.store is not None:
            for _segment, chunk in self.store.scan(predicate):
                yield chunk
        else:
            yield self.flat

    def flat_is(self, table: Table) -> bool:
        """Identity test against the materialised flat view.

        False while the view is still lazy — callers comparing flat-view
        identity (the pre-epoch freshness API) then conservatively treat
        the state as different.
        """
        return self._flat is not None and self._flat is table

    def parts_snapshot(self) -> list[Table]:
        """The row blocks a successor epoch extends (thread-safe)."""
        with self.lock:
            if self._flat is not None:
                return [self._flat]
            if self._parts is not None:
                return list(self._parts)
        # store-backed and not yet decoded: the decoded flat view is the
        # single block (forces the decode outside the state lock)
        return [self.flat]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CubeState(epoch={self.epoch}, v{self.schema_version}, "
            f"{self.num_rows} rows, {len(self.groupbys)} groupbys)"
        )


def plan_key(
    levels: Sequence[str],
    aggregations: Mapping[str, tuple[str, str]],
    filters: Expression | None,
    force: bool,
) -> Hashable:
    """Canonical, hashable identity of one aggregate request.

    Level order matters (it is the output column order); aggregation
    entries are order-insensitive, so the two spellings of the same
    request share a key.  Filters key on their ``describe()`` rendering,
    which ``repr``s every operand — distinct values or value types can
    not collide.
    """
    return (
        tuple(levels),
        tuple(sorted(
            (out, target, func)
            for out, (target, func) in aggregations.items()
        )),
        filters.describe() if filters is not None else None,
        bool(force),
    )


def _partition_detail(stats) -> str:
    """Per-partition est/actual/timing detail as a compact JSON string.

    Lives in a span attribute (scalars only survive every sink), parsed
    back by :meth:`repro.obs.explain.ExplainReport.partition_stats`.
    """
    import json

    return json.dumps(stats.partitions, separators=(",", ":"))


class Cube:
    """A queryable cube built over a star schema's flattened view.

    *Levels* are qualified dimension attributes (``"personal.age_band"``);
    *measures* are the fact measures plus the implicit ``"records"``
    count.  The flattened view is computed once per epoch and cached;
    ``refresh()``/``publish()`` build a new epoch after the underlying
    (dynamic) schema changes.

    Aggregation requests are ``output_name=(target, aggregation)`` where
    ``target`` is a measure or any level (levels support ``count`` /
    ``nunique`` — that is how "number of patients" is asked for, via
    ``nunique`` over the patient identifier attribute).

    With ``managed=True`` (the DD-DGMS serving mode) the cube never
    rebuilds lazily on schema-version drift: only an explicit
    :meth:`publish` (called by the writer after its mutation commits)
    swaps epochs, so reader threads cannot flatten a half-mutated
    warehouse.  Unmanaged cubes keep the historical auto-refresh-on-drift
    behaviour for single-threaded use.
    """

    #: implicit measure: number of fact rows in the cell
    RECORDS = "records"

    def __init__(
        self,
        schema: StarSchema | DynamicWarehouse,
        name: str | None = None,
        *,
        managed: bool = False,
    ):
        self._dynamic = schema if isinstance(schema, DynamicWarehouse) else None
        self.schema = schema.schema if isinstance(schema, DynamicWarehouse) else schema
        self.name = name or self.schema.name
        self._managed = managed
        self._state: CubeState | None = None
        self._rebuild_lock = threading.RLock()
        self._lattice: "MaterializedCube | None" = None
        self._result_cache: "ResultCache | None" = None
        self._serving: "ServingRuntime | None" = None
        self._storage_config: "StorageConfig | None" = None
        self._planner: "QueryPlanner | None" = None

    def _current_version(self) -> int:
        return self._dynamic.version if self._dynamic is not None else 1

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------

    def _current_state(self) -> CubeState:
        """The pinned-readable current epoch (built lazily on first use).

        Unmanaged cubes also rebuild here when the dynamic schema version
        drifted; managed cubes serve the published epoch untouched until
        the writer calls :meth:`publish`.
        """
        state = self._state
        if state is not None and (
            self._managed or state.schema_version == self._current_version()
        ):
            return state
        with self._rebuild_lock:
            state = self._state
            version = self._current_version()
            if state is not None and (
                self._managed or state.schema_version == version
            ):
                return state
            return self._build_state()

    def _build_state(self) -> CubeState:
        """Build and swap in a fresh epoch (caller holds the rebuild lock)."""
        obs.count("olap.flat.rebuild")
        with obs.span("cube.flatten", cube=self.name) as sp:
            flat = self.schema.flatten()
            sp.set(rows=flat.num_rows)
        store = None
        if self._storage_config is not None:
            from repro.storage.columnar import PartitionedStore

            with obs.span("storage.partition", cube=self.name) as part_sp:
                store = PartitionedStore.build(flat, self._storage_config)
                part_sp.set(
                    segments=len(store.segments),
                    partitions=store.partition_count(),
                )
        state = CubeState(
            epoch=next_epoch_id(),
            schema_version=self._current_version(),
            # store-backed epochs keep the just-flattened view too: it is
            # already materialised, so dropping it would only force an
            # immediate re-decode on the first unfiltered aggregate
            flat=flat,
            qattrs=self.schema.qualified_attributes(),
            store=store,
        )
        self._state = state
        obs.set_gauge("serving.epoch", state.epoch)
        return state

    def publish(self) -> CubeState:
        """Eagerly build the next epoch and atomically swap it in.

        The writer-side half of publish-on-commit: the flatten and the
        qualified-attribute walk happen on the calling (writer) thread;
        readers keep the old epoch until the swap and then pick the new
        one up on their next query.  Returns the published state.
        """
        with self._rebuild_lock:
            return self._build_state()

    def publish_delta(self, delta_flat: Table) -> CubeState:
        """Publish the next epoch by *extending* the current flat view.

        The incremental-maintenance publish path: ``delta_flat`` holds the
        flattened form of exactly the fact rows appended since the current
        epoch (same column layout).  The new state references the old
        epoch's row blocks plus the delta and concatenates lazily, so the
        publish itself is O(batch) — the whole point of delta folding.
        Readers pinned to the old epoch are untouched.

        Only valid for appends under an unchanged schema; dimension
        changes (a different qualified-attribute set) must go through
        :meth:`publish` instead.
        """
        with self._rebuild_lock:
            prev = self._state
            if prev is None:
                return self._build_state()
            version = self._current_version()
            if version != prev.schema_version:
                raise OLAPError(
                    "publish_delta on a changed schema "
                    f"(v{prev.schema_version} -> v{version}): full publish "
                    "required"
                )
            if prev.store is not None:
                # partitioned epoch: append the delta as fresh segments
                # routed through the store's resolved spec — O(batch),
                # and the predecessor's segments are shared, not copied
                if delta_flat.num_rows and (
                    delta_flat.column_names != list(prev.store.schema)
                    or delta_flat.schema != prev.store.schema
                ):
                    raise OLAPError(
                        "publish_delta: appended rows do not match the "
                        "epoch's flat-view schema; full publish required"
                    )
                store = (
                    prev.store.append(delta_flat)
                    if delta_flat.num_rows
                    else prev.store
                )
                state = CubeState(
                    epoch=next_epoch_id(),
                    schema_version=version,
                    flat=None,
                    qattrs=prev.qattrs,
                    store=store,
                )
                self._state = state
                obs.count("olap.flat.delta_publish")
                obs.count("storage.segment.appends")
                obs.set_gauge("serving.epoch", state.epoch)
                return state
            parts = prev.parts_snapshot()
            if delta_flat.num_rows:
                if (
                    delta_flat.column_names != parts[0].column_names
                    or delta_flat.schema != parts[0].schema
                ):
                    raise OLAPError(
                        "publish_delta: appended rows do not match the "
                        "epoch's flat-view schema; full publish required"
                    )
                parts.append(delta_flat)
            state = CubeState(
                epoch=next_epoch_id(),
                schema_version=version,
                flat=None,
                qattrs=prev.qattrs,
                parts=parts,
            )
            self._state = state
            obs.count("olap.flat.delta_publish")
            obs.set_gauge("serving.epoch", state.epoch)
            return state

    def refresh(self) -> None:
        """Force a rebuild of the flattened view (and dependent caches).

        Lazy: the next access builds the new epoch.  Old epochs held by
        in-flight readers (via :meth:`snapshot`) stay fully intact —
        caches belong to the epoch, not the cube, so a stale ``GroupBy``
        can never be replayed against a newer flat view.
        """
        with self._rebuild_lock:
            self._state = None

    def snapshot(self) -> "CubeSnapshot":
        """A pinned, immutable read view of the current epoch."""
        state = self._current_state()
        return CubeSnapshot(self, state, self._lattice)

    @property
    def epoch(self) -> int:
        """The current epoch id (process-unique, bumps on every publish)."""
        return self._current_state().epoch

    @property
    def flat(self) -> Table:
        """The denormalised fact+dimension view (auto-refreshed on change)."""
        return self._current_state().flat

    def qualified_attributes(
        self, state: CubeState | None = None
    ) -> dict[str, tuple[str, str]]:
        """``"dim.attr"`` → (dimension, attribute), cached per epoch.

        Rebuilding this mapping walks every dimension; callers (level
        validation, hierarchies) hit it on every query, so it is built
        once when the epoch is published.
        """
        return (state or self._current_state()).qattrs

    def _grouped(self, state: CubeState, keys: tuple[str, ...]) -> GroupBy:
        """A cached ``GroupBy`` over the epoch's flat view for ``keys``.

        The ``GroupBy`` memoises its key factorisation, so repeated
        ``aggregate()`` calls within one epoch pay the grouping cost
        once.  The cache lives *in the state*: a new epoch starts empty,
        and old epochs keep theirs — no cross-epoch aliasing.
        """
        with state.lock:
            grouped = state.groupbys.get(keys)
            if grouped is None:
                obs.count("olap.groupby_cache.miss")
                grouped = state.flat.groupby(*keys)
                state.groupbys[keys] = grouped
            else:
                obs.count("olap.groupby_cache.hit")
            return grouped

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def levels(self) -> list[str]:
        """All qualified levels (``dim.attr``)."""
        return list(self.qualified_attributes())

    @property
    def measure_names(self) -> list[str]:
        """Fact measures plus the implicit record count."""
        return list(self.schema.fact.measures) + [self.RECORDS]

    def check_level(self, level: str, state: CubeState | None = None) -> str:
        """Validate a level name, returning it; raises with suggestions."""
        qattrs = self.qualified_attributes(state)
        if level in qattrs:
            return level
        # allow bare attribute names when unambiguous
        matches = [q for q, (_, attr) in qattrs.items() if attr == level]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise UnknownLevelError(
                f"level {level!r} is ambiguous: {', '.join(matches)}"
            )
        raise UnknownLevelError(
            f"unknown level {level!r} (known: {', '.join(qattrs)})"
        )

    def hierarchy_for(self, level: str) -> tuple[str, Hierarchy] | None:
        """(dimension, hierarchy) containing the given level, if any."""
        qualified = self.check_level(level)
        dim_name, attr = self.qualified_attributes()[qualified]
        hierarchy = self.schema.dimension(dim_name).hierarchy_for_level(attr)
        if hierarchy is None:
            return None
        return dim_name, hierarchy

    def level_members(self, level: str) -> list[object]:
        """Distinct values of a level, in value order."""
        state = self._current_state()
        qualified = self.check_level(level, state)
        return state.flat.column(qualified).unique()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def attach_lattice(self, lattice: "MaterializedCube") -> None:
        """Route future ``aggregate`` calls through a materialised lattice.

        The lattice answers covered queries from precomputed cells and
        falls back to the base scan otherwise; it deactivates itself
        automatically when the flat view it was built from is replaced.
        """
        if lattice.cube is not self:
            raise OLAPError("lattice was materialised over a different cube")
        self._lattice = lattice

    def detach_lattice(self) -> None:
        """Stop consulting the attached lattice (if any)."""
        self._lattice = None

    @property
    def lattice(self) -> "MaterializedCube | None":
        """The attached materialised lattice, if any."""
        return self._lattice

    def attach_result_cache(self, cache: "ResultCache | None") -> None:
        """Serve repeated aggregates from ``cache`` (keyed by epoch + plan).

        ``None`` detaches.  The same cache object may be re-attached to a
        successor cube after an ingest rebuild: epoch ids are process-
        unique, so old entries can never alias the new cube's state.
        """
        self._result_cache = cache

    @property
    def result_cache(self) -> "ResultCache | None":
        """The attached result cache, if any."""
        return self._result_cache

    def attach_planner(self, planner: "QueryPlanner | None") -> None:
        """Record workload statistics and cost-route future queries.

        Attached, every aggregate records its plan signature and
        measured route cost into the planner's
        :class:`~repro.planner.stats.WorkloadStats`, plans carry
        ``est_cost_ms`` next to the measured stage time, and — once the
        cost model is calibrated — the lattice routes each covered
        query to the cheapest of {covering node, pruned base scan}
        instead of the fixed smallest-node preference.  While cold, the
        routing behaviour (answers *and* hit counters) is identical to
        an unattached cube.  ``None`` detaches.  Like the result cache,
        one planner is re-attached to successor cubes across rebuilds:
        the workload belongs to the system, not to one epoch.
        """
        self._planner = planner

    @property
    def planner(self) -> "QueryPlanner | None":
        """The attached query planner, if any."""
        return self._planner

    def attach_serving(self, serving: "ServingRuntime | None") -> None:
        """Put future query execution under ``serving``'s admission gate.

        ``None`` detaches (unbounded serving, the historical behaviour).
        Like the result cache, the same runtime is re-attached to the
        successor cube across epoch publishes, so the limits govern the
        system, not one epoch.
        """
        self._serving = serving

    @property
    def serving_runtime(self) -> "ServingRuntime | None":
        """The attached serving runtime (admission + breakers), if any."""
        return self._serving

    def attach_storage(self, config: "StorageConfig | bool | None") -> None:
        """Partition future epochs into a compressed columnar store.

        Takes effect at the next epoch build (``publish`` / first query):
        the flat view is sharded per ``config.partitioning`` into
        encoded segments with zone maps, filtered base scans prune and
        fan out per partition, and ``publish_delta`` appends segments
        instead of lazy row blocks.  ``None``/``False`` detaches (future
        epochs revert to the monolithic flat view); already-published
        store-backed epochs are immutable and keep serving as built.
        """
        from repro.storage.columnar import coerce_storage

        self._storage_config = coerce_storage(config)

    @property
    def storage_config(self) -> "StorageConfig | None":
        """The attached storage configuration, if any."""
        return self._storage_config

    def compact_storage(self) -> CubeState | None:
        """Merge delta segments back to one segment per partition.

        Publishes the compacted store as a **new epoch** — readers
        pinned to the old epoch (and any :class:`CubeSnapshot` taken
        mid-compaction) keep the old segments untouched, so a
        half-compacted table is never observable.  Fires the
        ``storage.compaction`` fault point before the swap: a kill
        leaves the old epoch current.  Returns the new state, or None
        when the current epoch has no partitioned store.
        """
        with self._rebuild_lock:
            prev = self._state
            if prev is None or prev.store is None:
                return None
            with obs.span("storage.compact", cube=self.name) as sp:
                compacted = prev.store.compact()
                sp.set(
                    segments_before=len(prev.store.segments),
                    segments_after=len(compacted.segments),
                )
                # commit point: a crash here must leave the old epoch
                # serving its (uncompacted but complete) segments
                faults.fire("storage.compaction")
                state = CubeState(
                    epoch=next_epoch_id(),
                    schema_version=prev.schema_version,
                    flat=None,
                    qattrs=prev.qattrs,
                    store=compacted,
                )
                self._state = state
            obs.count("storage.compactions")
            obs.set_gauge("serving.epoch", state.epoch)
            return state

    def scan(self, predicate: Expression | None = None):
        """Iterate the current epoch's rows partition by partition."""
        return self._current_state().scan(predicate)

    def aggregate(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
    ) -> Table:
        """Group facts by ``levels`` and aggregate.

        ``aggregations`` maps output column → (target, function); when
        omitted the record count is returned.  ``filters`` restricts the
        fact rows before grouping (a dice).  Returns a table with one row
        per populated cell, sorted by the level columns.

        With a lattice attached (:meth:`attach_lattice`), covered queries
        are answered from precomputed cells instead of the fact scan.
        The epoch is pinned once at entry: the whole aggregation runs
        against one committed snapshot regardless of concurrent ingest.
        """
        state = self._current_state()
        return self._aggregate_pinned(
            state, self._lattice, levels, aggregations, filters, force
        )

    def _aggregate_pinned(
        self,
        state: CubeState,
        lattice: "MaterializedCube | None",
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
    ) -> Table:
        """One aggregation against one pinned epoch (cache → lattice → base).

        Each tier sits behind a circuit breaker and degrades one rung
        down the ladder on dependency faults: a broken cache means
        recompute (never a failed query), a broken lattice means a base
        scan.  The base scan is the bottom rung — its typed errors
        propagate.  Deadline expiry and cancellation always propagate
        (they are the *query's* outcome, not a dependency's) but still
        count against the tier that stalled, so a wedged dependency
        opens its breaker and later queries skip it entirely.
        """
        checkpoint()
        aggregations = dict(
            aggregations or {self.RECORDS: (self.RECORDS, "size")}
        )
        with obs.span(
            "cube.aggregate",
            cube=self.name,
            levels=",".join(levels) if levels else "<grand total>",
            filtered=filters is not None,
            epoch=state.epoch,
        ) as sp:
            degraded = resilience.active_degradations()
            if degraded:
                sp.set(degraded=",".join(sorted(degraded)))
            qualified = [self.check_level(level, state) for level in levels]
            cache = self._result_cache
            cache_brk = resilience.breaker("cache") if cache is not None else None
            planner = self._planner
            key: Hashable | None = None
            plan_sig = None
            rows_hint = 0
            if cache is not None or planner is not None:
                key = plan_key(qualified, aggregations, filters, force)
            if planner is not None:
                # workload recording is unconditional (it is how the
                # planner calibrates); route *overrides* only start once
                # the cost model has seen enough of both routes
                plan_sig = planner.classify(
                    qualified, aggregations, filters,
                    self.RECORDS, self.schema.fact.measures,
                )
                rows_hint = planner.estimate_base_rows(state, filters)
            if cache is not None:
                cached = None
                if cache_brk.allow():
                    try:
                        faults.fire("serving.cache")
                        cached = cache.get(state.epoch, key)
                    except (QueryTimeoutError, QueryCancelledError):
                        cache_brk.record_failure()
                        raise
                    except SimulatedCrash:
                        raise
                    except Exception:
                        cache_brk.record_failure()
                        obs.count("serving.degraded.cache")
                        cache = None  # recompute rung (skip the put too)
                    else:
                        cache_brk.record_success()
                else:
                    obs.count("serving.degraded.cache")
                    cache = None
                if cache is not None:
                    sp.set(cache="hit" if cached is not None else "miss")
                if cached is not None:
                    if planner is not None:
                        planner.note_query(
                            key, plan_sig, rows_hint, cache_hit=True
                        )
                    sp.set(cells=cached.num_rows)
                    return cached
            result: Table | None = None
            if lattice is not None and lattice.fresh_for_state(state):
                lat_brk = resilience.breaker("lattice")
                if lat_brk.allow():
                    try:
                        result = lattice.aggregate(
                            qualified, aggregations, filters=filters,
                            force=force, state=state,
                        )
                    except (QueryTimeoutError, QueryCancelledError):
                        lat_brk.record_failure()
                        raise
                    except OLAPError:
                        raise  # the query's own fault, not the lattice's
                    except SimulatedCrash:
                        raise
                    except Exception:
                        lat_brk.record_failure()
                        obs.count("serving.degraded.lattice")
                    else:
                        lat_brk.record_success()
                else:
                    obs.count("serving.degraded.lattice")
            if result is None:
                started = time.perf_counter()
                result = self._aggregate_base(
                    qualified, aggregations, filters, force, state=state
                )
                if planner is not None:
                    planner.observe_route(
                        "base",
                        (time.perf_counter() - started) * 1000.0,
                        rows_hint,
                    )
            if planner is not None:
                planner.note_query(key, plan_sig, rows_hint, cache_hit=False)
            sp.set(cells=result.num_rows)
            if cache is not None and key is not None:
                if cache_brk.allow():
                    try:
                        faults.fire("serving.cache")
                        cache.put(state.epoch, key, result)
                    except (QueryTimeoutError, QueryCancelledError):
                        cache_brk.record_failure()
                        raise
                    except SimulatedCrash:
                        raise
                    except Exception:
                        cache_brk.record_failure()
                        obs.count("serving.degraded.cache")
                    else:
                        cache_brk.record_success()
                else:
                    obs.count("serving.degraded.cache")
            return result

    def _aggregate_base(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
        *,
        state: CubeState | None = None,
    ) -> Table:
        """The lattice-free aggregation path (a full scan of the flat view)."""
        if state is None:
            state = self._current_state()
        qualified = [self.check_level(level, state) for level in levels]
        aggregations = dict(aggregations or {self.RECORDS: (self.RECORDS, "size")})
        obs.count("olap.aggregate.base_scans")
        with obs.span("scan.base", source="fact table") as scan_sp:
            planner = self._planner
            if planner is not None:
                # estimate-before-measure: the zone-map row guess and its
                # cost translation land on the span *before* the scan, so
                # explain() can put est_cost_ms next to the measured time
                est_rows = planner.estimate_base_rows(state, filters)
                scan_sp.set(
                    est_rows=est_rows,
                    est_cost_ms=round(planner.cost.estimate_base_ms(est_rows), 4),
                )
            # bottom rung of the degradation ladder: the serving.scan
            # fault point fires un-wrapped here — there is nothing left
            # to degrade to, so injected errors propagate typed
            faults.fire("serving.scan")
            checkpoint()
            if state.store is not None and filters is not None:
                # partitioned scan: zone maps prune segments before any
                # kernel runs; answers stay byte-identical to the flat
                # filter (rows come back in flat-view order)
                table, stats = state.store.scan_filter(filters)
                scan_sp.set(
                    predicate=filters.describe(),
                    partitions_scanned=stats.segments_scanned,
                    partitions_pruned=stats.segments_pruned,
                    segments_total=stats.segments_total,
                    scan_executor=stats.executor,
                    partition_detail=_partition_detail(stats),
                )
                scan_sp.set(
                    rows_scanned=stats.rows_scanned, rows_kept=table.num_rows
                )
            else:
                flat = state.flat
                if filters is None:
                    table = flat
                else:
                    table = flat.filter(filters)
                    scan_sp.set(predicate=filters.describe())
                if state.store is not None:
                    # unfiltered scan over a partitioned epoch: nothing
                    # to prune, but the contract fields stay present
                    total = len(state.store.segments)
                    scan_sp.set(
                        partitions_scanned=total,
                        partitions_pruned=0,
                        segments_total=total,
                    )
                scan_sp.set(rows_scanned=flat.num_rows, rows_kept=table.num_rows)

        specs: dict[str, tuple[str, str]] = {}
        for out_name, (target, func) in aggregations.items():
            if target == self.RECORDS:
                if func not in ("size", "count"):
                    raise OLAPError(
                        f"the implicit {self.RECORDS!r} measure only supports "
                        f"size/count, not {func!r}"
                    )
                anchor = qualified[0] if qualified else table.column_names[0]
                specs[out_name] = (anchor, "size")
            elif target in self.schema.fact.measures:
                validate_aggregation(self.schema.fact.measures[target], func, force)
                specs[out_name] = (target, func)
            else:
                level = self.check_level(target, state)
                if func not in ("count", "nunique", "size", "min", "max"):
                    raise OLAPError(
                        f"level {target!r} only supports count/nunique/size/"
                        f"min/max, not {func!r}"
                    )
                specs[out_name] = (level, func)

        if not qualified:
            # Grand total: aggregate the whole table as one group.
            row: dict[str, object] = {}
            for out_name, (target, func) in specs.items():
                column = table.column(target)
                from repro.tabular.groupby import AGGREGATORS
                import numpy as np

                row[out_name] = AGGREGATORS[func](column, np.arange(len(table)))
            return Table.from_rows([row])

        checkpoint()
        if filters is None:
            # unchanged flat view: reuse the epoch's cached key factorisation
            grouped = self._grouped(state, tuple(qualified))
        else:
            grouped = table.groupby(*qualified)
        result = grouped.agg(**specs)
        return result.sort_by(*qualified)

    def grand_total(
        self,
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
    ) -> dict[str, object]:
        """Single-row aggregate over the whole (possibly filtered) cube."""
        table = self.aggregate([], aggregations, filters)
        return table.row(0)

    def slice_values(self, level: str, value: object) -> Expression:
        """Predicate fixing one level to one member (a slice)."""
        return col(self.check_level(level)).eq(value)

    def query(self) -> "QueryBuilder":
        """Start a fluent query against this cube (drag-and-drop analogue)."""
        from repro.olap.query import QueryBuilder

        return QueryBuilder(self)

    def __repr__(self) -> str:
        return (
            f"Cube({self.name!r}, {self.flat.num_rows} facts, "
            f"{len(self.levels)} levels, measures=[{', '.join(self.measure_names)}])"
        )


class CubeSnapshot:
    """An immutable read view pinned to one published epoch.

    Duck-types the read side of :class:`Cube` (``check_level`` /
    ``aggregate`` / ``query`` / metadata), so query builders and the MDX
    evaluator run against it unchanged — but every answer comes from the
    pinned epoch, no matter how many ingests commit meanwhile.  Obtain
    one from :meth:`Cube.snapshot` or ``DDDGMS.current_epoch()``.
    """

    RECORDS = Cube.RECORDS

    def __init__(
        self,
        cube: Cube,
        state: CubeState,
        lattice: "MaterializedCube | None" = None,
    ):
        self._cube = cube
        self._state = state
        # only carry a lattice that was materialised from this very epoch
        self._lattice = (
            lattice
            if lattice is not None and lattice.fresh_for_state(state)
            else None
        )
        self.name = cube.name
        self.schema = cube.schema

    @property
    def epoch(self) -> int:
        """The pinned epoch id."""
        return self._state.epoch

    @property
    def flat(self) -> Table:
        """The pinned epoch's flat view."""
        return self._state.flat

    @property
    def lattice(self) -> "MaterializedCube | None":
        """The pinned lattice (only if materialised from this epoch)."""
        return self._lattice

    @property
    def serving_runtime(self) -> "ServingRuntime | None":
        """The owning cube's serving runtime — limits are system-wide,
        not per-epoch, so snapshots share the live gate and breakers."""
        return self._cube.serving_runtime

    def scan(self, predicate: Expression | None = None):
        """Iterate the pinned epoch's rows partition by partition."""
        return self._state.scan(predicate)

    @property
    def store(self):
        """The pinned epoch's partitioned store (None when monolithic)."""
        return self._state.store

    def qualified_attributes(self) -> dict[str, tuple[str, str]]:
        """The pinned epoch's level map."""
        return self._state.qattrs

    @property
    def levels(self) -> list[str]:
        """All qualified levels of the pinned epoch."""
        return list(self._state.qattrs)

    @property
    def measure_names(self) -> list[str]:
        """Fact measures plus the implicit record count."""
        return self._cube.measure_names

    def check_level(self, level: str) -> str:
        """Validate a level against the pinned epoch."""
        return self._cube.check_level(level, self._state)

    def hierarchy_for(self, level: str) -> tuple[str, Hierarchy] | None:
        """(dimension, hierarchy) containing the given level, if any."""
        return self._cube.hierarchy_for(level)

    def level_members(self, level: str) -> list[object]:
        """Distinct values of a level in the pinned epoch, in value order."""
        return self._state.flat.column(self.check_level(level)).unique()

    def aggregate(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
    ) -> Table:
        """Like :meth:`Cube.aggregate`, but always on the pinned epoch."""
        return self._cube._aggregate_pinned(
            self._state, self._lattice, levels, aggregations, filters, force
        )

    def grand_total(
        self,
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
    ) -> dict[str, object]:
        """Single-row aggregate over the pinned epoch."""
        return self.aggregate([], aggregations, filters).row(0)

    def slice_values(self, level: str, value: object) -> Expression:
        """Predicate fixing one level to one member (a slice)."""
        return col(self.check_level(level)).eq(value)

    def query(self) -> "QueryBuilder":
        """A fluent query builder bound to the pinned epoch."""
        from repro.olap.query import QueryBuilder

        return QueryBuilder(self)

    def __repr__(self) -> str:
        return (
            f"CubeSnapshot({self.name!r}, epoch={self.epoch}, "
            f"{self.flat.num_rows} facts)"
        )
