"""The OLAP cube: multidimensional aggregation over a star schema."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro import obs
from repro.errors import OLAPError, UnknownLevelError
from repro.olap.aggregates import validate_aggregation
from repro.tabular.expressions import Expression, col
from repro.tabular.groupby import GroupBy
from repro.tabular.table import Table
from repro.warehouse.attribute import Hierarchy
from repro.warehouse.dynamic import DynamicWarehouse
from repro.warehouse.star import StarSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.olap.materialized import MaterializedCube
    from repro.olap.query import QueryBuilder


class Cube:
    """A queryable cube built over a star schema's flattened view.

    *Levels* are qualified dimension attributes (``"personal.age_band"``);
    *measures* are the fact measures plus the implicit ``"records"`` count.
    The flattened view is computed once and cached; ``refresh()`` rebuilds
    it after the underlying (dynamic) schema changes.

    Aggregation requests are ``output_name=(target, aggregation)`` where
    ``target`` is a measure or any level (levels support ``count`` /
    ``nunique`` — that is how "number of patients" is asked for, via
    ``nunique`` over the patient identifier attribute).
    """

    #: implicit measure: number of fact rows in the cell
    RECORDS = "records"

    def __init__(self, schema: StarSchema | DynamicWarehouse, name: str | None = None):
        self._dynamic = schema if isinstance(schema, DynamicWarehouse) else None
        self.schema = schema.schema if isinstance(schema, DynamicWarehouse) else schema
        self.name = name or self.schema.name
        self._flat: Table | None = None
        self._schema_version = self._current_version()
        self._qattrs: dict[str, tuple[str, str]] | None = None
        self._qattrs_version = self._schema_version
        self._groupbys: dict[tuple[str, ...], GroupBy] = {}
        self._lattice: "MaterializedCube | None" = None

    def _current_version(self) -> int:
        return self._dynamic.version if self._dynamic is not None else 1

    @property
    def flat(self) -> Table:
        """The denormalised fact+dimension view (auto-refreshed on change)."""
        if self._flat is None or self._schema_version != self._current_version():
            obs.count("olap.flat.rebuild")
            with obs.span("cube.flatten", cube=self.name) as sp:
                self._flat = self.schema.flatten()
                sp.set(rows=self._flat.num_rows)
            self._schema_version = self._current_version()
            self._groupbys.clear()
        return self._flat

    def refresh(self) -> None:
        """Force a rebuild of the flattened view (and dependent caches)."""
        self._flat = None
        self._qattrs = None
        self._groupbys.clear()

    def qualified_attributes(self) -> dict[str, tuple[str, str]]:
        """``"dim.attr"`` → (dimension, attribute), cached per schema version.

        Rebuilding this mapping walks every dimension; callers (level
        validation, hierarchies) hit it on every query, so it is cached and
        invalidated when the dynamic warehouse's version moves.
        """
        version = self._current_version()
        if self._qattrs is None or self._qattrs_version != version:
            self._qattrs = self.schema.qualified_attributes()
            self._qattrs_version = version
        return self._qattrs

    def _grouped(self, keys: tuple[str, ...]):
        """A cached ``GroupBy`` over the flat view for the given key tuple.

        The ``GroupBy`` memoises its key factorisation, so repeated
        ``aggregate()`` calls on an unchanged flat view pay the grouping
        cost once.  The cache is dropped whenever the flat view rebuilds.
        """
        flat = self.flat  # property access also invalidates stale caches
        grouped = self._groupbys.get(keys)
        if grouped is None or grouped.table is not flat:
            obs.count("olap.groupby_cache.miss")
            grouped = flat.groupby(*keys)
            self._groupbys[keys] = grouped
        else:
            obs.count("olap.groupby_cache.hit")
        return grouped

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def levels(self) -> list[str]:
        """All qualified levels (``dim.attr``)."""
        return list(self.qualified_attributes())

    @property
    def measure_names(self) -> list[str]:
        """Fact measures plus the implicit record count."""
        return list(self.schema.fact.measures) + [self.RECORDS]

    def check_level(self, level: str) -> str:
        """Validate a level name, returning it; raises with suggestions."""
        if level in self.qualified_attributes():
            return level
        # allow bare attribute names when unambiguous
        matches = [
            q for q, (_, attr) in self.qualified_attributes().items()
            if attr == level
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise UnknownLevelError(
                f"level {level!r} is ambiguous: {', '.join(matches)}"
            )
        raise UnknownLevelError(
            f"unknown level {level!r} (known: {', '.join(self.levels)})"
        )

    def hierarchy_for(self, level: str) -> tuple[str, Hierarchy] | None:
        """(dimension, hierarchy) containing the given level, if any."""
        qualified = self.check_level(level)
        dim_name, attr = self.qualified_attributes()[qualified]
        hierarchy = self.schema.dimension(dim_name).hierarchy_for_level(attr)
        if hierarchy is None:
            return None
        return dim_name, hierarchy

    def level_members(self, level: str) -> list[object]:
        """Distinct values of a level, in value order."""
        qualified = self.check_level(level)
        return self.flat.column(qualified).unique()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def attach_lattice(self, lattice: "MaterializedCube") -> None:
        """Route future ``aggregate`` calls through a materialised lattice.

        The lattice answers covered queries from precomputed cells and
        falls back to the base scan otherwise; it deactivates itself
        automatically when the flat view it was built from is replaced.
        """
        if lattice.cube is not self:
            raise OLAPError("lattice was materialised over a different cube")
        self._lattice = lattice

    def detach_lattice(self) -> None:
        """Stop consulting the attached lattice (if any)."""
        self._lattice = None

    @property
    def lattice(self) -> "MaterializedCube | None":
        """The attached materialised lattice, if any."""
        return self._lattice

    def aggregate(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
    ) -> Table:
        """Group facts by ``levels`` and aggregate.

        ``aggregations`` maps output column → (target, function); when
        omitted the record count is returned.  ``filters`` restricts the
        fact rows before grouping (a dice).  Returns a table with one row
        per populated cell, sorted by the level columns.

        With a lattice attached (:meth:`attach_lattice`), covered queries
        are answered from precomputed cells instead of the fact scan.
        """
        with obs.span(
            "cube.aggregate",
            cube=self.name,
            levels=",".join(levels) if levels else "<grand total>",
            filtered=filters is not None,
        ) as sp:
            lattice = self._lattice
            if lattice is not None and lattice.is_fresh():
                result = lattice.aggregate(
                    levels, aggregations, filters=filters, force=force
                )
            else:
                result = self._aggregate_base(
                    levels, aggregations, filters, force
                )
            sp.set(cells=result.num_rows)
            return result

    def _aggregate_base(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
    ) -> Table:
        """The lattice-free aggregation path (a full scan of the flat view)."""
        qualified = [self.check_level(level) for level in levels]
        aggregations = dict(aggregations or {self.RECORDS: (self.RECORDS, "size")})
        obs.count("olap.aggregate.base_scans")
        with obs.span("scan.base", source="fact table") as scan_sp:
            if filters is None:
                table = self.flat
            else:
                table = self.flat.filter(filters)
                scan_sp.set(predicate=filters.describe())
            scan_sp.set(rows_scanned=self.flat.num_rows, rows_kept=table.num_rows)

        specs: dict[str, tuple[str, str]] = {}
        for out_name, (target, func) in aggregations.items():
            if target == self.RECORDS:
                if func not in ("size", "count"):
                    raise OLAPError(
                        f"the implicit {self.RECORDS!r} measure only supports "
                        f"size/count, not {func!r}"
                    )
                anchor = qualified[0] if qualified else table.column_names[0]
                specs[out_name] = (anchor, "size")
            elif target in self.schema.fact.measures:
                validate_aggregation(self.schema.fact.measures[target], func, force)
                specs[out_name] = (target, func)
            else:
                level = self.check_level(target)
                if func not in ("count", "nunique", "size", "min", "max"):
                    raise OLAPError(
                        f"level {target!r} only supports count/nunique/size/"
                        f"min/max, not {func!r}"
                    )
                specs[out_name] = (level, func)

        if not qualified:
            # Grand total: aggregate the whole table as one group.
            row: dict[str, object] = {}
            for out_name, (target, func) in specs.items():
                column = table.column(target)
                from repro.tabular.groupby import AGGREGATORS
                import numpy as np

                row[out_name] = AGGREGATORS[func](column, np.arange(len(table)))
            return Table.from_rows([row])

        if filters is None:
            # unchanged flat view: reuse the cached key factorisation
            grouped = self._grouped(tuple(qualified))
        else:
            grouped = table.groupby(*qualified)
        result = grouped.agg(**specs)
        return result.sort_by(*qualified)

    def grand_total(
        self,
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
    ) -> dict[str, object]:
        """Single-row aggregate over the whole (possibly filtered) cube."""
        table = self.aggregate([], aggregations, filters)
        return table.row(0)

    def slice_values(self, level: str, value: object) -> Expression:
        """Predicate fixing one level to one member (a slice)."""
        return col(self.check_level(level)).eq(value)

    def query(self) -> "QueryBuilder":
        """Start a fluent query against this cube (drag-and-drop analogue)."""
        from repro.olap.query import QueryBuilder

        return QueryBuilder(self)

    def __repr__(self) -> str:
        return (
            f"Cube({self.name!r}, {self.flat.num_rows} facts, "
            f"{len(self.levels)} levels, measures=[{', '.join(self.measure_names)}])"
        )
