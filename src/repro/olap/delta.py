"""Delta folding: merge append-only aggregate deltas into lattice nodes.

Incremental cube maintenance (DESIGN.md §"Incremental maintenance"): when
an ingest batch only *appends* fact rows, each materialised lattice node
can be brought to the new epoch by aggregating just the appended rows at
the node's grain and merging those cells into the existing node table,
instead of re-scanning the whole (10x–100x larger) fact history.

The stored per-cell statistics were chosen to be decomposable:

* ``__records`` and ``{m}__count`` are plain integer adds;
* ``{m}__sum`` is a None-aware add (an all-null group sums to null);
* ``{m}__min`` / ``{m}__max`` are None-aware min/max — valid **only for
  appends** (the "recheck rule": removing or rewriting a row could retire
  the current extremum, which cannot be detected from the delta alone, so
  deletes/updates force a full rebuild upstream).

Exactness: counts, records, min and max merge bit-identically always.
Float sums merge bit-identically when the summed values are exactly
representable at the accumulated magnitudes (clinical measures at fixed
decimal precision on a binary grid; the parity oracle generates such
data) — otherwise the merged sum may differ from a full rebuild in the
last ulp, because merging re-associates the addition order.
"""

from __future__ import annotations

from typing import Sequence

from repro.tabular.table import Table


def delta_node_table(
    delta_flat: Table, levels: Sequence[str], measures: Sequence[str]
) -> Table:
    """Aggregate only the appended rows at one node's grain.

    Produces the same column layout a full node build does
    (``__records`` + per-measure sum/count/min/max), via the same
    ``GroupBy.agg`` kernels — so a cell that exists *only* in the delta
    carries exactly the statistics a full rebuild would give it.
    """
    specs: dict[str, tuple[str, str]] = {"__records": (levels[0], "size")}
    for name in measures:
        specs[f"{name}__sum"] = (name, "sum")
        specs[f"{name}__count"] = (name, "count")
        specs[f"{name}__min"] = (name, "min")
        specs[f"{name}__max"] = (name, "max")
    return delta_flat.groupby(*levels).agg(**specs)


def _add(a: object, b: object) -> object:
    if a is None:
        return b
    if b is None:
        return a
    return a + b  # type: ignore[operator]


def _merge_min(a: object, b: object) -> object:
    if a is None:
        return b
    if b is None:
        return a
    return a if a <= b else b  # type: ignore[operator]


def _merge_max(a: object, b: object) -> object:
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b  # type: ignore[operator]


def merge_node_tables(
    old: Table,
    delta: Table,
    levels: Sequence[str],
    measures: Sequence[str],
) -> Table:
    """Fold a delta aggregate into an existing node table.

    Cells present in both merge statistic-by-statistic; cells only in the
    delta are taken verbatim.  The result is rebuilt with the old node's
    schema (so dtypes are stable across folds) and re-sorted by the level
    columns — the same deterministic cell order a full rebuild produces.
    """
    if delta.num_rows == 0:
        return old
    level_list = list(levels)
    merged: dict[tuple, dict[str, object]] = {}
    order: list[tuple] = []
    for row in old.to_rows():
        key = tuple(row[level] for level in level_list)
        merged[key] = row
        order.append(key)
    for drow in delta.to_rows():
        key = tuple(drow[level] for level in level_list)
        cell = merged.get(key)
        if cell is None:
            merged[key] = drow
            order.append(key)
            continue
        cell["__records"] = int(cell["__records"]) + int(drow["__records"])  # type: ignore[arg-type]
        for name in measures:
            cell[f"{name}__count"] = (
                int(cell[f"{name}__count"]) + int(drow[f"{name}__count"])  # type: ignore[arg-type]
            )
            cell[f"{name}__sum"] = _add(cell[f"{name}__sum"], drow[f"{name}__sum"])
            cell[f"{name}__min"] = _merge_min(
                cell[f"{name}__min"], drow[f"{name}__min"]
            )
            cell[f"{name}__max"] = _merge_max(
                cell[f"{name}__max"], drow[f"{name}__max"]
            )
    table = Table.from_rows([merged[key] for key in order], schema=dict(old.schema))
    return table.sort_by(*level_list)
