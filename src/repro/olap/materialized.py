"""Materialised aggregate lattice over a cube.

OLAP engines trade storage for latency by precomputing aggregates at
chosen lattice nodes (level combinations) and answering coarser queries by
rolling the precomputed cells up instead of re-scanning facts.  This
module implements that classic design over :class:`~repro.olap.cube.Cube`:

* :meth:`MaterializedCube.materialize` precomputes, per node, the cell
  table with SUM/COUNT/MIN/MAX per measure plus the record count;
* :meth:`MaterializedCube.aggregate` answers a query from the smallest
  materialised superset node — means are recomposed as Σsum/Σcount, so
  non-additive measures still roll up correctly — and falls back to the
  base cube when no node covers the request (or for ``nunique``, which is
  not decomposable);
* :attr:`MaterializedCube.stats` records hits/fallbacks so benches can
  show the trade-off.

This is the "cube materialisation vs lazy aggregation" ablation of
DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.errors import OLAPError
from repro.olap.aggregates import validate_aggregation
from repro.olap.cube import Cube, CubeState
from repro.serving.parallel import parallel_map, resolve_workers
from repro.tabular.expressions import Expression
from repro.tabular.table import Table


@dataclass
class LatticeStats:
    """Hit accounting for one materialised cube."""

    exact_hits: int = 0
    rollup_hits: int = 0
    fallbacks: int = 0

    @property
    def total(self) -> int:
        """All queries answered."""
        return self.exact_hits + self.rollup_hits + self.fallbacks

    def summary(self) -> str:
        """One line: hits vs fallbacks."""
        return (
            f"{self.exact_hits} exact, {self.rollup_hits} rolled up, "
            f"{self.fallbacks} fell back to base ({self.total} total)"
        )


@dataclass
class _Node:
    levels: tuple[str, ...]
    table: Table
    #: columns: per measure m -> (m__sum, m__count, m__min, m__max)
    measures: tuple[str, ...]


class MaterializedCube:
    """A cube wrapper answering aggregations from precomputed nodes."""

    RECORDS = Cube.RECORDS

    def __init__(self, cube: Cube):
        self.cube = cube
        self._nodes: list[_Node] = []
        self.stats = LatticeStats()
        #: identity of the flat view the nodes were computed from
        self._flat_ref: Table | None = None

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def materialize(
        self,
        level_groups: Sequence[Sequence[str]],
        measures: Sequence[str] | None = None,
        max_workers: int | None = None,
    ) -> "MaterializedCube":
        """Precompute the given lattice nodes.

        ``measures`` defaults to every fact measure.  Each node stores,
        per cell, the record count and per-measure sum/count/min/max —
        the decomposable statistics any supported aggregation recomposes
        from.

        Nodes are independent group-bys over the same pinned flat view,
        so with ``max_workers > 1`` they build concurrently (the heavy
        argsort/unique/segment kernels release the GIL).  Every worker
        runs the identical serial per-node computation, so the node
        tables are bit-identical regardless of the worker count.
        """
        measure_names = list(measures or self.cube.schema.fact.measures)
        for name in measure_names:
            self.cube.schema.fact.measure(name)  # validate
        level_groups = [list(group) for group in level_groups]
        # pin one epoch: every node describes the same committed flat view
        state = self.cube._current_state()
        workers = resolve_workers(max_workers)
        with obs.span(
            "lattice.materialize", nodes=len(level_groups), workers=workers
        ) as sp:
            qualified_groups: list[tuple[str, ...]] = []
            for group in level_groups:
                qualified = tuple(
                    self.cube.check_level(level, state) for level in group
                )
                if not qualified:
                    raise OLAPError("cannot materialise an empty level group")
                qualified_groups.append(qualified)

            def build_node(qualified: tuple[str, ...]) -> _Node:
                aggregations: dict[str, tuple[str, str]] = {
                    "__records": (self.RECORDS, "size")
                }
                for name in measure_names:
                    aggregations[f"{name}__sum"] = (name, "sum")
                    aggregations[f"{name}__count"] = (name, "count")
                    aggregations[f"{name}__min"] = (name, "min")
                    aggregations[f"{name}__max"] = (name, "max")
                table = self.cube._aggregate_base(
                    list(qualified), aggregations, force=True, state=state
                )
                return _Node(qualified, table, tuple(measure_names))

            built = parallel_map(build_node, qualified_groups, max_workers=workers)
            self._nodes.extend(built)
            # smaller nodes first so lookups prefer the cheapest superset
            # (stable sort over the deterministic input order, so the node
            # list is identical for any worker count)
            self._nodes.sort(key=lambda node: node.table.num_rows)
            self._flat_ref = state.flat
            sp.set(cells=self.storage_cells())
        obs.set_gauge("olap.lattice.cells", self.storage_cells())
        return self

    def fresh_for(self, flat: Table) -> bool:
        """True if the nodes were computed from exactly this flat view.

        The flat view is rebuilt (as a new object) whenever the underlying
        warehouse changes, so identity comparison is an exact staleness
        test — and, under snapshot isolation, also an exact *epoch* test:
        a lattice only answers for the epoch it was materialised from.
        """
        return bool(self._nodes) and flat is self._flat_ref

    def is_fresh(self) -> bool:
        """True while the nodes still describe the cube's current facts.

        A stale lattice silently stops answering and the cube falls back
        to base scans until re-materialised.
        """
        return self.fresh_for(self.cube.flat)

    @property
    def nodes(self) -> list[tuple[tuple[str, ...], int]]:
        """(levels, cell count) per materialised node."""
        return [(node.levels, node.table.num_rows) for node in self._nodes]

    def storage_cells(self) -> int:
        """Total precomputed cells (the storage cost of the lattice)."""
        return sum(node.table.num_rows for node in self._nodes)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def aggregate(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
        *,
        state: CubeState | None = None,
    ) -> Table:
        """Answer like :meth:`Cube.aggregate`, preferring the lattice.

        Filtered queries stay on the materialised path when every filter
        column is one of the node's levels — the predicate then selects
        whole cells, which aggregate identically to the facts behind them.
        Anything else (``nunique``, level-valued targets, filters on
        non-materialised columns) falls back to the base scan.  ``state``
        pins the epoch the fallback scans (callers holding a snapshot
        pass theirs; ``None`` uses the cube's current epoch).
        """
        qualified = [self.cube.check_level(level, state) for level in levels]
        aggregations = dict(
            aggregations or {self.RECORDS: (self.RECORDS, "size")}
        )

        with obs.span("lattice.lookup", levels=",".join(qualified)) as sp:
            node = self._covering_node(qualified, aggregations, filters)
            if node is None:
                self.stats.fallbacks += 1
                obs.count("olap.lattice.fallback")
                sp.set(outcome="fallback")
                return self.cube._aggregate_base(
                    qualified, aggregations, filters=filters, force=force,
                    state=state,
                )
            if set(node.levels) == set(qualified):
                self.stats.exact_hits += 1
                obs.count("olap.lattice.exact_hit")
                sp.set(outcome="exact")
            else:
                self.stats.rollup_hits += 1
                obs.count("olap.lattice.rollup_hit")
                sp.set(outcome="rollup")
            sp.set(node=",".join(node.levels), node_cells=node.table.num_rows)
            return self._answer_from_node(
                node, qualified, aggregations, filters, force
            )

    def _covering_node(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters: Expression | None = None,
    ) -> _Node | None:
        wanted = set(levels)
        if filters is not None:
            wanted = wanted | set(filters.columns())
        needed_measures = set()
        for target, func in aggregations.values():
            if func == "nunique":
                return None  # distinct counts do not roll up
            if target != self.RECORDS:
                if target not in self.cube.schema.fact.measures:
                    return None  # level-valued aggregation: use the base cube
                needed_measures.add(target)
        for node in self._nodes:
            if wanted <= set(node.levels) and needed_measures <= set(node.measures):
                return node
        return None

    def _answer_from_node(
        self,
        node: _Node,
        levels: list[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters: Expression | None,
        force: bool,
    ) -> Table:
        plans: dict[str, tuple[str, str]] = {}
        for out_name, (target, func) in aggregations.items():
            if target == self.RECORDS:
                plans[out_name] = ("__records", "sum")
                continue
            measure = self.cube.schema.fact.measure(target)
            validate_aggregation(measure, func, force)
            if func == "sum":
                plans[out_name] = (f"{target}__sum", "sum")
            elif func == "count":
                plans[out_name] = (f"{target}__count", "sum")
            elif func == "size":
                # `size` counts fact rows, nulls included; `{measure}__count`
                # drops nulls, so recompose from the record count instead
                plans[out_name] = ("__records", "sum")
            elif func == "min":
                plans[out_name] = (f"{target}__min", "min")
            elif func == "max":
                plans[out_name] = (f"{target}__max", "max")
            elif func == "mean":
                plans[out_name] = ("__mean__", target)  # recomposed below
            else:
                raise OLAPError(
                    f"aggregation {func!r} cannot be answered from the lattice"
                )

        direct = {
            out: spec for out, spec in plans.items() if spec[0] != "__mean__"
        }
        means = {
            out: spec[1] for out, spec in plans.items() if spec[0] == "__mean__"
        }
        request: dict[str, tuple[str, str]] = dict(direct)
        for out, target in means.items():
            request[f"__{out}__sum"] = (f"{target}__sum", "sum")
            request[f"__{out}__count"] = (f"{target}__count", "sum")

        cells = node.table if filters is None else node.table.filter(filters)
        if not levels:
            rows = [self._grand_total_row(cells, request)]
            result = Table.from_rows(rows)
        else:
            result = cells.groupby(*levels).agg(**request)

        if means:
            for out in means:
                sums = result.column(f"__{out}__sum").to_list()
                counts = result.column(f"__{out}__count").to_list()
                values = [
                    (s / c if (s is not None and c) else None)
                    for s, c in zip(sums, counts)
                ]
                result = result.with_column(out, values, dtype="float")
                result = result.drop(f"__{out}__sum", f"__{out}__count")
        ordered = levels + [out for out in aggregations]
        result = result.select([c for c in ordered if c in result.column_names])
        return result.sort_by(*levels) if levels else result

    @staticmethod
    def _grand_total_row(cells: Table, request: dict[str, tuple[str, str]]) -> dict:
        import numpy as np

        from repro.tabular.groupby import AGGREGATORS

        indices = np.arange(cells.num_rows)
        return {
            out: AGGREGATORS[func](cells.column(source), indices)
            for out, (source, func) in request.items()
        }
