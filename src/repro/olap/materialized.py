"""Materialised aggregate lattice over a cube.

OLAP engines trade storage for latency by precomputing aggregates at
chosen lattice nodes (level combinations) and answering coarser queries by
rolling the precomputed cells up instead of re-scanning facts.  This
module implements that classic design over :class:`~repro.olap.cube.Cube`:

* :meth:`MaterializedCube.materialize` precomputes, per node, the cell
  table with SUM/COUNT/MIN/MAX per measure plus the record count;
* :meth:`MaterializedCube.aggregate` answers a query from the smallest
  materialised superset node — means are recomposed as Σsum/Σcount, so
  non-additive measures still roll up correctly — and falls back to the
  base cube when no node covers the request (or for ``nunique``, which is
  not decomposable);
* :attr:`MaterializedCube.stats` records hits/fallbacks so benches can
  show the trade-off.

This is the "cube materialisation vs lazy aggregation" ablation of
DESIGN.md §5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.errors import OLAPError
from repro.olap.aggregates import validate_aggregation
from repro.olap.cube import Cube, CubeState
from repro.serving.parallel import parallel_map, resolve_workers
from repro.serving.resilience import checkpoint
from repro.storage import faults
from repro.tabular.expressions import Expression
from repro.tabular.table import Table


@dataclass
class LatticeStats:
    """Hit accounting for one materialised cube."""

    exact_hits: int = 0
    rollup_hits: int = 0
    fallbacks: int = 0

    @property
    def total(self) -> int:
        """All queries answered."""
        return self.exact_hits + self.rollup_hits + self.fallbacks

    def summary(self) -> str:
        """One line: hits vs fallbacks."""
        return (
            f"{self.exact_hits} exact, {self.rollup_hits} rolled up, "
            f"{self.fallbacks} fell back to base ({self.total} total)"
        )


@dataclass
class _Node:
    levels: tuple[str, ...]
    table: Table
    #: columns: per measure m -> (m__sum, m__count, m__min, m__max)
    measures: tuple[str, ...]


class MaterializedCube:
    """A cube wrapper answering aggregations from precomputed nodes."""

    RECORDS = Cube.RECORDS

    def __init__(self, cube: Cube):
        self.cube = cube
        self._nodes: list[_Node] = []
        self.stats = LatticeStats()
        #: the epoch the nodes were computed from (None until materialised)
        self._pinned_state: CubeState | None = None

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def materialize(
        self,
        level_groups: Sequence[Sequence[str]],
        measures: Sequence[str] | None = None,
        max_workers: int | None = None,
    ) -> "MaterializedCube":
        """Precompute the given lattice nodes.

        ``measures`` defaults to every fact measure.  Each node stores,
        per cell, the record count and per-measure sum/count/min/max —
        the decomposable statistics any supported aggregation recomposes
        from.

        Nodes are independent group-bys over the same pinned flat view,
        so with ``max_workers > 1`` they build concurrently (the heavy
        argsort/unique/segment kernels release the GIL).  Every worker
        runs the identical serial per-node computation, so the node
        tables are bit-identical regardless of the worker count.
        """
        measure_names = list(measures or self.cube.schema.fact.measures)
        for name in measure_names:
            self.cube.schema.fact.measure(name)  # validate
        level_groups = [list(group) for group in level_groups]
        # pin one epoch: every node describes the same committed flat view
        state = self.cube._current_state()
        if self._pinned_state is not None and state is not self._pinned_state:
            # the cube moved on since the last materialisation: nodes built
            # from the older epoch would silently mix stale cells into the
            # fresh lattice, so they are dropped, not extended
            obs.count("olap.lattice.stale_nodes_dropped", len(self._nodes))
            self._nodes = []
        workers = resolve_workers(max_workers)
        with obs.span(
            "lattice.materialize", nodes=len(level_groups), workers=workers
        ) as sp:
            qualified_groups: list[tuple[str, ...]] = []
            for group in level_groups:
                qualified = tuple(
                    self.cube.check_level(level, state) for level in group
                )
                if not qualified:
                    raise OLAPError("cannot materialise an empty level group")
                qualified_groups.append(qualified)

            def build_node(qualified: tuple[str, ...]) -> _Node:
                aggregations: dict[str, tuple[str, str]] = {
                    "__records": (self.RECORDS, "size")
                }
                for name in measure_names:
                    aggregations[f"{name}__sum"] = (name, "sum")
                    aggregations[f"{name}__count"] = (name, "count")
                    aggregations[f"{name}__min"] = (name, "min")
                    aggregations[f"{name}__max"] = (name, "max")
                table = self.cube._aggregate_base(
                    list(qualified), aggregations, force=True, state=state
                )
                return _Node(qualified, table, tuple(measure_names))

            built = parallel_map(build_node, qualified_groups, max_workers=workers)
            self._nodes.extend(built)
            # smaller nodes first so lookups prefer the cheapest superset
            # (stable sort over the deterministic input order, so the node
            # list is identical for any worker count)
            self._nodes.sort(key=lambda node: node.table.num_rows)
            self._pinned_state = state
            sp.set(cells=self.storage_cells())
        obs.set_gauge("olap.lattice.cells", self.storage_cells())
        return self

    def fresh_for_state(self, state: CubeState) -> bool:
        """True if the nodes describe exactly this epoch.

        Epoch states are immutable once published, so identity comparison
        is an exact staleness test: a lattice only answers for the epoch
        it was materialised from (or delta-folded / retagged to).
        """
        return bool(self._nodes) and state is self._pinned_state

    def fresh_for(self, flat: Table) -> bool:
        """True if the nodes were computed from exactly this flat view.

        Identity test against the pinned epoch's flat view, without
        forcing a lazily-extended epoch to materialise its concatenation.
        """
        return (
            bool(self._nodes)
            and self._pinned_state is not None
            and self._pinned_state.flat_is(flat)
        )

    def is_fresh(self) -> bool:
        """True while the nodes still describe the cube's current epoch.

        A stale lattice silently stops answering and the cube falls back
        to base scans until re-materialised (or delta-folded forward).
        """
        return self.fresh_for_state(self.cube._current_state())

    def snapshot(self) -> dict:
        """JSON-ready node + hit accounting (``stats`` command, health)."""
        pinned = self._pinned_state
        return {
            "nodes": len(self._nodes),
            "epoch": pinned.epoch if pinned is not None else None,
            "fresh": self.is_fresh(),
            "exact_hits": self.stats.exact_hits,
            "rollup_hits": self.stats.rollup_hits,
            "fallbacks": self.stats.fallbacks,
        }

    def fold_delta(
        self, new_state: CubeState, delta_flat: Table
    ) -> "MaterializedCube":
        """A new lattice for ``new_state`` by folding appended rows in.

        ``delta_flat`` must contain exactly the rows appended between the
        pinned epoch and ``new_state`` (same flat-view schema).  Each node
        aggregates only the delta at its grain and merges the cells into
        its existing table — O(delta + cells) instead of O(history).  The
        old lattice is left untouched, still answering for readers pinned
        to the old epoch; the returned lattice carries fresh stats.

        Only valid for pure appends — the min/max recheck rule: deletes or
        updates could retire a current extremum invisibly, so those paths
        must full-rebuild instead (see :mod:`repro.olap.delta`).
        """
        from repro.olap.delta import delta_node_table, merge_node_tables

        folded = MaterializedCube(self.cube)
        with obs.span(
            "lattice.delta_fold",
            nodes=len(self._nodes),
            delta_rows=delta_flat.num_rows,
        ) as sp:
            nodes: list[_Node] = []
            for node in self._nodes:
                if delta_flat.num_rows == 0:
                    table = node.table
                else:
                    delta = delta_node_table(
                        delta_flat, node.levels, node.measures
                    )
                    table = merge_node_tables(
                        node.table, delta, node.levels, node.measures
                    )
                nodes.append(_Node(node.levels, table, node.measures))
            # same ordering invariant as materialize(): smallest node first
            nodes.sort(key=lambda node: node.table.num_rows)
            folded._nodes = nodes
            folded._pinned_state = new_state
            sp.set(cells=folded.storage_cells())
        obs.set_gauge("olap.lattice.cells", folded.storage_cells())
        return folded

    def retag(self, new_state: CubeState) -> "MaterializedCube":
        """A new lattice serving the same node tables for ``new_state``.

        Valid only when the new epoch's flat view carries identical rows
        for every materialised level and measure — e.g. after a feedback
        fold, which appends a dimension *column* but leaves every existing
        cell untouched.  Queries over the new dimension are simply not
        covered and fall back to the base scan.
        """
        retagged = MaterializedCube(self.cube)
        retagged._nodes = list(self._nodes)
        retagged._pinned_state = new_state
        return retagged

    @property
    def pinned_epoch(self) -> int | None:
        """Epoch id the nodes answer for (None before materialisation)."""
        return self._pinned_state.epoch if self._pinned_state is not None else None

    @property
    def nodes(self) -> list[tuple[tuple[str, ...], int]]:
        """(levels, cell count) per materialised node."""
        return [(node.levels, node.table.num_rows) for node in self._nodes]

    def storage_cells(self) -> int:
        """Total precomputed cells (the storage cost of the lattice)."""
        return sum(node.table.num_rows for node in self._nodes)

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------

    def aggregate(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]] | None = None,
        filters: Expression | None = None,
        force: bool = False,
        *,
        state: CubeState | None = None,
    ) -> Table:
        """Answer like :meth:`Cube.aggregate`, preferring the lattice.

        Filtered queries stay on the materialised path when every filter
        column is one of the node's levels — the predicate then selects
        whole cells, which aggregate identically to the facts behind them.
        Anything else (``nunique``, level-valued targets, filters on
        non-materialised columns) falls back to the base scan.  ``state``
        pins the epoch the fallback scans (callers holding a snapshot
        pass theirs; ``None`` uses the cube's current epoch).
        """
        qualified = [self.cube.check_level(level, state) for level in levels]
        aggregations = dict(
            aggregations or {self.RECORDS: (self.RECORDS, "size")}
        )
        if state is not None and state is not self._pinned_state:
            # Epoch guard: a reader holding an older (or newer) snapshot
            # must not be answered from this epoch's cells — scan its own
            # pinned flat view instead.  The guard is a planned stage
            # like any other, so it gets its own span: without one the
            # staleness fallback was invisible in explain() and could
            # not be told apart from a planner re-route.
            self.stats.fallbacks += 1
            obs.count("olap.lattice.fallback")
            obs.count("olap.lattice.epoch_mismatch")
            with obs.span("lattice.lookup", levels=",".join(qualified)) as sp:
                sp.set(outcome="fallback", fallback_reason="epoch_mismatch")
                return self.cube._aggregate_base(
                    qualified, aggregations, filters=filters, force=force,
                    state=state,
                )

        planner = self.cube.planner
        with obs.span("lattice.lookup", levels=",".join(qualified)) as sp:
            # chaos boundary: this fire is *inside* the lattice tier, so an
            # injected error here trips the lattice breaker in the caller
            # and degrades the query to the base-scan rung
            faults.fire("serving.scan")
            checkpoint()
            candidates = self._covering_nodes(qualified, aggregations, filters)
            if not candidates:
                self.stats.fallbacks += 1
                obs.count("olap.lattice.fallback")
                sp.set(outcome="fallback", fallback_reason="no_covering_node")
                return self._fallback_scan(
                    planner, sp, qualified, aggregations, filters, force, state
                )
            node = candidates[0]
            if planner is not None:
                est_state = (
                    state if state is not None else self.cube._current_state()
                )
                base_rows = planner.estimate_base_rows(est_state, filters)
                decision = planner.choose_route(
                    [
                        (",".join(c.levels), c.table.num_rows)
                        for c in candidates
                    ],
                    base_rows,
                )
                if decision is not None:
                    sp.set(
                        est_cost_ms=round(decision.est_cost_ms, 4),
                        route=decision.kind,
                        planned=decision.reason,
                    )
                    if decision.deadline_risk:
                        sp.set(deadline_risk=True)
                    if decision.kind == "base":
                        # the cost model says the (pruned) scan is cheaper
                        # than any covering node — a re-route, not a
                        # coverage failure, hence its own fallback_reason
                        self.stats.fallbacks += 1
                        obs.count("olap.lattice.fallback")
                        obs.count("olap.lattice.planner_reroute")
                        sp.set(outcome="fallback", fallback_reason="planner_cost")
                        return self._fallback_scan(
                            planner, sp, qualified, aggregations, filters,
                            force, state, base_rows=base_rows,
                        )
                    node = candidates[decision.node_index]
            if set(node.levels) == set(qualified):
                self.stats.exact_hits += 1
                obs.count("olap.lattice.exact_hit")
                sp.set(outcome="exact")
            else:
                self.stats.rollup_hits += 1
                obs.count("olap.lattice.rollup_hit")
                sp.set(outcome="rollup")
            sp.set(node=",".join(node.levels), node_cells=node.table.num_rows)
            started = time.perf_counter()
            result = self._answer_from_node(
                node, qualified, aggregations, filters, force
            )
            if planner is not None:
                planner.observe_route(
                    "node",
                    (time.perf_counter() - started) * 1000.0,
                    node.table.num_rows,
                )
            return result

    def _fallback_scan(
        self,
        planner,
        sp,
        qualified: list[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters: Expression | None,
        force: bool,
        state: CubeState | None,
        base_rows: int | None = None,
    ) -> Table:
        """Base-scan fallback from inside the lookup span, planner-timed."""
        if planner is None:
            return self.cube._aggregate_base(
                qualified, aggregations, filters=filters, force=force,
                state=state,
            )
        if base_rows is None:
            est_state = state if state is not None else self.cube._current_state()
            base_rows = planner.estimate_base_rows(est_state, filters)
        started = time.perf_counter()
        result = self.cube._aggregate_base(
            qualified, aggregations, filters=filters, force=force, state=state
        )
        planner.observe_route(
            "base", (time.perf_counter() - started) * 1000.0, base_rows
        )
        return result

    def _covering_nodes(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters: Expression | None = None,
    ) -> list[_Node]:
        """Every node able to answer the request, smallest-first.

        Index 0 is the historical fixed preference (``_nodes`` is kept
        sorted by cell count); the cost-based router may pick any other
        entry or none.  Empty when no node covers the request.
        """
        wanted = set(levels)
        if filters is not None:
            wanted = wanted | set(filters.columns())
        needed_measures = set()
        for target, func in aggregations.values():
            if func == "nunique":
                return []  # distinct counts do not roll up
            if target != self.RECORDS:
                if target not in self.cube.schema.fact.measures:
                    return []  # level-valued aggregation: use the base cube
                needed_measures.add(target)
        return [
            node
            for node in self._nodes
            if wanted <= set(node.levels)
            and needed_measures <= set(node.measures)
        ]

    def _covering_node(
        self,
        levels: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters: Expression | None = None,
    ) -> _Node | None:
        """The historical preference: the smallest covering node, if any."""
        candidates = self._covering_nodes(levels, aggregations, filters)
        return candidates[0] if candidates else None

    def _answer_from_node(
        self,
        node: _Node,
        levels: list[str],
        aggregations: Mapping[str, tuple[str, str]],
        filters: Expression | None,
        force: bool,
    ) -> Table:
        plans: dict[str, tuple[str, str]] = {}
        for out_name, (target, func) in aggregations.items():
            if target == self.RECORDS:
                plans[out_name] = ("__records", "sum")
                continue
            measure = self.cube.schema.fact.measure(target)
            validate_aggregation(measure, func, force)
            if func == "sum":
                plans[out_name] = (f"{target}__sum", "sum")
            elif func == "count":
                plans[out_name] = (f"{target}__count", "sum")
            elif func == "size":
                # `size` counts fact rows, nulls included; `{measure}__count`
                # drops nulls, so recompose from the record count instead
                plans[out_name] = ("__records", "sum")
            elif func == "min":
                plans[out_name] = (f"{target}__min", "min")
            elif func == "max":
                plans[out_name] = (f"{target}__max", "max")
            elif func == "mean":
                plans[out_name] = ("__mean__", target)  # recomposed below
            else:
                raise OLAPError(
                    f"aggregation {func!r} cannot be answered from the lattice"
                )

        direct = {
            out: spec for out, spec in plans.items() if spec[0] != "__mean__"
        }
        means = {
            out: spec[1] for out, spec in plans.items() if spec[0] == "__mean__"
        }
        request: dict[str, tuple[str, str]] = dict(direct)
        for out, target in means.items():
            request[f"__{out}__sum"] = (f"{target}__sum", "sum")
            request[f"__{out}__count"] = (f"{target}__count", "sum")

        cells = node.table if filters is None else node.table.filter(filters)
        if not levels:
            rows = [self._grand_total_row(cells, request)]
            result = Table.from_rows(rows)
        else:
            result = cells.groupby(*levels).agg(**request)

        if means:
            for out in means:
                sums = result.column(f"__{out}__sum").to_list()
                counts = result.column(f"__{out}__count").to_list()
                values = [
                    (s / c if (s is not None and c) else None)
                    for s, c in zip(sums, counts)
                ]
                result = result.with_column(out, values, dtype="float")
                result = result.drop(f"__{out}__sum", f"__{out}__count")
        ordered = levels + [out for out in aggregations]
        result = result.select([c for c in ordered if c in result.column_names])
        return result.sort_by(*levels) if levels else result

    @staticmethod
    def _grand_total_row(cells: Table, request: dict[str, tuple[str, str]]) -> dict:
        import numpy as np

        from repro.tabular.groupby import AGGREGATORS

        if cells.num_rows == 0:
            # A filter eliminated every cell.  The base cube's grand total
            # over zero fact rows yields 0 for the counting aggregates
            # (``size``/``count`` short-circuit to 0) and null for value
            # aggregates — summing the lattice's ``__records``/``__count``
            # columns over an empty slice must reproduce exactly that,
            # not kernel-dependent empty-slice behaviour.
            return {
                out: (
                    0
                    if func == "sum"
                    and (source == "__records" or source.endswith("__count"))
                    else None
                )
                for out, (source, func) in request.items()
            }
        indices = np.arange(cells.num_rows)
        return {
            out: AGGREGATORS[func](cells.column(source), indices)
            for out, (source, func) in request.items()
        }
