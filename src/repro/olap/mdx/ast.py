"""AST nodes for the MDX subset."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemberRef:
    """``[dim].[attr].[value]`` — one member of one level."""

    dimension: str
    attribute: str
    value: str

    @property
    def level(self) -> str:
        """Qualified level name used by the cube."""
        return f"{self.dimension}.{self.attribute}"

    def render(self) -> str:
        """Back to MDX text."""
        return f"[{self.dimension}].[{self.attribute}].[{self.value}]"


@dataclass(frozen=True)
class MeasureRef:
    """``[Measures].[name]`` — a cube measure."""

    name: str

    def render(self) -> str:
        """Back to MDX text."""
        return f"[Measures].[{self.name}]"


@dataclass(frozen=True)
class DistinctCountRef:
    """``DISTINCTCOUNT([dim].[attr])`` — a computed distinct-count measure."""

    dimension: str
    attribute: str

    @property
    def level(self) -> str:
        """Qualified level name the count runs over."""
        return f"{self.dimension}.{self.attribute}"

    def render(self) -> str:
        """Back to MDX text."""
        return f"DISTINCTCOUNT([{self.dimension}].[{self.attribute}])"


@dataclass(frozen=True)
class LevelMembers:
    """``[dim].[attr].MEMBERS`` — expands to every member of the level."""

    dimension: str
    attribute: str

    @property
    def level(self) -> str:
        """Qualified level name."""
        return f"{self.dimension}.{self.attribute}"

    def render(self) -> str:
        """Back to MDX text."""
        return f"[{self.dimension}].[{self.attribute}].MEMBERS"


@dataclass(frozen=True)
class ExplicitSet:
    """``{ tuple, tuple, ... }`` — an enumerated set of axis tuples."""

    tuples: tuple[tuple, ...]  # each inner tuple holds MemberRef/MeasureRef/DistinctCountRef

    def render(self) -> str:
        """Back to MDX text."""
        parts = []
        for tup in self.tuples:
            if len(tup) == 1:
                parts.append(tup[0].render())
            else:
                parts.append("(" + ", ".join(ref.render() for ref in tup) + ")")
        return "{" + ", ".join(parts) + "}"


@dataclass(frozen=True)
class CrossJoin:
    """``CROSSJOIN(set, set)`` — cartesian product of two sets."""

    left: "SetExpr"
    right: "SetExpr"

    def render(self) -> str:
        """Back to MDX text."""
        return f"CROSSJOIN({self.left.render()}, {self.right.render()})"


@dataclass(frozen=True)
class MemberChildren:
    """``[dim].[attr].[value].CHILDREN`` — the finer-level members under a
    coarse member, resolved through the dimension's drill hierarchy."""

    dimension: str
    attribute: str
    value: str

    @property
    def level(self) -> str:
        """Qualified coarse level."""
        return f"{self.dimension}.{self.attribute}"

    def render(self) -> str:
        """Back to MDX text."""
        return f"[{self.dimension}].[{self.attribute}].[{self.value}].CHILDREN"


@dataclass(frozen=True)
class TopCount:
    """``TOPCOUNT(set, n [, measure])`` — best n tuples by a measure."""

    inner: "SetExpr"
    count: int
    measure: "MeasureRef | DistinctCountRef | None" = None

    def render(self) -> str:
        """Back to MDX text."""
        suffix = f", {self.measure.render()}" if self.measure is not None else ""
        return f"TOPCOUNT({self.inner.render()}, {self.count}{suffix})"


@dataclass(frozen=True)
class FilterSet:
    """``FILTER(set, measure op number)`` — tuples whose aggregate passes."""

    inner: "SetExpr"
    measure: "MeasureRef | DistinctCountRef"
    comparator: str
    threshold: float

    def render(self) -> str:
        """Back to MDX text."""
        return (
            f"FILTER({self.inner.render()}, {self.measure.render()} "
            f"{self.comparator} {self.threshold:g})"
        )


@dataclass(frozen=True)
class OrderSet:
    """``ORDER(set, measure [, ASC|DESC])`` — tuples sorted by a measure."""

    inner: "SetExpr"
    measure: "MeasureRef | DistinctCountRef"
    descending: bool = False

    def render(self) -> str:
        """Back to MDX text."""
        direction = "DESC" if self.descending else "ASC"
        return f"ORDER({self.inner.render()}, {self.measure.render()}, {direction})"


SetExpr = (
    ExplicitSet | LevelMembers | CrossJoin | MemberChildren
    | TopCount | FilterSet | OrderSet
)


@dataclass(frozen=True)
class MdxQuery:
    """A full parsed query."""

    columns: SetExpr
    rows: SetExpr | None
    cube: str
    slicer: tuple = field(default_factory=tuple)  # MemberRef/MeasureRef refs
    non_empty_columns: bool = False
    non_empty_rows: bool = False
    #: ``EXPLAIN SELECT ...`` — return a measured plan instead of just the grid
    explain: bool = False

    def render(self) -> str:
        """Back to MDX text (normalised whitespace)."""
        col_prefix = "NON EMPTY " if self.non_empty_columns else ""
        text = "EXPLAIN " if self.explain else ""
        text += f"SELECT {col_prefix}{self.columns.render()} ON COLUMNS"
        if self.rows is not None:
            row_prefix = "NON EMPTY " if self.non_empty_rows else ""
            text += f", {row_prefix}{self.rows.render()} ON ROWS"
        text += f" FROM {self.cube}"
        if self.slicer:
            if len(self.slicer) == 1:
                text += f" WHERE {self.slicer[0].render()}"
            else:
                text += " WHERE (" + ", ".join(r.render() for r in self.slicer) + ")"
        return text
