"""Tokenizer for the MDX subset."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import LexError


class TokenType(Enum):
    """Kinds of MDX tokens."""

    KEYWORD = "keyword"          # SELECT, ON, COLUMNS, ROWS, FROM, WHERE, ...
    BRACKETED = "bracketed"      # [anything]
    IDENT = "ident"              # bare cube names
    NUMBER = "number"            # TOPCOUNT counts, FILTER thresholds
    COMPARATOR = "comparator"    # > >= < <= = <>
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    DOT = "dot"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "EXPLAIN",
        "SELECT", "ON", "COLUMNS", "ROWS", "FROM", "WHERE",
        "MEMBERS", "CROSSJOIN", "DISTINCTCOUNT",
        "NON", "EMPTY", "TOPCOUNT", "FILTER", "ORDER",
        "CHILDREN", "ASC", "DESC",
    }
)

_PUNCT = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
}

_COMPARATORS = ("<=", ">=", "<>", "=", "<", ">")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r}@{self.position})"


def tokenize(source: str) -> list[Token]:
    """Split MDX source into tokens; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        # '.' may start a number like .5 — punctuation check must not eat it
        if ch in _PUNCT and not (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        matched = next(
            (op for op in _COMPARATORS if source.startswith(op, i)), None
        )
        if matched:
            tokens.append(Token(TokenType.COMPARATOR, matched, i))
            i += len(matched)
            continue
        if ch.isdigit() or ch == "." or (
            ch == "-" and i + 1 < n and (source[i + 1].isdigit() or source[i + 1] == ".")
        ):
            j = i + 1
            seen_dot = ch == "."
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, source[i:j], i))
            i = j
            continue
        if ch == "[":
            end = source.find("]", i + 1)
            if end < 0:
                raise LexError("unterminated '[' delimiter", i)
            inner = source[i + 1 : end]
            if not inner:
                raise LexError("empty bracketed name", i)
            tokens.append(Token(TokenType.BRACKETED, inner, i))
            i = end + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
