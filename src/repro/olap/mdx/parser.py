"""Recursive-descent parser for the MDX subset."""

from __future__ import annotations

from repro.errors import ParseError
from repro.olap.mdx.ast import (
    CrossJoin,
    DistinctCountRef,
    ExplicitSet,
    FilterSet,
    LevelMembers,
    MdxQuery,
    MeasureRef,
    MemberChildren,
    MemberRef,
    OrderSet,
    SetExpr,
    TopCount,
)
from repro.olap.mdx.lexer import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, type_: TokenType, text: str | None = None) -> Token:
        token = self.peek()
        if token.type is not type_ or (text is not None and token.text != text):
            wanted = text or type_.value
            raise ParseError(
                f"expected {wanted} but found {token.text or 'end of query'!r} "
                f"at offset {token.position}"
            )
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.type is TokenType.KEYWORD and token.text == word

    # -- grammar ----------------------------------------------------------

    def parse_non_empty(self) -> bool:
        if self.at_keyword("NON"):
            self.advance()
            self.expect(TokenType.KEYWORD, "EMPTY")
            return True
        return False

    def parse_query(self) -> MdxQuery:
        explain = False
        if self.at_keyword("EXPLAIN"):
            self.advance()
            explain = True
        self.expect(TokenType.KEYWORD, "SELECT")
        first_non_empty = self.parse_non_empty()
        first_set = self.parse_set()
        self.expect(TokenType.KEYWORD, "ON")
        first_axis = self.expect(TokenType.KEYWORD).text
        if first_axis not in ("COLUMNS", "ROWS"):
            raise ParseError(f"axis must be COLUMNS or ROWS, got {first_axis}")
        second_set: SetExpr | None = None
        second_axis: str | None = None
        second_non_empty = False
        if self.peek().type is TokenType.COMMA:
            self.advance()
            second_non_empty = self.parse_non_empty()
            second_set = self.parse_set()
            self.expect(TokenType.KEYWORD, "ON")
            second_axis = self.expect(TokenType.KEYWORD).text
            if second_axis not in ("COLUMNS", "ROWS"):
                raise ParseError(f"axis must be COLUMNS or ROWS, got {second_axis}")
            if second_axis == first_axis:
                raise ParseError(f"axis {first_axis} specified twice")
        self.expect(TokenType.KEYWORD, "FROM")
        cube_token = self.peek()
        if cube_token.type in (TokenType.IDENT, TokenType.BRACKETED):
            cube = self.advance().text
        else:
            raise ParseError(
                f"expected a cube name after FROM, found {cube_token.text!r}"
            )
        slicer: tuple = ()
        if self.at_keyword("WHERE"):
            self.advance()
            slicer = self.parse_slicer()
        self.expect(TokenType.EOF)

        axes = {first_axis: (first_set, first_non_empty)}
        if second_axis is not None:
            axes[second_axis] = (second_set, second_non_empty)
        if "COLUMNS" not in axes:
            raise ParseError("a query must place a set ON COLUMNS")
        rows_entry = axes.get("ROWS")
        return MdxQuery(
            columns=axes["COLUMNS"][0],
            rows=rows_entry[0] if rows_entry else None,
            cube=cube,
            slicer=slicer,
            non_empty_columns=axes["COLUMNS"][1],
            non_empty_rows=rows_entry[1] if rows_entry else False,
            explain=explain,
        )

    def parse_set(self) -> SetExpr:
        token = self.peek()
        if token.type is TokenType.LBRACE:
            return self.parse_explicit_set()
        if self.at_keyword("CROSSJOIN"):
            self.advance()
            self.expect(TokenType.LPAREN)
            left = self.parse_set()
            self.expect(TokenType.COMMA)
            right = self.parse_set()
            self.expect(TokenType.RPAREN)
            return CrossJoin(left, right)
        if self.at_keyword("TOPCOUNT"):
            return self.parse_topcount()
        if self.at_keyword("FILTER"):
            return self.parse_filter()
        if self.at_keyword("ORDER"):
            return self.parse_order()
        if self.at_keyword("DISTINCTCOUNT"):
            return ExplicitSet(((self.parse_distinct_count(),),))
        if token.type is TokenType.BRACKETED:
            return self.parse_bracket_chain_as_set()
        raise ParseError(
            f"expected a set expression, found {token.text or 'end of query'!r} "
            f"at offset {token.position}"
        )

    def parse_measure_ref(self):
        """A measure argument: [Measures].[name] or DISTINCTCOUNT(...)."""
        if self.at_keyword("DISTINCTCOUNT"):
            return self.parse_distinct_count()
        parts = self.parse_bracket_parts()
        ref = self.refs_from_parts(parts)
        if not isinstance(ref, (MeasureRef, DistinctCountRef)):
            raise ParseError(
                "expected a measure ([Measures].[name] or DISTINCTCOUNT), got "
                + ref.render()
            )
        return ref

    def parse_number(self) -> float:
        token = self.expect(TokenType.NUMBER)
        return float(token.text)

    def parse_topcount(self) -> TopCount:
        self.expect(TokenType.KEYWORD, "TOPCOUNT")
        self.expect(TokenType.LPAREN)
        inner = self.parse_set()
        self.expect(TokenType.COMMA)
        count = self.parse_number()
        if count != int(count) or count < 1:
            raise ParseError(f"TOPCOUNT needs a positive integer, got {count}")
        measure = None
        if self.peek().type is TokenType.COMMA:
            self.advance()
            measure = self.parse_measure_ref()
        self.expect(TokenType.RPAREN)
        return TopCount(inner, int(count), measure)

    def parse_filter(self) -> FilterSet:
        self.expect(TokenType.KEYWORD, "FILTER")
        self.expect(TokenType.LPAREN)
        inner = self.parse_set()
        self.expect(TokenType.COMMA)
        measure = self.parse_measure_ref()
        comparator = self.expect(TokenType.COMPARATOR).text
        threshold = self.parse_number()
        self.expect(TokenType.RPAREN)
        return FilterSet(inner, measure, comparator, threshold)

    def parse_order(self) -> OrderSet:
        self.expect(TokenType.KEYWORD, "ORDER")
        self.expect(TokenType.LPAREN)
        inner = self.parse_set()
        self.expect(TokenType.COMMA)
        measure = self.parse_measure_ref()
        descending = False
        if self.peek().type is TokenType.COMMA:
            self.advance()
            direction = self.expect(TokenType.KEYWORD).text
            if direction not in ("ASC", "DESC"):
                raise ParseError(f"ORDER direction must be ASC or DESC, got {direction}")
            descending = direction == "DESC"
        self.expect(TokenType.RPAREN)
        return OrderSet(inner, measure, descending)

    def parse_explicit_set(self) -> ExplicitSet:
        self.expect(TokenType.LBRACE)
        tuples: list[tuple] = []
        while True:
            tuples.append(self.parse_tuple())
            if self.peek().type is TokenType.COMMA:
                self.advance()
                continue
            break
        self.expect(TokenType.RBRACE)
        return ExplicitSet(tuple(tuples))

    def parse_tuple(self) -> tuple:
        if self.peek().type is TokenType.LPAREN:
            self.advance()
            refs = [self.parse_ref()]
            while self.peek().type is TokenType.COMMA:
                self.advance()
                refs.append(self.parse_ref())
            self.expect(TokenType.RPAREN)
            return tuple(refs)
        return (self.parse_ref(),)

    def parse_ref(self):
        if self.at_keyword("DISTINCTCOUNT"):
            return self.parse_distinct_count()
        parts = self.parse_bracket_parts()
        return self.refs_from_parts(parts)

    def parse_distinct_count(self) -> DistinctCountRef:
        self.expect(TokenType.KEYWORD, "DISTINCTCOUNT")
        self.expect(TokenType.LPAREN)
        parts = self.parse_bracket_parts()
        self.expect(TokenType.RPAREN)
        if len(parts) != 2:
            raise ParseError(
                "DISTINCTCOUNT expects [dimension].[attribute], got "
                f"{len(parts)} parts"
            )
        return DistinctCountRef(parts[0], parts[1])

    def parse_bracket_parts(self) -> list[str]:
        parts = [self.expect(TokenType.BRACKETED).text]
        while self.peek().type is TokenType.DOT:
            # stop before .MEMBERS / .CHILDREN — the caller handles them
            next_token = self.tokens[self.pos + 1]
            if next_token.type is TokenType.KEYWORD and next_token.text in (
                "MEMBERS", "CHILDREN"
            ):
                break
            self.advance()
            parts.append(self.expect(TokenType.BRACKETED).text)
        return parts

    def refs_from_parts(self, parts: list[str]):
        if parts[0].lower() == "measures":
            if len(parts) != 2:
                raise ParseError(
                    f"[Measures] takes exactly one name, got {parts[1:]!r}"
                )
            return MeasureRef(parts[1])
        if len(parts) == 3:
            return MemberRef(parts[0], parts[1], parts[2])
        raise ParseError(
            "expected [dim].[attr].[value] or [Measures].[name], got "
            + ".".join(f"[{p}]" for p in parts)
        )

    def parse_bracket_chain_as_set(self) -> SetExpr:
        parts = self.parse_bracket_parts()
        if self.peek().type is TokenType.DOT:
            # must be .MEMBERS or .CHILDREN
            self.advance()
            word = self.expect(TokenType.KEYWORD).text
            if word == "MEMBERS":
                if len(parts) != 2:
                    raise ParseError(
                        ".MEMBERS applies to a level [dim].[attr], got "
                        + ".".join(f"[{p}]" for p in parts)
                    )
                return LevelMembers(parts[0], parts[1])
            if word == "CHILDREN":
                if len(parts) != 3:
                    raise ParseError(
                        ".CHILDREN applies to a member [dim].[attr].[value], "
                        "got " + ".".join(f"[{p}]" for p in parts)
                    )
                return MemberChildren(parts[0], parts[1], parts[2])
            raise ParseError(f"expected MEMBERS or CHILDREN, got {word}")
        return ExplicitSet(((self.refs_from_parts(parts),),))

    def parse_slicer(self) -> tuple:
        return self.parse_tuple()


def parse_mdx(source: str) -> MdxQuery:
    """Parse MDX text into an :class:`~repro.olap.mdx.ast.MdxQuery`."""
    return _Parser(tokenize(source)).parse_query()
