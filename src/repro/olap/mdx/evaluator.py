"""Evaluation of parsed MDX against a :class:`~repro.olap.cube.Cube`."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import obs
from repro.errors import EvaluationError
from repro.obs.explain import ExplainReport, profile
from repro.olap.crosstab import Crosstab
from repro.olap.cube import Cube
from repro.olap.mdx.ast import (
    CrossJoin,
    DistinctCountRef,
    ExplicitSet,
    FilterSet,
    LevelMembers,
    MdxQuery,
    MeasureRef,
    MemberChildren,
    MemberRef,
    OrderSet,
    SetExpr,
    TopCount,
)
from repro.olap.mdx.parser import parse_mdx
from repro.olap.query import serving_scope
from repro.serving.resilience import active_degradations
from repro.tabular.dtypes import DType
from repro.tabular.expressions import Expression, col


@dataclass(frozen=True)
class _Member:
    """A resolved member: qualified level + typed value."""

    level: str
    value: object

    def label(self) -> str:
        return "∅" if self.value is None else str(self.value)


@dataclass(frozen=True)
class _Measure:
    """A resolved measure: display name + (target, aggregation)."""

    name: str
    target: str
    aggregation: str


def _coerce_member_value(cube: Cube, level: str, text: str) -> object:
    """Interpret a bracketed member value in the level's dtype."""
    dtype = cube.flat.schema[level]
    if dtype is DType.STR:
        return text
    try:
        if dtype is DType.INT:
            return int(text)
        if dtype is DType.FLOAT:
            return float(text)
        if dtype is DType.BOOL:
            return text.lower() in ("true", "1", "yes")
    except ValueError:
        pass
    return text


def _resolve_measure(cube: Cube, ref: MeasureRef | DistinctCountRef) -> _Measure:
    if isinstance(ref, DistinctCountRef):
        level = cube.check_level(ref.level)
        return _Measure(f"distinctcount_{ref.attribute}", level, "nunique")
    if ref.name == Cube.RECORDS:
        return _Measure(Cube.RECORDS, Cube.RECORDS, "size")
    if ref.name in cube.schema.fact.measures:
        measure = cube.schema.fact.measures[ref.name]
        return _Measure(ref.name, ref.name, measure.default_aggregation)
    raise EvaluationError(
        f"unknown measure {ref.name!r} "
        f"(cube has: {', '.join(cube.measure_names)})"
    )


def _resolve_set(cube: Cube, expr: SetExpr) -> list[tuple]:
    """Expand a set expression to a list of tuples of _Member/_Measure."""
    if isinstance(expr, LevelMembers):
        level = cube.check_level(expr.level)
        return [(_Member(level, value),) for value in cube.level_members(level)]
    if isinstance(expr, ExplicitSet):
        resolved: list[tuple] = []
        for tup in expr.tuples:
            refs = []
            for ref in tup:
                if isinstance(ref, MemberRef):
                    level = cube.check_level(ref.level)
                    refs.append(_Member(level, _coerce_member_value(cube, level, ref.value)))
                elif isinstance(ref, (MeasureRef, DistinctCountRef)):
                    refs.append(_resolve_measure(cube, ref))
                else:  # pragma: no cover - parser prevents this
                    raise EvaluationError(f"unexpected ref {ref!r} in set")
            resolved.append(tuple(refs))
        return resolved
    if isinstance(expr, CrossJoin):
        left = _resolve_set(cube, expr.left)
        right = _resolve_set(cube, expr.right)
        return [l + r for l in left for r in right]
    if isinstance(expr, MemberChildren):
        return _resolve_children(cube, expr)
    if isinstance(expr, TopCount):
        inner = _resolve_set(cube, expr.inner)
        measure = (
            _resolve_measure(cube, expr.measure)
            if expr.measure is not None
            else _Measure(Cube.RECORDS, Cube.RECORDS, "size")
        )
        scored = [(_tuple_value(cube, tup, measure), tup) for tup in inner]
        scored.sort(key=lambda pair: (-(pair[0] if pair[0] is not None else float("-inf"))))
        return [tup for __, tup in scored[: expr.count]]
    if isinstance(expr, FilterSet):
        inner = _resolve_set(cube, expr.inner)
        measure = _resolve_measure(cube, expr.measure)
        kept = []
        for tup in inner:
            value = _tuple_value(cube, tup, measure)
            if value is not None and _compare(value, expr.comparator, expr.threshold):
                kept.append(tup)
        return kept
    if isinstance(expr, OrderSet):
        inner = _resolve_set(cube, expr.inner)
        measure = _resolve_measure(cube, expr.measure)
        scored = [(_tuple_value(cube, tup, measure), tup) for tup in inner]
        missing_last = float("inf") if not expr.descending else float("-inf")
        scored.sort(
            key=lambda pair: pair[0] if pair[0] is not None else missing_last,
            reverse=expr.descending,
        )
        return [tup for __, tup in scored]
    raise EvaluationError(f"unsupported set expression {expr!r}")


def _resolve_children(cube: Cube, expr: MemberChildren) -> list[tuple]:
    """Members of the next finer hierarchy level under a coarse member."""
    coarse = cube.check_level(expr.level)
    found = cube.hierarchy_for(coarse)
    if found is None:
        raise EvaluationError(
            f".CHILDREN on {coarse!r}, which belongs to no drill hierarchy"
        )
    dim_name, hierarchy = found
    attr = coarse.split(".", 1)[1]
    try:
        finer_attr = hierarchy.drill_down(attr)
    except Exception as exc:  # finest level: no children
        raise EvaluationError(str(exc)) from exc
    finer = f"{dim_name}.{finer_attr}"
    parent_value = _coerce_member_value(cube, coarse, expr.value)
    restricted = cube.flat.filter(col(coarse).eq(parent_value))
    return [(_Member(finer, value),) for value in restricted.column(finer).unique()]


def _tuple_value(cube: Cube, tup: tuple, measure: "_Measure") -> float | None:
    """The aggregate value of one axis tuple (for TOPCOUNT/FILTER/ORDER)."""
    predicate: Expression | None = None
    for ref in tup:
        if isinstance(ref, _Member):
            clause = col(ref.level).eq(ref.value)
            predicate = clause if predicate is None else (predicate & clause)
    total = cube.grand_total(
        {"value": (measure.target, measure.aggregation)}, filters=predicate
    )
    value = total["value"]
    return float(value) if value is not None else None


def _compare(value: float, comparator: str, threshold: float) -> bool:
    if comparator == ">":
        return value > threshold
    if comparator == ">=":
        return value >= threshold
    if comparator == "<":
        return value < threshold
    if comparator == "<=":
        return value <= threshold
    if comparator == "=":
        return value == threshold
    if comparator == "<>":
        return value != threshold
    raise EvaluationError(f"unknown comparator {comparator!r}")


def _axis_signature(tuples: list[tuple], axis: str) -> tuple[list[str], bool]:
    """Validate uniformity; returns (member levels in order, has_measure)."""
    if not tuples:
        # a FILTER/TOPCOUNT can legitimately select nothing: empty axis
        return [], False
    signatures = set()
    for tup in tuples:
        levels = tuple(ref.level for ref in tup if isinstance(ref, _Member))
        n_measures = sum(1 for ref in tup if isinstance(ref, _Measure))
        if n_measures > 1:
            raise EvaluationError(
                f"a tuple on {axis} contains more than one measure"
            )
        signatures.add((levels, n_measures > 0))
    if len(signatures) > 1:
        raise EvaluationError(
            f"tuples on {axis} are not uniform: mixed levels/measures "
            f"{sorted(signatures)}"
        )
    levels, has_measure = signatures.pop()
    return list(levels), has_measure


def execute_mdx(cube: Cube, query: MdxQuery | str) -> "Crosstab | ExplainReport":
    """Run an MDX query (text or parsed).

    Returns the result :class:`Crosstab` — or, for an ``EXPLAIN``-prefixed
    query, an :class:`~repro.obs.explain.ExplainReport` whose plan tree is
    *measured* (the query runs once under a recording tracer): per-stage
    parse/resolve/aggregate/pivot timings, rows scanned, and whether a
    materialised lattice node or a base fact scan produced the numbers.
    The report's ``result`` attribute carries the grid.
    """
    if isinstance(query, str):
        source = query
        parsed = parse_mdx(source)
    else:
        source = query.render()
        parsed = query

    def run() -> Crosstab:
        with obs.span("mdx.parse", chars=len(source)):
            fresh = parse_mdx(source) if isinstance(query, str) else parsed
        bare = replace(fresh, explain=False) if fresh.explain else fresh
        return _evaluate(cube, bare)

    if parsed.explain:
        with serving_scope(cube):
            result, plan = profile("mdx", run, query=source)
        degraded = active_degradations()
        if degraded:
            plan.attrs["degraded"] = ",".join(sorted(degraded))
        return ExplainReport(query=source, plan=plan, result=result)
    with serving_scope(cube):
        with obs.span("mdx", query=source):
            return run()


def _evaluate(cube: Cube, query: MdxQuery) -> Crosstab:
    """Resolve, aggregate and pivot one parsed (non-EXPLAIN) query."""
    if query.cube != cube.name:
        raise EvaluationError(
            f"query addresses cube {query.cube!r} but this cube is "
            f"{cube.name!r}"
        )

    with obs.span("mdx.resolve") as resolve_sp:
        col_tuples = _resolve_set(cube, query.columns)
        row_tuples = (
            _resolve_set(cube, query.rows) if query.rows is not None else [()]
        )
        resolve_sp.set(row_tuples=len(row_tuples), col_tuples=len(col_tuples))
    col_levels, col_has_measure = _axis_signature(col_tuples, "COLUMNS")
    if query.rows is not None:
        row_levels, row_has_measure = _axis_signature(row_tuples, "ROWS")
    else:
        row_levels, row_has_measure = [], False
    if col_has_measure and row_has_measure:
        raise EvaluationError("measures may appear on only one axis")

    # Slicer: member refs filter; measure ref selects the default cell value.
    slicer_members: list[_Member] = []
    slicer_measure: _Measure | None = None
    for ref in query.slicer:
        if isinstance(ref, MemberRef):
            level = cube.check_level(ref.level)
            slicer_members.append(
                _Member(level, _coerce_member_value(cube, level, ref.value))
            )
        elif isinstance(ref, (MeasureRef, DistinctCountRef)):
            if slicer_measure is not None:
                raise EvaluationError("slicer contains more than one measure")
            slicer_measure = _resolve_measure(cube, ref)
        else:  # pragma: no cover - parser prevents this
            raise EvaluationError(f"unexpected slicer ref {ref!r}")

    grouping = row_levels + col_levels
    overlap = set(row_levels) & set(col_levels)
    if overlap:
        raise EvaluationError(
            f"levels {sorted(overlap)} appear on both axes"
        )

    # Measures used anywhere; default when none.
    measures: dict[str, _Measure] = {}
    for tup in row_tuples + col_tuples:
        for ref in tup:
            if isinstance(ref, _Measure):
                measures.setdefault(ref.name, ref)
    if slicer_measure is not None:
        measures.setdefault(slicer_measure.name, slicer_measure)
    default_measure = (
        slicer_measure
        if slicer_measure is not None
        else _Measure(Cube.RECORDS, Cube.RECORDS, "size")
    )
    if not measures:
        measures[default_measure.name] = default_measure

    # Filters: slicer plus the union of member values mentioned per level.
    predicate: Expression | None = None
    for member in slicer_members:
        clause = col(member.level).eq(member.value)
        predicate = clause if predicate is None else (predicate & clause)
    per_level: dict[str, set] = {}
    for tup in row_tuples + col_tuples:
        for ref in tup:
            if isinstance(ref, _Member):
                per_level.setdefault(ref.level, set()).add(ref.value)
    for level, values in per_level.items():
        clause = col(level).isin(sorted(values, key=lambda v: (str(type(v)), str(v))))
        predicate = clause if predicate is None else (predicate & clause)

    aggregations = {
        m.name: (m.target, m.aggregation) for m in measures.values()
    }
    aggregate = cube.aggregate(grouping, aggregations, filters=predicate)

    with obs.span("mdx.pivot", cells=aggregate.num_rows):
        # Index aggregate rows by their grouping-tuple for cell lookup.
        index: dict[tuple, dict[str, object]] = {}
        for row in aggregate.iter_rows():
            key = tuple(row[level] for level in grouping)
            index[key] = row

        def tuple_members(tup: tuple) -> dict[str, object]:
            return {
                ref.level: ref.value for ref in tup if isinstance(ref, _Member)
            }

        def tuple_measure(tup: tuple) -> _Measure | None:
            for ref in tup:
                if isinstance(ref, _Measure):
                    return ref
            return None

        def key_label(tup: tuple) -> tuple:
            return tuple(
                ref.label() if isinstance(ref, _Member) else ref.name
                for ref in tup
            ) or ("all",)

        row_keys = [key_label(t) for t in row_tuples]
        col_keys = [key_label(t) for t in col_tuples]
        cells: dict[tuple[tuple, tuple], object] = {}
        for r_tup, r_key in zip(row_tuples, row_keys):
            r_members = tuple_members(r_tup)
            r_measure = tuple_measure(r_tup)
            for c_tup, c_key in zip(col_tuples, col_keys):
                members = dict(r_members)
                members.update(tuple_members(c_tup))
                measure = tuple_measure(c_tup) or r_measure or default_measure
                lookup = tuple(members.get(level) for level in grouping)
                row = index.get(lookup)
                if row is not None:
                    cells[(r_key, c_key)] = row[measure.name]

        if query.non_empty_rows:
            row_keys = [
                r for r in row_keys
                if any((r, c) in cells for c in col_keys)
            ]
        if query.non_empty_columns:
            col_keys = [
                c for c in col_keys
                if any((r, c) in cells for r in row_keys)
            ]

        row_level_names = row_levels + (["measure"] if row_has_measure else [])
        col_level_names = col_levels + (["measure"] if col_has_measure else [])
        return Crosstab(
            row_level_names or ["all"],
            col_level_names or ["all"],
            row_keys,
            col_keys,
            cells,
            value_name=default_measure.name,
        )
