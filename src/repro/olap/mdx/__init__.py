"""MDX subset — "Multidimensional expressions (MDX), the query language for
OLAP can also be used for reporting" (paper §IV).

Supported grammar (case-insensitive keywords)::

    SELECT <set> ON COLUMNS [, <set> ON ROWS]
    FROM <cube>
    [WHERE <tuple>]

    <set>    := { <tuple> , ... }
              | <level>.MEMBERS
              | CROSSJOIN(<set>, <set>)
    <tuple>  := <ref> | ( <ref> , ... )
    <ref>    := [Dim].[Attr].[Value]          -- a member
              | [Measures].[name]             -- a measure
              | DISTINCTCOUNT([Dim].[Attr])   -- a computed measure
    <level>  := [Dim].[Attr]

Example (paper Fig. 4 — family history of diabetes by age group and
gender)::

    SELECT [personal].[gender].MEMBERS ON COLUMNS,
           [personal].[age_band].MEMBERS ON ROWS
    FROM discri
    WHERE [conditions].[family_history_diabetes].[yes]
"""

from repro.olap.mdx.lexer import tokenize
from repro.olap.mdx.parser import parse_mdx
from repro.olap.mdx.evaluator import execute_mdx

__all__ = ["tokenize", "parse_mdx", "execute_mdx"]
