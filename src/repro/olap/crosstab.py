"""Crosstab: the two-axis grid OLAP results are read in.

Paper Fig. 4 shows attributes dragged onto a query area producing an
aggregated grid (family history of diabetes by age group and gender).  A
:class:`Crosstab` is that grid: row keys × column keys → cell value, with
helpers to render text, compute margins and extract series for charts.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OLAPError
from repro.tabular.table import Table


def _fmt_cell(value: object) -> str:
    if value is None:
        return "·"
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


class Crosstab:
    """An immutable two-axis aggregation grid.

    ``row_keys`` / ``col_keys`` are tuples (multi-level axes come from
    crossjoins); ``cells`` maps (row_key, col_key) → value.  Missing cells
    are empty (no facts), distinct from a present zero.
    """

    def __init__(
        self,
        row_levels: Sequence[str],
        col_levels: Sequence[str],
        row_keys: Sequence[tuple],
        col_keys: Sequence[tuple],
        cells: dict[tuple[tuple, tuple], object],
        value_name: str = "records",
    ):
        self.row_levels = list(row_levels)
        self.col_levels = list(col_levels)
        self.row_keys = list(row_keys)
        self.col_keys = list(col_keys)
        self.cells = dict(cells)
        self.value_name = value_name

    @classmethod
    def from_aggregate(
        cls,
        table: Table,
        row_levels: Sequence[str],
        col_levels: Sequence[str],
        value_column: str,
    ) -> "Crosstab":
        """Pivot a long-form aggregate table into a grid."""
        for level in list(row_levels) + list(col_levels) + [value_column]:
            table.column(level)
        row_keys: list[tuple] = []
        col_keys: list[tuple] = []
        seen_rows: set[tuple] = set()
        seen_cols: set[tuple] = set()
        cells: dict[tuple[tuple, tuple], object] = {}
        for row in table.iter_rows():
            r = tuple(row[level] for level in row_levels)
            c = tuple(row[level] for level in col_levels)
            if r not in seen_rows:
                seen_rows.add(r)
                row_keys.append(r)
            if c not in seen_cols:
                seen_cols.add(c)
                col_keys.append(c)
            cells[(r, c)] = row[value_column]
        return cls(row_levels, col_levels, row_keys, col_keys, cells, value_column)

    # ------------------------------------------------------------------

    def value(self, row_key: tuple | object, col_key: tuple | object) -> object:
        """Cell value (``None`` for an empty cell).  Bare keys are wrapped."""
        r = row_key if isinstance(row_key, tuple) else (row_key,)
        c = col_key if isinstance(col_key, tuple) else (col_key,)
        return self.cells.get((r, c))

    def row_totals(self) -> dict[tuple, float]:
        """Sum across columns per row (numeric cells only)."""
        return {
            r: sum(
                float(self.cells[(r, c)])
                for c in self.col_keys
                if isinstance(self.cells.get((r, c)), (int, float))
            )
            for r in self.row_keys
        }

    def col_totals(self) -> dict[tuple, float]:
        """Sum across rows per column (numeric cells only)."""
        return {
            c: sum(
                float(self.cells[(r, c)])
                for r in self.row_keys
                if isinstance(self.cells.get((r, c)), (int, float))
            )
            for c in self.col_keys
        }

    def grand_total(self) -> float:
        """Sum of all numeric cells."""
        return sum(self.row_totals().values())

    def series(self, col_key: tuple | object) -> list[tuple[tuple, object]]:
        """One column as [(row_key, value), ...] — chart-ready."""
        c = col_key if isinstance(col_key, tuple) else (col_key,)
        if c not in self.col_keys:
            raise OLAPError(
                f"no column {c!r} in crosstab (have: {self.col_keys})"
            )
        return [(r, self.cells.get((r, c))) for r in self.row_keys]

    def sorted_rows(self) -> "Crosstab":
        """A copy with row keys sorted lexicographically (None last)."""
        def sort_key(key: tuple):
            return tuple((v is None, str(v)) for v in key)

        return Crosstab(
            self.row_levels, self.col_levels,
            sorted(self.row_keys, key=sort_key), self.col_keys,
            self.cells, self.value_name,
        )

    def to_table(self) -> Table:
        """Back to long form: one row per populated cell."""
        rows = []
        for (r, c), value in self.cells.items():
            row: dict[str, object] = dict(zip(self.row_levels, r))
            row.update(dict(zip(self.col_levels, c)))
            row[self.value_name] = value
            rows.append(row)
        return Table.from_rows(rows)

    def to_text(self, with_totals: bool = False) -> str:
        """Render the grid for a terminal."""
        def key_text(key: tuple) -> str:
            return " / ".join("∅" if v is None else str(v) for v in key)

        header_left = " / ".join(self.row_levels) or self.value_name
        col_labels = [key_text(c) for c in self.col_keys]
        if with_totals:
            col_labels.append("TOTAL")
        rows_out: list[list[str]] = []
        row_totals = self.row_totals() if with_totals else {}
        for r in self.row_keys:
            line = [key_text(r)]
            line.extend(_fmt_cell(self.cells.get((r, c))) for c in self.col_keys)
            if with_totals:
                line.append(_fmt_cell(row_totals[r]))
            rows_out.append(line)
        if with_totals:
            totals = self.col_totals()
            footer = ["TOTAL"]
            footer.extend(_fmt_cell(totals[c]) for c in self.col_keys)
            footer.append(_fmt_cell(self.grand_total()))
            rows_out.append(footer)
        headers = [header_left] + col_labels
        widths = [
            max(len(headers[j]), *(len(row[j]) for row in rows_out)) if rows_out else len(headers[j])
            for j in range(len(headers))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows_out:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Crosstab({len(self.row_keys)}×{len(self.col_keys)} "
            f"[{self.value_name}], rows={self.row_levels}, cols={self.col_levels})"
        )
