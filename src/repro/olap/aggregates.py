"""Aggregation functions available to cube queries, with additivity rules."""

from __future__ import annotations

from repro.errors import OLAPError
from repro.warehouse.fact import Measure

#: Names accepted in cube queries, mapped onto the tabular group-by kernels.
AGGREGATION_NAMES = frozenset(
    {"sum", "mean", "min", "max", "std", "count", "size", "nunique"}
)

#: Aggregations that are safe on any measure, additive or not.
_NON_ADDITIVE_SAFE = frozenset({"mean", "min", "max", "std", "count", "size", "nunique"})


def validate_aggregation(measure: Measure, aggregation: str, force: bool = False) -> None:
    """Refuse meaningless aggregations.

    Summing a non-additive measure (a blood-glucose *level*, a blood
    pressure) across patients produces a clinically meaningless number; the
    cube refuses unless ``force=True``.  This guard is the warehouse-side
    counterpart of the paper's emphasis on clinically sensible aggregates.
    """
    if aggregation not in AGGREGATION_NAMES:
        raise OLAPError(
            f"unknown aggregation {aggregation!r} "
            f"(valid: {', '.join(sorted(AGGREGATION_NAMES))})"
        )
    if aggregation == "sum" and not measure.additive and not force:
        raise OLAPError(
            f"measure {measure.name!r} is non-additive; refusing sum() "
            "(pass force=True if you really mean it)"
        )
