"""Programmatic cube queries — the "drag and drop" analogue.

Paper Fig. 4 shows measures and attributes dragged into a query area to
"dynamically generate queries and view the aggregated results".  The
:class:`QueryBuilder` is that interaction as an API: each call corresponds
to one drag, and :meth:`QueryBuilder.execute` renders the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import OLAPError
from repro.olap.crosstab import Crosstab
from repro.olap.cube import Cube
from repro.tabular.expressions import Expression, col


@dataclass(frozen=True)
class CubeQuery:
    """A declarative cube query: axes, one aggregation, filters.

    Immutable — the OLAP verbs in :mod:`repro.olap.operations` return new
    queries, so an exploration session is an inspectable chain of states.
    """

    rows: tuple[str, ...] = ()
    columns: tuple[str, ...] = ()
    #: (target, aggregation); target "records" counts fact rows
    value: tuple[str, str] = (Cube.RECORDS, "size")
    value_name: str = "records"
    #: level → allowed members (a dice); empty means unrestricted
    member_filters: dict[str, tuple[object, ...]] = field(default_factory=dict)

    def axis_levels(self) -> list[str]:
        """All levels used on either axis."""
        return list(self.rows) + list(self.columns)

    def with_filter(self, level: str, values: tuple[object, ...]) -> "CubeQuery":
        """A copy with an added/merged member restriction on ``level``."""
        filters = dict(self.member_filters)
        if level in filters:
            merged = tuple(v for v in filters[level] if v in set(values))
            filters[level] = merged
        else:
            filters[level] = tuple(values)
        return replace(self, member_filters=filters)

    def predicate(self) -> Expression | None:
        """The combined filter expression (``None`` when unrestricted)."""
        expr: Expression | None = None
        for level, values in self.member_filters.items():
            clause = col(level).isin(list(values))
            expr = clause if expr is None else (expr & clause)
        return expr

    def execute(self, cube: Cube) -> Crosstab:
        """Run against a cube and pivot into a crosstab.

        A query with no column levels gets a single synthetic column named
        after the value, so results are always a grid.
        """
        rows = tuple(cube.check_level(level) for level in self.rows)
        columns = tuple(cube.check_level(level) for level in self.columns)
        if not rows and not columns:
            raise OLAPError("query has no levels on either axis")
        filters = {
            cube.check_level(level): values
            for level, values in self.member_filters.items()
        }
        normalised = replace(
            self, rows=rows, columns=columns, member_filters=filters
        )
        aggregate = cube.aggregate(
            normalised.axis_levels(),
            {self.value_name: self.value},
            filters=normalised.predicate(),
        )
        if not columns:
            aggregate = aggregate.with_column(
                "__all__", [self.value_name] * aggregate.num_rows, dtype="str"
            )
            return Crosstab.from_aggregate(
                aggregate, list(rows), ["__all__"], self.value_name
            )
        if not rows:
            aggregate = aggregate.with_column(
                "__all__", [self.value_name] * aggregate.num_rows, dtype="str"
            )
            return Crosstab.from_aggregate(
                aggregate, ["__all__"], list(columns), self.value_name
            )
        return Crosstab.from_aggregate(
            aggregate, list(rows), list(columns), self.value_name
        )


class QueryBuilder:
    """Fluent construction of :class:`CubeQuery` objects.

    ::

        grid = (cube.query()
                    .rows("personal.age_band")
                    .columns("personal.gender")
                    .count_distinct("personal.patient_id", name="patients")
                    .where("conditions.diabetes_status", "Diabetic")
                    .execute())
    """

    def __init__(self, cube: Cube):
        self._cube = cube
        self._query = CubeQuery()

    def rows(self, *levels: str) -> "QueryBuilder":
        """Put levels on the row axis (replaces previous rows)."""
        qualified = tuple(self._cube.check_level(level) for level in levels)
        self._query = replace(self._query, rows=qualified)
        return self

    def columns(self, *levels: str) -> "QueryBuilder":
        """Put levels on the column axis (replaces previous columns)."""
        qualified = tuple(self._cube.check_level(level) for level in levels)
        self._query = replace(self._query, columns=qualified)
        return self

    def measure(self, target: str, aggregation: str, name: str | None = None) -> "QueryBuilder":
        """Set the cell value to ``aggregation`` of ``target``.

        ``target`` is a fact measure, the implicit ``records``, or a level
        (which is qualified against the cube).
        """
        if target != Cube.RECORDS and target not in self._cube.schema.fact.measures:
            target = self._cube.check_level(target)
        self._query = replace(
            self._query,
            value=(target, aggregation),
            value_name=name or f"{aggregation}_{target.split('.')[-1]}",
        )
        return self

    def count_records(self, name: str = "records") -> "QueryBuilder":
        """Cell value = number of fact rows (the default)."""
        self._query = replace(
            self._query, value=(Cube.RECORDS, "size"), value_name=name
        )
        return self

    def count_distinct(self, level: str, name: str | None = None) -> "QueryBuilder":
        """Cell value = distinct count of a level (e.g. patients)."""
        qualified = self._cube.check_level(level)
        self._query = replace(
            self._query,
            value=(qualified, "nunique"),
            value_name=name or f"distinct_{qualified.split('.')[-1]}",
        )
        return self

    def where(self, level: str, *values: object) -> "QueryBuilder":
        """Restrict a level to the given members (slice/dice)."""
        if not values:
            raise OLAPError(f"where({level!r}) requires at least one value")
        qualified = self._cube.check_level(level)
        self._query = self._query.with_filter(qualified, tuple(values))
        return self

    def build(self) -> CubeQuery:
        """The accumulated immutable query."""
        return self._query

    def execute(self) -> Crosstab:
        """Build and run against the owning cube."""
        return self._query.execute(self._cube)
