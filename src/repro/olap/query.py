"""Programmatic cube queries — the "drag and drop" analogue.

Paper Fig. 4 shows measures and attributes dragged into a query area to
"dynamically generate queries and view the aggregated results".  The
:class:`QueryBuilder` is that interaction as an API: each call corresponds
to one drag, and :meth:`QueryBuilder.execute` renders the grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import contextlib

from repro import obs
from repro.errors import OLAPError
from repro.obs.explain import ExplainReport, profile
from repro.olap.crosstab import Crosstab
from repro.olap.cube import Cube
from repro.serving.resilience import (
    Deadline,
    active_degradations,
    current_deadline,
    deadline_scope,
)
from repro.tabular.expressions import Expression, col


def serving_scope(cube, *, deadline=None, budget_s=None):
    """The cube's admission/deadline scope, or a no-op without a runtime.

    Every query front-end (builder, MDX, DG-SQL) enters execution through
    this: with ``SystemConfig(serving=...)`` configured it takes one
    admission slot and installs the per-query deadline; unconfigured
    systems keep the historical unbounded behaviour.
    """
    runtime = getattr(cube, "serving_runtime", None)
    if runtime is not None:
        return runtime.query_scope(deadline=deadline, budget_s=budget_s)
    if deadline is None and budget_s is not None:
        # no admission control configured, but the caller asked for a
        # deadline: honour it (chained under any active outer deadline)
        deadline = Deadline(budget_s, parent=current_deadline())
    if deadline is not None:
        return deadline_scope(deadline)
    return contextlib.nullcontext()

#: Accepted aggregation spellings → canonical names used by the kernels.
AGG_ALIASES = {"avg": "mean", "average": "mean", "distinct": "nunique"}


def _canonical_agg(aggregation: str) -> str:
    return AGG_ALIASES.get(aggregation, aggregation)


@dataclass(frozen=True)
class MeasureSpec:
    """A measure request built fluently: ``measure("fbg").avg()``.

    Each aggregation method returns a *finalised* spec the builder accepts
    directly; :meth:`named` overrides the output column name.  Plain
    ``(target, aggregation)`` tuples remain accepted everywhere a spec is
    — the fluent form is just the discoverable spelling of the same thing.
    """

    target: str
    aggregation: str | None = None
    name: str | None = None

    def _agg(self, aggregation: str) -> "MeasureSpec":
        return replace(self, aggregation=aggregation)

    def avg(self) -> "MeasureSpec":
        """Arithmetic mean (canonical name: ``mean``)."""
        return self._agg("mean")

    mean = avg

    def sum(self) -> "MeasureSpec":
        """Sum of non-null values."""
        return self._agg("sum")

    def min(self) -> "MeasureSpec":
        """Smallest non-null value."""
        return self._agg("min")

    def max(self) -> "MeasureSpec":
        """Largest non-null value."""
        return self._agg("max")

    def std(self) -> "MeasureSpec":
        """Population standard deviation."""
        return self._agg("std")

    def count(self) -> "MeasureSpec":
        """Number of non-null values."""
        return self._agg("count")

    def nunique(self) -> "MeasureSpec":
        """Number of distinct values."""
        return self._agg("nunique")

    def size(self) -> "MeasureSpec":
        """Number of rows, nulls included."""
        return self._agg("size")

    def named(self, name: str) -> "MeasureSpec":
        """Set the output column name."""
        return replace(self, name=name)


def measure(target: str) -> MeasureSpec:
    """Start a fluent measure spec: ``measure("fbg").avg()``."""
    return MeasureSpec(target)


@dataclass(frozen=True)
class CubeQuery:
    """A declarative cube query: axes, one aggregation, filters.

    Immutable — the OLAP verbs in :mod:`repro.olap.operations` return new
    queries, so an exploration session is an inspectable chain of states.
    """

    rows: tuple[str, ...] = ()
    columns: tuple[str, ...] = ()
    #: (target, aggregation); target "records" counts fact rows
    value: tuple[str, str] = (Cube.RECORDS, "size")
    value_name: str = "records"
    #: level → allowed members (a dice); empty means unrestricted
    member_filters: dict[str, tuple[object, ...]] = field(default_factory=dict)

    def axis_levels(self) -> list[str]:
        """All levels used on either axis."""
        return list(self.rows) + list(self.columns)

    def with_filter(self, level: str, values: tuple[object, ...]) -> "CubeQuery":
        """A copy with an added/merged member restriction on ``level``."""
        filters = dict(self.member_filters)
        if level in filters:
            merged = tuple(v for v in filters[level] if v in set(values))
            filters[level] = merged
        else:
            filters[level] = tuple(values)
        return replace(self, member_filters=filters)

    def predicate(self) -> Expression | None:
        """The combined filter expression (``None`` when unrestricted)."""
        expr: Expression | None = None
        for level, values in self.member_filters.items():
            clause = col(level).isin(list(values))
            expr = clause if expr is None else (expr & clause)
        return expr

    def describe(self) -> str:
        """One-line rendering (slow-query log, EXPLAIN headers)."""
        parts = [f"{self.value[1]}({self.value[0]}) AS {self.value_name}"]
        if self.rows:
            parts.append("ROWS " + ", ".join(self.rows))
        if self.columns:
            parts.append("COLUMNS " + ", ".join(self.columns))
        for level, values in self.member_filters.items():
            rendered = ", ".join(str(v) for v in values)
            parts.append(f"WHERE {level} IN ({rendered})")
        return " | ".join(parts)

    def execute(self, cube: Cube) -> Crosstab:
        """Run against a cube and pivot into a crosstab.

        A query with no column levels gets a single synthetic column named
        after the value, so results are always a grid.
        """
        rows = tuple(cube.check_level(level) for level in self.rows)
        columns = tuple(cube.check_level(level) for level in self.columns)
        if not rows and not columns:
            raise OLAPError("query has no levels on either axis")
        filters = {
            cube.check_level(level): values
            for level, values in self.member_filters.items()
        }
        normalised = replace(
            self, rows=rows, columns=columns, member_filters=filters
        )
        aggregate = cube.aggregate(
            normalised.axis_levels(),
            {self.value_name: self.value},
            filters=normalised.predicate(),
        )
        if not columns:
            aggregate = aggregate.with_column(
                "__all__", [self.value_name] * aggregate.num_rows, dtype="str"
            )
            return Crosstab.from_aggregate(
                aggregate, list(rows), ["__all__"], self.value_name
            )
        if not rows:
            aggregate = aggregate.with_column(
                "__all__", [self.value_name] * aggregate.num_rows, dtype="str"
            )
            return Crosstab.from_aggregate(
                aggregate, ["__all__"], list(columns), self.value_name
            )
        return Crosstab.from_aggregate(
            aggregate, list(rows), list(columns), self.value_name
        )


class QueryBuilder:
    """Fluent, immutable construction of :class:`CubeQuery` objects.

    Every method returns a **new** builder; the receiver is never mutated.
    A partially built query can therefore be held and branched safely::

        base = cube.query().rows("personal.age_band")
        by_gender = base.columns("personal.gender")   # base is unchanged
        grid = (by_gender
                    .count_distinct("personal.patient_id", name="patients")
                    .where("conditions.diabetes_status", "Diabetic")
                    .execute())

    Measures are requested either as a ``(target, aggregation)`` tuple or
    fluently via :func:`measure` — ``.measure(("fbg", "avg"))`` and
    ``.measure(measure("fbg").avg())`` are the same query.  The canonical
    form is the fluent one; aggregation spellings are normalised
    (``avg`` → ``mean``) either way.
    """

    def __init__(
        self,
        cube: Cube,
        query: CubeQuery | None = None,
        *,
        budget_s: float | None = None,
    ):
        self._cube = cube
        self._query = query if query is not None else CubeQuery()
        self._budget_s = budget_s

    def _with(self, query: CubeQuery) -> "QueryBuilder":
        return QueryBuilder(self._cube, query, budget_s=self._budget_s)

    def within(self, budget_s: float | None) -> "QueryBuilder":
        """A new builder whose execution carries a deadline of ``budget_s``.

        Overrides the system's ``default_deadline_s`` for this query
        (``None`` restores it).  Expiry raises
        :class:`~repro.errors.QueryTimeoutError` at the next cooperative
        checkpoint; no partial result is ever returned or cached.
        """
        return QueryBuilder(self._cube, self._query, budget_s=budget_s)

    def rows(self, *levels: str) -> "QueryBuilder":
        """A new builder with levels on the row axis (replacing any)."""
        qualified = tuple(self._cube.check_level(level) for level in levels)
        return self._with(replace(self._query, rows=qualified))

    def columns(self, *levels: str) -> "QueryBuilder":
        """A new builder with levels on the column axis (replacing any)."""
        qualified = tuple(self._cube.check_level(level) for level in levels)
        return self._with(replace(self._query, columns=qualified))

    def measure(
        self,
        target: "str | tuple[str, str] | MeasureSpec",
        aggregation: str | None = None,
        name: str | None = None,
    ) -> "QueryBuilder":
        """A new builder whose cell value is an aggregation of ``target``.

        Accepts the three equivalent spellings::

            .measure("fbg", "avg")                 # positional
            .measure(("fbg", "avg"))               # spec tuple
            .measure(measure("fbg").avg())         # fluent (canonical)

        ``target`` is a fact measure, the implicit ``records``, or a level
        (which is qualified against the cube).
        """
        if isinstance(target, MeasureSpec):
            if target.aggregation is None:
                raise OLAPError(
                    f"measure spec for {target.target!r} names no "
                    "aggregation — finish it with .avg()/.sum()/..."
                )
            if aggregation is not None:
                raise OLAPError(
                    "pass either a finished measure spec or a separate "
                    "aggregation, not both"
                )
            target, aggregation, name = (
                target.target, target.aggregation, name or target.name
            )
        elif isinstance(target, tuple):
            if aggregation is not None:
                raise OLAPError(
                    "pass either a (target, aggregation) tuple or a "
                    "separate aggregation, not both"
                )
            target, aggregation = target
        elif aggregation is None:
            raise OLAPError(
                f"measure({target!r}) needs an aggregation — pass "
                "(target, agg), measure(target).avg(), or two arguments"
            )
        aggregation = _canonical_agg(aggregation)
        if target != Cube.RECORDS and target not in self._cube.schema.fact.measures:
            target = self._cube.check_level(target)
        return self._with(replace(
            self._query,
            value=(target, aggregation),
            value_name=name or f"{aggregation}_{target.split('.')[-1]}",
        ))

    def count_records(self, name: str = "records") -> "QueryBuilder":
        """A new builder counting fact rows per cell (the default value)."""
        return self._with(replace(
            self._query, value=(Cube.RECORDS, "size"), value_name=name
        ))

    def count_distinct(self, level: str, name: str | None = None) -> "QueryBuilder":
        """A new builder counting distinct level members (e.g. patients)."""
        qualified = self._cube.check_level(level)
        return self._with(replace(
            self._query,
            value=(qualified, "nunique"),
            value_name=name or f"distinct_{qualified.split('.')[-1]}",
        ))

    def where(self, level: str, *values: object) -> "QueryBuilder":
        """A new builder restricting a level to the given members."""
        if not values:
            raise OLAPError(f"where({level!r}) requires at least one value")
        qualified = self._cube.check_level(level)
        return self._with(self._query.with_filter(qualified, tuple(values)))

    def build(self) -> CubeQuery:
        """The accumulated immutable query."""
        return self._query

    def execute(self) -> Crosstab:
        """Build and run against the owning cube.

        With ``SystemConfig(serving=...)`` configured, execution first
        passes the admission gate (shedding with
        :class:`~repro.errors.ServingOverloadError` under overload) and
        runs under the query's deadline (see :meth:`within`).
        """
        query = self._query
        with serving_scope(self._cube, budget_s=self._budget_s):
            with obs.span("query", query=query.describe()):
                return query.execute(self._cube)

    def explain(self) -> ExplainReport:
        """Run once under a recording tracer and return the measured plan.

        Works regardless of global observability configuration; the
        returned report carries the plan tree (which lattice node answered
        or how many fact rows were scanned, wall time per stage), any
        active serving degradations, and the result grid in ``.result``.
        """
        query = self._query
        source = query.describe()
        with serving_scope(self._cube, budget_s=self._budget_s):
            result, plan = profile(
                "query", lambda: query.execute(self._cube), query=source
            )
        degraded = active_degradations()
        if degraded:
            plan.attrs["degraded"] = ",".join(sorted(degraded))
        return ExplainReport(query=source, plan=plan, result=result)
