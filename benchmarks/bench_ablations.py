"""Ablations of the design choices DESIGN.md §5 calls out.

* cardinality dimension on/off — without it, repeat attendances conflate
  patients and every patient-level number inflates;
* discretiser choice — how the Fig 6 drill shape degrades when the
  clinical DiagnosticHTYears scheme is replaced by equal-width bins;
* feedback dimension on/off — what the closed loop adds to the next
  analysis round.
"""

from repro.discri.schemes import HT_YEARS_SCHEME
from repro.etl.discretization import EqualWidthDiscretizer
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.metrics import accuracy
from repro.warehouse.feedback import FeedbackDimensionBuilder, FeedbackEntry


def test_ablation_cardinality_dimension(benchmark, cube, cohort, emit):
    """Patient counts with vs without the cardinality dimension."""

    def counts():
        with_cardinality = cube.grand_total(
            {"patients": ("cardinality.patient_id", "nunique")}
        )["patients"]
        without = cube.grand_total()["records"]  # records masquerade as patients
        return with_cardinality, without

    patients, records = benchmark(counts)
    true_patients = cohort.column("patient_id").n_unique()
    emit(
        "ablation_cardinality",
        f"true patients:                   {true_patients}\n"
        f"with cardinality dimension:      {patients}\n"
        f"without (records as 'patients'): {records}\n"
        f"overcount without cardinality:   {records / true_patients:.2f}x",
    )
    assert patients == true_patients
    assert records > true_patients * 2  # repeat attendances inflate badly


def test_ablation_ht_discretiser_choice(benchmark, built, emit):
    """Fig 6 dip visibility: clinical scheme vs equal-width binning."""
    rows = [
        row
        for row in built.transformed.to_rows()
        if row["hypertension"] == "yes" and row["diagnostic_ht_years"] is not None
    ]
    values = [row["diagnostic_ht_years"] for row in rows]

    def compare():
        equal_width = EqualWidthDiscretizer(5).fit(values, name="equal_width")

        def share_of_band(scheme, target_label: str, band: str) -> float:
            in_band = [
                row for row in rows
                if row["age_band5"] == band
            ]
            if not in_band:
                return 0.0
            hits = sum(
                1
                for row in in_band
                if scheme.assign(row["diagnostic_ht_years"]) == target_label
            )
            return hits / len(in_band)

        clinical_dip = share_of_band(HT_YEARS_SCHEME, "5-10", "70-75")
        clinical_ref = share_of_band(HT_YEARS_SCHEME, "5-10", "65-70")
        # the equal-width bin that happens to contain 7.5 years
        ew_label = equal_width.assign(7.5)
        ew_dip = share_of_band(equal_width, ew_label, "70-75")
        ew_ref = share_of_band(equal_width, ew_label, "65-70")
        return clinical_dip, clinical_ref, ew_dip, ew_ref

    clinical_dip, clinical_ref, ew_dip, ew_ref = benchmark(compare)
    clinical_contrast = clinical_ref / max(clinical_dip, 1e-9)
    ew_contrast = ew_ref / max(ew_dip, 1e-9)
    emit(
        "ablation_ht_discretiser",
        f"clinical scheme 5-10y share: 65-70={clinical_ref:.3f} "
        f"70-75={clinical_dip:.3f} (contrast {clinical_contrast:.2f}x)\n"
        f"equal-width bin around 7.5y: 65-70={ew_ref:.3f} "
        f"70-75={ew_dip:.3f} (contrast {ew_contrast:.2f}x)",
    )
    # the clinically-defined band shows the dip at least as sharply
    assert clinical_contrast >= ew_contrast * 0.8


def test_ablation_feedback_dimension(benchmark, emit):
    """Does folding a model-derived risk dimension help the *next* model?"""
    from repro.discri.generator import DiScRiGenerator
    from repro.dgms.system import DDDGMS

    source = DiScRiGenerator(n_patients=250, seed=19).generate()
    system = DDDGMS(source)
    base_features = ["bmi_band", "exercise_frequency"]

    def run():
        rows = system.transformed.to_rows()
        target = "develops_diabetes"
        baseline = NaiveBayesClassifier().fit(rows, target, base_features)
        baseline_accuracy = accuracy(
            [r[target] for r in rows], baseline.predict_many(rows)
        )
        # fold a clinician-style feedback dimension: FBG-based risk note
        builder = FeedbackDimensionBuilder("clinician_risk")
        builder.add(FeedbackEntry(
            "flagged",
            lambda r: r.get("bloods.fbg_band") in ("preDiabetic", "Diabetic"),
            rationale="glucose already elevated",
        ))
        builder.add(FeedbackEntry("unflagged", lambda r: True))
        if "clinician_risk" not in system.warehouse.dimension_names:
            system.fold_feedback(builder)
        enriched_rows = system.isolate_cube_slice()
        enriched = NaiveBayesClassifier().fit(
            enriched_rows, target, base_features + ["assessment"]
        )
        enriched_accuracy = accuracy(
            [r[target] for r in enriched_rows],
            enriched.predict_many(enriched_rows),
        )
        return baseline_accuracy, enriched_accuracy

    baseline_accuracy, enriched_accuracy = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ablation_feedback",
        f"model without feedback dimension: {baseline_accuracy:.3f}\n"
        f"model with folded feedback:       {enriched_accuracy:.3f}",
    )
    assert enriched_accuracy >= baseline_accuracy
