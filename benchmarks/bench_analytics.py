"""Data analytics (paper §IV): the full model panel on cohort data.

"There are a variety of data mining algorithms to address different
requirements such as classification, association and clustering."  This
bench runs the panel the library ships — five classifiers (with AUC for
the probabilistic ones), association rules, and clustering with
silhouette-based k selection — over an OLAP-isolated slice, producing the
comparison table a clinical scientist would start from.
"""

from repro.mining.apriori import association_rules
from repro.mining.awsum import AWSumClassifier
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.knn import KNNClassifier
from repro.mining.logistic import LogisticRegressionClassifier
from repro.mining.naive_bayes import NaiveBayesClassifier
from repro.mining.random_forest import RandomForestClassifier
from repro.mining.roc import auc_score
from repro.mining.silhouette import pick_k_by_silhouette
from repro.mining.validation import cross_validate, train_test_split

_FEATURES = ["fbg", "bmi", "sdnn", "reflex_knees_ankles", "exercise_frequency"]
_TARGET = "diabetes_status"


def test_analytics_classifier_panel(benchmark, built, emit):
    rows = built.transformed.to_rows()

    def run_panel():
        results = {}
        for name, factory in (
            ("naive_bayes", NaiveBayesClassifier),
            ("decision_tree", DecisionTreeClassifier),
            ("knn", lambda: KNNClassifier(k=7)),
            ("logistic", LogisticRegressionClassifier),
            ("random_forest", lambda: RandomForestClassifier(n_trees=15)),
        ):
            results[name] = cross_validate(
                factory, rows, _TARGET, _FEATURES, k=3
            )["mean_accuracy"]
        return results

    results = benchmark.pedantic(run_panel, rounds=1, iterations=1)

    # AUC for the probabilistic models on one held-out split
    train, test = train_test_split(rows, test_fraction=0.3, seed=4)
    aucs = {}
    for name, factory in (
        ("naive_bayes", NaiveBayesClassifier),
        ("logistic", LogisticRegressionClassifier),
        ("random_forest", lambda: RandomForestClassifier(n_trees=15)),
    ):
        model = factory().fit(train, _TARGET, _FEATURES)
        scores = [model.predict_proba(row).get("yes", 0.0) for row in test]
        aucs[name] = auc_score([row[_TARGET] for row in test], scores, "yes")

    lines = [f"{'model':<16} {'3-fold acc':>10} {'AUC':>7}"]
    for name, accuracy in sorted(results.items(), key=lambda p: -p[1]):
        auc = f"{aucs[name]:.3f}" if name in aucs else "    —"
        lines.append(f"{name:<16} {accuracy:>10.3f} {auc:>7}")
    emit("analytics_classifier_panel", "\n".join(lines))
    assert min(results.values()) >= 0.8
    assert all(auc >= 0.9 for auc in aucs.values())


def test_analytics_association_rules(benchmark, built, emit):
    rows = [
        {
            "fbg_band": row["fbg_band"],
            "reflex": row["reflex_knees_ankles"],
            "bmi_band": row["bmi_band"],
            "diabetes": row["diabetes_status"],
        }
        for row in built.transformed.to_rows()
    ]
    rules = benchmark(
        association_rules, rows, 0.08, 0.7, None, 3
    )
    emit(
        "analytics_association_rules",
        "\n".join(rule.render() for rule in rules[:10]),
    )
    rendered = " ".join(rule.render() for rule in rules)
    assert "diabetes=yes" in rendered


def test_analytics_clustering_k_selection(benchmark, built, emit):
    rows = [
        {"fbg": row["fbg"], "bmi": row["bmi"], "sdnn": row["sdnn"]}
        for row in built.transformed.to_rows()[:400]
        if row["fbg"] is not None and row["bmi"] is not None
        and row["sdnn"] is not None
    ]
    best, scores = benchmark(
        pick_k_by_silhouette, rows, ["fbg", "bmi", "sdnn"], (2, 3, 4)
    )
    emit(
        "analytics_clustering",
        f"silhouette by k: "
        + ", ".join(f"k={k}: {score:.3f}" for k, score in sorted(scores.items()))
        + f"\nselected k = {best}",
    )
    assert best in scores
