"""Fig 1 — the generic CDW dimensional model.

Constructs the paper's Fig 1 star (Personal Information, Medical
Condition, Fasting Bloods, Limb Health around a Medical Measures fact),
loads a sample, and validates referential integrity — the structural claim
behind "the fact table is linked to all dimensional tables resembling a
star or snowflake structure".
"""

from repro.tabular.table import Table
from repro.warehouse.dimension import Dimension
from repro.warehouse.fact import Measure
from repro.warehouse.loader import DimensionSpec, WarehouseLoader


def _build_fig1_star(rows):
    loader = WarehouseLoader(
        "fig1_cdw",
        "medical_measures",
        [
            DimensionSpec(
                Dimension(
                    "personal_information",
                    {"gender": "str", "family_history_diabetes": "str"},
                )
            ),
            DimensionSpec(
                Dimension(
                    "medical_condition",
                    {"diabetes_status": "str", "hypertension": "str"},
                )
            ),
            DimensionSpec(Dimension("fasting_bloods", {"fbg_band": "str"})),
            DimensionSpec(
                Dimension("limb_health", {"reflex_knees_ankles": "str"})
            ),
        ],
        [Measure.of("fbg", "float", "mean"),
         Measure.of("lying_dbp_avg", "float", "mean")],
    )
    loader.load(rows)
    return loader.schema


def test_fig1_dimensional_model(benchmark, built, emit):
    source = built.transformed.select(
        [
            "gender", "family_history_diabetes", "diabetes_status",
            "hypertension", "fbg_band", "reflex_knees_ankles",
            "fbg", "lying_dbp_avg",
        ]
    )
    schema = benchmark(_build_fig1_star, source)
    problems = schema.check_integrity()
    lines = [
        f"star schema {schema.name!r}",
        f"fact: {schema.fact.name} ({schema.fact.num_rows} rows, "
        f"measures: {', '.join(schema.fact.measures)})",
    ]
    for name, dimension in schema.dimensions.items():
        lines.append(
            f"dimension {name}: {dimension.size} members "
            f"({', '.join(dimension.attributes)})"
        )
    lines.append(f"referential integrity violations: {len(problems)}")
    emit("fig1_dimensional_model", "\n".join(lines))
    assert problems == []
    assert len(schema.dimensions) == 4
    assert schema.fact.num_rows == source.num_rows
