"""X1 — the reflex + mid-range-glucose insight (paper §II narrative).

"That approach [AWSum] identified the absence of reflex in the knees and
ankles together with a mid-range glucose reading was unexpectedly highly
predictive of diabetes."  This bench fits AWSum on pre-diagnosis visits
and asserts the interaction ranks among the most surprising value pairs,
printing the influence table a clinician would read.
"""

from repro.mining.awsum import AWSumClassifier

_FEATURES = ["fbg_band", "reflex_knees_ankles", "exercise_frequency", "bmi_band"]


def _pre_diagnosis_rows(built):
    return [
        row
        for row in built.transformed.to_rows()
        if row["diabetes_status"] == "no"
    ]


def test_x1_awsum_influences(benchmark, built, emit):
    rows = _pre_diagnosis_rows(built)

    def fit():
        return AWSumClassifier(min_support=15).fit(
            rows, "develops_diabetes", _FEATURES
        )

    model = benchmark(fit)
    lines = ["AWSum value influences toward developing diabetes"]
    lines.extend("  " + inf.render() for inf in model.value_influences()[:10])
    lines.append("")
    lines.append("most surprising interactions (joint vs parts)")
    interactions = model.interaction_influences(top=8)
    lines.extend("  " + inter.render() for inter in interactions)
    emit("x1_awsum_insight", "\n".join(lines))

    top_pairs = [
        {
            (inter.first.attribute, str(inter.first.value)),
            (inter.second.attribute, str(inter.second.value)),
        }
        for inter in interactions[:4]
    ]
    assert any(
        ("reflex_knees_ankles", "absent") in pair
        and any(a == "fbg_band" and v in ("high", "preDiabetic") for a, v in pair)
        for pair in top_pairs
    ), "reflex+mid-glucose interaction did not surface"


def test_x1_joint_rate_exceeds_parts(benchmark, built, emit):
    rows = _pre_diagnosis_rows(built)

    def rates():
        def develop_rate(predicate) -> tuple[float, int]:
            matching = [r for r in rows if predicate(r)]
            if not matching:
                return 0.0, 0
            positive = sum(
                1 for r in matching if r["develops_diabetes"] == "yes"
            )
            return positive / len(matching), len(matching)

        return {
            "reflexes absent + mid glucose": develop_rate(
                lambda r: r["reflex_knees_ankles"] == "absent"
                and r["fbg_band"] in ("high", "preDiabetic")
            ),
            "mid glucose only": develop_rate(
                lambda r: r["fbg_band"] in ("high", "preDiabetic")
                and r["reflex_knees_ankles"] == "present"
            ),
            "reflexes absent only": develop_rate(
                lambda r: r["reflex_knees_ankles"] == "absent"
                and r["fbg_band"] == "very good"
            ),
            "baseline": develop_rate(lambda r: True),
        }

    rates = benchmark(rates)
    emit(
        "x1_develop_rates",
        "rate of later diabetes among pre-diagnosis visits\n"
        + "\n".join(
            f"  {label:<32} {rate:.3f} (n={n})"
            for label, (rate, n) in rates.items()
        ),
    )
    joint, __ = rates["reflexes absent + mid glucose"]
    glucose_only, __ = rates["mid glucose only"]
    baseline, __ = rates["baseline"]
    assert joint > glucose_only + 0.2
    assert joint > baseline * 2
