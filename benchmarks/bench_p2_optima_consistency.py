"""P2 — optimal aggregates stay consistent under dimension changes.

Paper §IV (Decision Optimisation): "outcomes can be reviewed by removing
existing or adding further dimensions.  Optimal aggregates would be
consistent regardless of the changes to dimensions."  This bench finds
the worst mean-FBG cell over (age band, gender), perturbs the dimensional
model (remove exercise/ECG, add a synthetic outcome dimension) and checks
the optimum never moves.
"""

from repro.discri.generator import DiScRiGenerator
from repro.discri.warehouse import build_discri_warehouse
from repro.optimize.consistency import check_dimension_consistency
from repro.warehouse.feedback import outcome_dimension

_PATIENTS = 400  # private build: the check mutates the warehouse


def test_p2_consistency_under_dimension_changes(benchmark, emit):
    built = build_discri_warehouse(
        DiScRiGenerator(n_patients=_PATIENTS, seed=5).generate()
    )
    extra = outcome_dimension("synthetic_outcome", ["improved", "stable", "worse"])

    def check():
        return check_dimension_consistency(
            built.warehouse,
            ["conditions.age_band", "personal.gender"],
            "fbg",
            aggregation="mean",
            direction="max",
            min_records=10,
            removable=["exercise", "ecg", "pressure"],
            addable=[(extra, None)],
        )

    report = benchmark(check)
    emit("p2_optima_consistency", report.summary())
    assert report.consistent
    assert len(report.perturbations) == 4
