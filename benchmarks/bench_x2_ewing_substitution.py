"""X2 — Ewing battery substitution for elderly patients (paper §V.C).

"Some of the procedures such as the hand grip test cannot be applied to
the elderly because of arthritis ...  A DD-DGMS approach enables the data
to be accessible to drive decision guidance hypothesis formulation
regarding other patient characteristics that could be used in place of
the missing test."

The bench measures hand-grip missingness by age, then runs the
wrapper-filter feature selection (the paper's reference [21] method) on
exactly the visits where hand grip is missing, to find a substitute
battery for CAN risk assessment.
"""

from repro.mining.feature_selection import wrapper_filter_select
from repro.mining.naive_bayes import NaiveBayesClassifier

_CANDIDATES = [
    "ewing_hr_deep_breathing",
    "ewing_valsalva_ratio",
    "ewing_30_15_ratio",
    "ewing_postural_sbp_drop",
    "sdnn",
    "rmssd",
    "heart_rate_lying",
    "postural_drop_sbp",
]


def test_x2_handgrip_missingness(benchmark, built, emit):
    rows = built.transformed.to_rows()

    def missingness():
        bands = {"<60": [], "60-75": [], ">=75": []}
        for row in rows:
            if row["age"] < 60:
                bands["<60"].append(row)
            elif row["age"] < 75:
                bands["60-75"].append(row)
            else:
                bands[">=75"].append(row)
        return {
            band: sum(
                1 for r in members if r["ewing_handgrip_dbp_rise"] is None
            ) / len(members)
            for band, members in bands.items()
        }

    fractions = benchmark(missingness)
    emit(
        "x2_handgrip_missingness",
        "hand-grip test missing, by age band\n"
        + "\n".join(f"  {band}: {frac:.3f}" for band, frac in fractions.items()),
    )
    assert fractions[">=75"] > fractions["<60"] + 0.1


def test_x2_substitute_battery(benchmark, built, emit):
    rows = [
        row
        for row in built.transformed.to_rows()
        if row["ewing_handgrip_dbp_rise"] is None
    ]

    def select():
        return wrapper_filter_select(
            rows, "can_status", _CANDIDATES,
            NaiveBayesClassifier, max_features=3, k=3,
        )

    selected, trace = benchmark(select)
    lines = [
        f"visits without a hand-grip result: {len(rows)}",
        "wrapper-filter selection of substitute CAN predictors:",
    ]
    lines.extend(
        f"  + {feature}: CV accuracy {score:.3f}" for feature, score in trace
    )
    emit("x2_substitute_battery", "\n".join(lines))
    assert selected
    assert trace[-1][1] >= 0.8, "substitute battery should assess CAN risk well"
