"""Fig 4 — 'drag and drop' query construction.

The paper's screenshot shows "the family history of diabetes by age group
and by gender" assembled by dragging attributes into a query area.  This
bench reproduces the grid twice — through the fluent QueryBuilder (the
drag-and-drop analogue) and through MDX — and asserts the two engines
agree cell by cell.
"""

from repro.olap.mdx.evaluator import execute_mdx

_MDX = """
SELECT [personal].[gender].MEMBERS ON COLUMNS,
       [conditions].[age_band].MEMBERS ON ROWS
FROM discri
WHERE [personal].[family_history_diabetes].[yes]
"""


def _builder_grid(cube):
    return (
        cube.query()
        .rows("age_band")
        .columns("gender")
        .count_records("attendances")
        .where("personal.family_history_diabetes", "yes")
        .execute()
        .sorted_rows()
    )


def test_fig4_query_builder(benchmark, cube, emit):
    grid = benchmark(_builder_grid, cube)
    emit(
        "fig4_family_history_builder",
        "family history of diabetes = yes, by age group and gender\n"
        + grid.to_text(with_totals=True),
    )
    assert grid.grand_total() > 0
    # the bulk of a screening cohort sits in the 40-80 bands
    totals = grid.row_totals()
    assert totals[("60-80",)] > totals[("<40",)]


def test_fig4_mdx_equivalent(benchmark, cube, emit):
    mdx_grid = benchmark(execute_mdx, cube, _MDX)
    emit("fig4_family_history_mdx", mdx_grid.sorted_rows().to_text())
    builder_grid = _builder_grid(cube)
    for row_key in builder_grid.row_keys:
        for col_key in builder_grid.col_keys:
            assert mdx_grid.value(row_key, col_key) == builder_grid.value(
                row_key, col_key
            ), (row_key, col_key)
