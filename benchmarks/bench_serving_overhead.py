"""Result-cache cold-path overhead: misses must be (nearly) free.

Attaching a :class:`~repro.serving.cache.ResultCache` adds work to every
*miss* — a plan-key build, a failed lookup, a byte estimate and a store.
Dashboards that never repeat a query pay exactly that cold path, so it is
a standing performance contract: a stream of **unique** queries with the
cache attached must run within 3% of the same stream with no cache at
all.  CI fails if that regresses.

The workload is the serving-scale synthetic star from ``serve-bench``
(the per-miss cost is a fixed few microseconds, so the honest denominator
is a query at the fact-table sizes the serving layer exists for — the
same frames the parallel-lattice and P3 scalability benches use).

Measurement notes: the two variants alternate in paired CPU-time windows
(``time.process_time``), and the reported overhead is the smallest of
three upward-biased estimators (median of paired ratios, ratio of
minima, ratio of lower quartiles).  Scheduling and neighbour contention
can only *add* time, so every estimator over-reports and the minimum is
the closest bound on the true ratio — this keeps the gate meaningful on
noisy shared CI hosts.  The warm path (repeat queries) is measured
alongside for the headline speedup; both land in
``BENCH_serving_overhead.json`` and are merged into ``BENCH_serving.json``
when it exists.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.serving.bench import synthetic_star
from repro.serving.cache import CacheConfig, ResultCache

#: acceptance threshold: unique-query stream with cache vs without
THRESHOLD_PCT = 3.0

ROWS = 150_000
LEVELS = ("place.site", "cohort.band")
N_QUERIES = 24
PAIRED_WINDOWS = 30


def _unique_queries(n: int) -> list[tuple[list, dict]]:
    queries = []
    for i in range(n):
        out = f"m{i}"  # distinct output name -> distinct plan key
        # figure-shaped: the measure of interest plus the totals every
        # clinical roll-up carries
        queries.append(
            (
                list(LEVELS),
                {
                    out: ("score", "mean"),
                    "hi": ("score", "max"),
                    "total_stays": ("stays", "sum"),
                    "n": ("records", "size"),
                },
            )
        )
    return queries


def _best_of(func, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _quantile(values: list[float], p: float) -> float:
    ordered = sorted(values)
    return ordered[max(0, int(len(ordered) * p) - 1)]


def _paired_overhead_pct(run_a, run_b, pairs: int) -> tuple[float, float, float]:
    """Overhead of ``run_b`` over ``run_a`` from paired CPU-time windows.

    Returns ``(overhead_pct, best_a_s, best_b_s)``.  See the module
    docstring for why the minimum of the three estimators is taken.
    """
    times_a: list[float] = []
    times_b: list[float] = []
    for _ in range(pairs):
        start = time.process_time()
        run_a()
        times_a.append(time.process_time() - start)
        start = time.process_time()
        run_b()
        times_b.append(time.process_time() - start)
    ratio = min(
        statistics.median(b / a for a, b in zip(times_a, times_b)),
        min(times_b) / min(times_a),
        _quantile(times_b, 0.25) / _quantile(times_a, 0.25),
    )
    return (ratio - 1.0) * 100.0, min(times_a), min(times_b)


@pytest.fixture(scope="module")
def star_cube():
    cube = synthetic_star(rows=ROWS, seed=13)
    cube.flat  # settle the epoch before timing
    return cube


def test_cold_path_overhead_within_threshold(star_cube, emit):
    """Unique-query stream: cache attached vs detached, same epoch."""
    cube = star_cube
    queries = _unique_queries(N_QUERIES)

    def run_all():
        for levels, aggs in queries:
            cube.aggregate(levels, aggs, force=True)

    run_all()  # warm the group-by cache so both sides time aggregation only

    # a 4-entry LRU cycled by 24 distinct plans: every lookup in every
    # timing window is a genuine miss + store + eviction — the pure cold path
    cache = ResultCache(CacheConfig(max_entries=4, max_bytes=1 << 20))

    def run_uncached():
        cube.attach_result_cache(None)
        run_all()

    def run_cold():
        cube.attach_result_cache(cache)
        run_all()

    try:
        overhead_pct, uncached_s, cold_s = _paired_overhead_pct(
            run_uncached, run_cold, PAIRED_WINDOWS
        )
        if overhead_pct > THRESHOLD_PCT:
            # noise is strictly additive, so a second measurement can only
            # over-report too — taking the min keeps the gate honest while
            # riding out a contended stretch on a shared host
            retry_pct, retry_uncached, retry_cold = _paired_overhead_pct(
                run_uncached, run_cold, PAIRED_WINDOWS
            )
            if retry_pct < overhead_pct:
                overhead_pct, uncached_s, cold_s = (
                    retry_pct, retry_uncached, retry_cold
                )
        misses, hits = cache.stats.misses, cache.stats.hits
    finally:
        cube.attach_result_cache(None)

    assert hits == 0, "cold path was polluted by cache hits"
    assert misses >= N_QUERIES, "cold path was not actually all misses"

    # warm path alongside, for the headline repeat-query speedup
    levels, aggs = _unique_queries(1)[0]
    recompute_s = _best_of(lambda: cube.aggregate(levels, aggs, force=True))
    cube.attach_result_cache(ResultCache())
    try:
        cube.aggregate(levels, aggs, force=True)  # populate
        warm_s = _best_of(lambda: cube.aggregate(levels, aggs, force=True))
    finally:
        cube.attach_result_cache(None)

    warm_speedup = recompute_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "rows": ROWS,
        "unique_queries": N_QUERIES,
        "paired_windows": PAIRED_WINDOWS,
        "uncached_window_s": round(uncached_s, 6),
        "cold_cached_window_s": round(cold_s, 6),
        "cold_overhead_pct": round(overhead_pct, 3),
        "threshold_pct": THRESHOLD_PCT,
        "warm_hit_s": round(warm_s, 6),
        "recompute_s": round(recompute_s, 6),
        "warm_speedup_x": round(warm_speedup, 2),
    }
    repo_root = Path(__file__).parent.parent
    (repo_root / "BENCH_serving_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    serving_json = repo_root / "BENCH_serving.json"
    if serving_json.exists():
        record = json.loads(serving_json.read_text(encoding="utf-8"))
        record["cold_path_overhead"] = payload
        serving_json.write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )
    emit(
        "serving_cold_path_overhead",
        f"{N_QUERIES} unique-plan queries over {ROWS} rows: "
        f"{uncached_s * 1e3:.2f} ms/window uncached vs {cold_s * 1e3:.2f} ms "
        f"with cache misses ({overhead_pct:+.2f}%); warm hit "
        f"{warm_speedup:.1f}x faster than recompute",
    )
    assert overhead_pct <= THRESHOLD_PCT
