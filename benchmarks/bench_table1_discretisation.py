"""Table I — clinical discretisation schemes.

Reproduces the paper's Table I by applying each transcribed clinical
scheme to the cohort and reporting bin edges + occupancy, then compares
against the algorithmic fallbacks (MDLP top-down, ChiMerge bottom-up,
equal-width/frequency) the paper prescribes for attributes without a
clinical scheme — the ablation DESIGN.md §5 calls out.
"""

import pytest

from repro.discri.schemes import TABLE1_SCHEMES
from repro.etl.discretization import (
    ChiMergeDiscretizer,
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
    MDLPDiscretizer,
)

#: Table I rows: attribute -> (description, source column)
_TABLE1_ROWS = {
    "age": "Participant's age on test date",
    "diagnostic_ht_years": "Number of years since diagnosis of hypertension",
    "fbg": "Fasting blood glucose level",
    "lying_dbp_avg": "Diastolic blood pressure when lying down",
}


def _apply_all_schemes(cohort):
    occupancies = {}
    for attribute, scheme in TABLE1_SCHEMES.items():
        values = cohort.column(attribute).to_list()
        occupancies[attribute] = scheme.occupancy(values)
    return occupancies


def test_table1_clinical_schemes(benchmark, cohort, emit):
    occupancies = benchmark(_apply_all_schemes, cohort)
    lines = [
        f"{'Attribute':<20} {'Description':<48} Scheme -> occupancy"
    ]
    for attribute, description in _TABLE1_ROWS.items():
        scheme = TABLE1_SCHEMES[attribute]
        bins = ", ".join(
            f"{b.label} [{b.describe()}]" for b in scheme.bins
        )
        counts = ", ".join(
            f"{label}={count}" for label, count in occupancies[attribute].items()
        )
        lines.append(f"{attribute:<20} {description:<48} {bins}")
        lines.append(f"{'':<20} {'':<48} {counts}")
    emit("table1_discretisation", "\n".join(lines))
    # every scheme must bin every non-null value
    for attribute in _TABLE1_ROWS:
        non_null = cohort.column(attribute).count()
        assert sum(occupancies[attribute].values()) == non_null


def test_table1_algorithmic_comparison(benchmark, cohort, emit):
    """Discretiser ablation on FBG: clinical vs four algorithmic schemes."""
    values = cohort.column("fbg").to_list()
    classes = cohort.column("diabetes_status").to_list()

    def fit_all():
        return {
            "clinical (Table I)": TABLE1_SCHEMES["fbg"],
            "equal_width": EqualWidthDiscretizer(4).fit(values),
            "equal_frequency": EqualFrequencyDiscretizer(4).fit(values),
            "mdlp": MDLPDiscretizer().fit(values, classes),
            "chimerge": ChiMergeDiscretizer(max_bins=4).fit(values, classes),
        }

    schemes = benchmark(fit_all)
    lines = [f"{'Discretiser':<20} cut points"]
    for name, scheme in schemes.items():
        cuts = ", ".join(f"{c:.2f}" for c in scheme.cut_points)
        lines.append(f"{name:<20} {cuts}")
    emit("table1_algorithmic_comparison", "\n".join(lines))
    # the supervised discretisers should rediscover a boundary near the
    # clinical diabetic threshold (7.0)
    for name in ("mdlp", "chimerge"):
        assert any(6.0 <= cut <= 8.0 for cut in schemes[name].cut_points), name
