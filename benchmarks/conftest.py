"""Shared benchmark fixtures: the paper-scale cohort, built once.

Every bench runs on the same 900-patient / ~2500-attendance cohort
(seed 42) so numbers are comparable across benches and across runs.
Reproduced tables/series are printed *and* written to ``benchmarks/out/``
so the artefacts survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.dgms.baseline import ClassicDGMS
from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator
from repro.discri.warehouse import DiscriWarehouse, build_discri_warehouse
from repro.olap.cube import Cube

SEED = 42
PATIENTS = 900

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def cohort():
    """The raw paper-scale cohort table."""
    return DiScRiGenerator(n_patients=PATIENTS, seed=SEED).generate()


@pytest.fixture(scope="session")
def built(cohort) -> DiscriWarehouse:
    """ETL + warehouse build over the cohort."""
    return build_discri_warehouse(cohort)


@pytest.fixture(scope="session")
def cube(built) -> Cube:
    """Cube over the session warehouse."""
    c = Cube(built.warehouse)
    c.flat  # materialise once so benches time queries, not the first build
    return c


@pytest.fixture(scope="session")
def system(cohort) -> DDDGMS:
    """A full DD-DGMS over the cohort (operational store included)."""
    return DDDGMS(cohort)


@pytest.fixture(scope="session")
def classic(cohort) -> ClassicDGMS:
    """The DG-SQL baseline over the same cohort."""
    return ClassicDGMS(cohort)


@pytest.fixture(scope="session")
def emit():
    """Print a reproduced artefact and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        banner = f"\n===== {name} (cohort: {PATIENTS} patients, seed {SEED}) ====="
        print(banner)
        print(text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
