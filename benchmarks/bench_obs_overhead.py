"""Observability overhead: disabled probes must be free.

The kernels carry their instrumentation permanently (spans and counters
in ``groupby.agg``/``hash_join``), so the no-op fast path is a standing
performance contract: with tracing disabled, the instrumented group-by
workload must run within 2% of an uninstrumented baseline (the same
kernels with the probe calls stubbed out at module level).  CI fails if
that regresses.  Results land in ``BENCH_obs.json`` together with the
raw per-call cost of a disabled :func:`repro.obs.span`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs
from repro.tabular import Table

ROWS = 100_000
#: acceptance threshold: disabled probes within this % of uninstrumented
THRESHOLD_PCT = 2.0


class _Uninstrumented:
    """Stand-in for the ``obs`` module with every probe stubbed out."""

    __slots__ = ()

    @staticmethod
    def span(name, **attrs):
        return obs.NULL_SPAN

    @staticmethod
    def count(name, n=1):
        pass

    @staticmethod
    def observe(name, value):
        pass

    @staticmethod
    def set_gauge(name, value):
        pass


def _workload() -> tuple:
    bands = ["0-20", "20-40", "40-60", "60-80", "80+"]
    genders = ["F", "M"]
    flat = Table.from_columns(
        {
            "age_band": [bands[i % 5] for i in range(ROWS)],
            "gender": [genders[i % 2] for i in range(ROWS)],
            "pid": [i % (ROWS // 3) for i in range(ROWS)],
            "fbg": [4.0 + (i % 70) / 10.0 for i in range(ROWS)],
        },
        schema={"age_band": "str", "gender": "str", "pid": "int", "fbg": "float"},
    )
    grouped = flat.groupby("age_band", "gender")
    aggs = {
        "n": ("pid", "size"),
        "patients": ("pid", "nunique"),
        "mean_fbg": ("fbg", "mean"),
        "hi": ("fbg", "max"),
    }
    return grouped, aggs


def _best_of(func, repeats: int = 5, inner: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def test_noop_span_cost(emit):
    """Per-call price of ``obs.span`` while disabled, in nanoseconds."""
    obs.disable()
    calls = 200_000
    span = obs.span
    start = time.perf_counter()
    for _ in range(calls):
        with span("probe", rows=1):
            pass
    per_call_ns = (time.perf_counter() - start) / calls * 1e9
    emit("obs_noop_span", f"disabled span: {per_call_ns:.0f} ns/call")
    # generous bound — the point is "no accidental allocation/IO on the
    # fast path", not a microbenchmark race
    assert per_call_ns < 5_000


def test_disabled_overhead_within_threshold(emit):
    """Instrumented group-by with obs disabled vs stubbed-out probes."""
    import repro.tabular.groupby as groupby_module
    import repro.tabular.join as join_module

    obs.disable()
    grouped, aggs = _workload()

    def run():
        return grouped.agg(**aggs)

    run()  # warm the factorisation cache: steady state, like the cube
    disabled_s = _best_of(run)

    stub = _Uninstrumented()
    originals = (groupby_module.obs, join_module.obs)
    try:
        groupby_module.obs = join_module.obs = stub
        uninstrumented_s = _best_of(run)
    finally:
        groupby_module.obs, join_module.obs = originals

    # informational: the fully traced cost of the same workload
    ring = obs.RingBufferSink(capacity=4)
    obs.configure(sinks=[ring])
    try:
        enabled_s = _best_of(run)
    finally:
        obs.disable()

    overhead_pct = (disabled_s / uninstrumented_s - 1.0) * 100.0
    payload = {
        "rows": ROWS,
        "groupby_uninstrumented_s": round(uninstrumented_s, 6),
        "groupby_disabled_s": round(disabled_s, 6),
        "groupby_traced_s": round(enabled_s, 6),
        "overhead_pct": round(overhead_pct, 3),
        "threshold_pct": THRESHOLD_PCT,
    }
    repo_root = Path(__file__).parent.parent
    (repo_root / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    # the group-by bench record also carries the overhead comparison, so
    # one file tells the whole kernel story (speedup + probe cost)
    groupby_json = repo_root / "BENCH_groupby.json"
    if groupby_json.exists():
        record = json.loads(groupby_json.read_text(encoding="utf-8"))
        record["obs_overhead"] = payload
        groupby_json.write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )
    emit(
        "obs_disabled_overhead",
        f"group-by over {ROWS} rows: {uninstrumented_s * 1e3:.2f} ms "
        f"uninstrumented vs {disabled_s * 1e3:.2f} ms with disabled probes "
        f"({overhead_pct:+.2f}%; traced: {enabled_s * 1e3:.2f} ms)",
    )
    assert overhead_pct <= THRESHOLD_PCT
