"""Fig 5 — age and gender distribution of patients with diabetes.

Reproduces the OLAP outcome and its drill-down: at 10-year bands, then
drilled to 5-year bands, where the paper's findings appear — "males
dominate the 70-75 subgroup while females are the majority in the 75-80
subgroup", and "the proportion of women with diabetes drops substantially
over 78".  Also regenerates the chart as SVG and runs the
edge-of-overlapping-dimensions detector on the drilled grid.
"""

from repro.olap.operations import drill_down
from repro.viz.overlap import edge_groups
from repro.viz.svg import crosstab_to_svg

from benchmarks.conftest import OUT_DIR


def _coarse_query(cube):
    return (
        cube.query()
        .rows("age_band10")
        .columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .build()
    )


def test_fig5_coarse_distribution(benchmark, cube, emit):
    query = _coarse_query(cube)
    grid = benchmark(lambda: query.execute(cube).sorted_rows())
    emit(
        "fig5_age_gender_10yr",
        "diabetic patients by 10-year age band and gender\n"
        + grid.to_text(with_totals=True),
    )
    assert grid.grand_total() > 0


def test_fig5_drilldown_findings(benchmark, cube, emit):
    coarse = _coarse_query(cube)

    def drill_and_execute():
        fine = drill_down(coarse, cube, "age_band10")
        return fine.execute(cube).sorted_rows()

    grid = benchmark(drill_and_execute)
    emit(
        "fig5_age_gender_5yr_drilldown",
        "diabetic patients by 5-year age band and gender (drill-down)\n"
        + grid.to_text(with_totals=True),
    )
    crosstab_to_svg(
        grid, "Fig 5: diabetics by age band and gender",
        OUT_DIR / "fig5.svg",
    )

    males_70_75 = grid.value(("70-75",), ("M",))
    females_70_75 = grid.value(("70-75",), ("F",))
    males_75_80 = grid.value(("75-80",), ("M",))
    females_75_80 = grid.value(("75-80",), ("F",))
    # paper: "males dominate the 70-75 subgroup while females are the
    # majority in the 75-80 subgroup"
    assert males_70_75 > females_70_75
    assert females_75_80 > males_75_80


def test_fig5_female_share_declines(benchmark, cube, emit):
    def female_rates():
        everyone = (
            cube.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id", name="patients")
            .execute()
        )
        diabetic = (
            cube.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id", name="patients")
            .where("conditions.diabetes_status", "yes")
            .execute()
        )
        rates = {}
        for band in ("70-75", "75-80", "80-85", "85-90"):
            with_diabetes = diabetic.value((band,), ("F",)) or 0
            total = everyone.value((band,), ("F",)) or 1
            rates[band] = with_diabetes / total
        return rates

    rates = benchmark(female_rates)
    emit(
        "fig5_female_rate_decline",
        "female diabetes rate by 5-year band\n"
        + "\n".join(f"  {band}: {rate:.3f}" for band, rate in rates.items()),
    )
    assert rates["80-85"] < rates["75-80"]
    assert rates["85-90"] < rates["75-80"] * 0.5


def test_fig5_edge_groups(benchmark, cube, emit):
    """The visualisation claim: thin intersections are found mechanically."""
    grid = (
        cube.query().rows("age_band5").columns("gender")
        .count_distinct("cardinality.patient_id", name="patients")
        .where("conditions.diabetes_status", "yes")
        .execute()
    )
    groups = benchmark(edge_groups, grid, 0.2, 1, 8)
    emit(
        "fig5_edge_groups",
        "patient groups at the edges of overlapping dimensions\n"
        + "\n".join(f"  {g.describe()}" for g in groups[:8]),
    )
    assert groups  # the elderly-female diabetics show up as an edge group
