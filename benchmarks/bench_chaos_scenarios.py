"""Chaos scenario-sweep smoke: a fast slice of the full fault matrix.

The CI ``chaos-sweep`` job runs the full 12-scenario matrix through
``python -m repro sweep``; this bench keeps a compact slice of it inside
the benchmark suite so `pytest benchmarks/` exercises the fleet +
invariant machinery end-to-end and reports loop latency per regime.
Gates: every scenario settles ``ok`` (which requires a 100% invariant
pass rate) and at least one die-style worker crash was isolated.
"""

from __future__ import annotations

import json

from repro.scenarios import default_matrix, format_summary, run_sweep


def _smoke_slice():
    """One scenario per (plan, crash_style) cell, small regime only."""
    picked, seen = [], set()
    for spec in default_matrix():
        cell = (spec.plan, spec.crash_style)
        if spec.regime != "small-clean" and spec.crash_style != "die":
            continue
        if cell in seen:
            continue
        seen.add(cell)
        picked.append(spec)
    return picked


def test_smoke_sweep_invariants_hold(tmp_path, emit):
    specs = _smoke_slice()
    assert any(s.crash_style == "die" for s in specs)

    out = tmp_path / "BENCH_scenarios.json"
    payload = run_sweep(
        specs, root=tmp_path / "sweep", out=out, seed=7
    )
    emit("chaos_scenarios_smoke", format_summary(payload))

    assert payload["ok"], payload["outcomes"]
    assert payload["invariant_pass_rate"] == 1.0
    assert payload["outcomes"].get("ok", 0) == len(specs)
    # the die-style scenario really died once and was recovered in isolation
    assert payload["crashed_workers_isolated"] >= 1
    # the artifact round-trips
    assert json.loads(out.read_text())["harness"] == payload["harness"]


def test_smoke_sweep_resumes(tmp_path):
    specs = _smoke_slice()[:2]
    root = tmp_path / "sweep"
    out = tmp_path / "BENCH_scenarios.json"
    first = run_sweep(specs, root=root, out=out, seed=7)
    assert first["executed_scenarios"] == len(specs)
    second = run_sweep(specs, root=root, out=out, seed=7)
    assert second["executed_scenarios"] == 0
    assert second["resumed_scenarios"] == len(specs)
