"""Quarantine-path overhead: resilience must be free on clean batches.

The resilient ETL mode threads a hidden row-identity column through every
step and gives per-row-failure steps single-pass implementations; the
standing contract is that a *clean* batch pays at most ``THRESHOLD_PCT``
over the strict all-or-nothing path.  CI fails if that regresses.
Results land in ``BENCH_ingest.json`` together with the dirty-batch cost
(informational — diverting rows is allowed to cost something).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.discri.warehouse import build_discri_warehouse, discri_pipeline
from repro.etl.quarantine import ListSink
from repro.tabular.table import Table

#: acceptance threshold: resilient clean-batch pipeline within this % of strict
THRESHOLD_PCT = 5.0


def _best_of(func, repeats: int = 5, inner: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            func()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _dirty_copy(cohort: Table, every: int = 50) -> Table:
    """The cohort with ~2% of visit dates nulled (derive-step failures)."""
    rows = cohort.to_rows()
    for i in range(0, len(rows), every):
        rows[i]["visit_date"] = None
    return Table.from_rows(rows, schema=dict(cohort.schema))


def test_clean_batch_overhead_within_threshold(cohort, emit):
    pipeline = discri_pipeline()

    def strict():
        return pipeline.run(cohort)

    def resilient():
        return pipeline.run(cohort, quarantine=ListSink())

    strict()  # warm caches equally
    strict_s = _best_of(strict)
    resilient_s = _best_of(resilient)
    assert len(resilient().quarantined) == 0  # the batch really is clean

    # informational: the same pipeline over a dirtied cohort
    dirty = _dirty_copy(cohort)
    dirty_sink = ListSink()
    dirty_s = _best_of(lambda: pipeline.run(dirty, quarantine=ListSink()))
    pipeline.run(dirty, quarantine=dirty_sink)

    overhead_pct = (resilient_s / strict_s - 1.0) * 100.0
    payload = {
        "rows": cohort.num_rows,
        "strict_s": round(strict_s, 6),
        "resilient_clean_s": round(resilient_s, 6),
        "overhead_pct": round(overhead_pct, 3),
        "threshold_pct": THRESHOLD_PCT,
        "resilient_dirty_s": round(dirty_s, 6),
        "dirty_rows_quarantined": len(dirty_sink.entries),
    }
    repo_root = Path(__file__).parent.parent
    (repo_root / "BENCH_ingest.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    emit(
        "ingest_robustness_overhead",
        f"clean batch of {cohort.num_rows} rows: strict {strict_s * 1e3:.1f} ms "
        f"vs resilient {resilient_s * 1e3:.1f} ms ({overhead_pct:+.2f}%); "
        f"dirty batch ({len(dirty_sink.entries)} quarantined): "
        f"{dirty_s * 1e3:.1f} ms",
    )
    assert overhead_pct <= THRESHOLD_PCT


def test_dirty_batch_partitions_cohort(cohort, emit):
    """End-to-end: ETL + load over a dirty cohort loses nothing."""
    dirty = _dirty_copy(cohort)
    sink = ListSink()
    built = build_discri_warehouse(dirty, quarantine=sink, batch="bench")
    facts = len(built.kept_indices)
    quarantined = len({e.source_index for e in sink.entries})
    dropped_duplicates = dirty.num_rows - facts - quarantined
    emit(
        "ingest_robustness_partition",
        f"{dirty.num_rows} dirty rows -> {facts} facts + "
        f"{quarantined} quarantined + {dropped_duplicates} deduplicated",
    )
    assert facts + quarantined <= dirty.num_rows
    assert quarantined >= 1
    assert dropped_duplicates >= 0
