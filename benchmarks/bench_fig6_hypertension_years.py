"""Fig 6 — years since hypertension diagnosis by age group.

Reproduces the OLAP outcome using the Table I DiagnosticHTYears clinical
scheme and the age drill-down, asserting the paper's finding: "a
significant drop in the number of 5-10 year hypertension cases in the age
sub-groups of 70-75 and 75-80".
"""

from repro.olap.operations import drill_down
from repro.viz.svg import crosstab_to_svg

from benchmarks.conftest import OUT_DIR

_CATEGORIES = ("<2", "2-5", "5-10", "10-20", ">=20")


def _share_5_10(grid, band: str) -> float:
    cells = [grid.value((band,), (c,)) or 0 for c in _CATEGORIES]
    total = sum(cells)
    return cells[2] / total if total else 0.0


def test_fig6_coarse(benchmark, cube, emit):
    def run():
        return (
            cube.query()
            .rows("age_band10")
            .columns("ht_years_band")
            .count_records("cases")
            .where("conditions.hypertension", "yes")
            .execute()
            .sorted_rows()
        )

    grid = benchmark(run)
    emit(
        "fig6_ht_years_10yr",
        "hypertensive attendances by years-since-diagnosis and 10-year band\n"
        + grid.to_text(with_totals=True),
    )
    assert grid.grand_total() > 0


def test_fig6_drilldown_dip(benchmark, cube, emit):
    coarse = (
        cube.query()
        .rows("age_band10")
        .columns("ht_years_band")
        .count_records("cases")
        .where("conditions.hypertension", "yes")
        .build()
    )

    def drill_and_execute():
        fine = drill_down(coarse, cube, "age_band10")
        return fine.execute(cube).sorted_rows()

    grid = benchmark(drill_and_execute)
    emit(
        "fig6_ht_years_5yr_drilldown",
        "drill-down to 5-year bands\n" + grid.to_text(with_totals=True)
        + "\n\n5-10y share per band: "
        + ", ".join(
            f"{band}={_share_5_10(grid, band):.3f}"
            for band in ("60-65", "65-70", "70-75", "75-80", "80-85")
        ),
    )
    crosstab_to_svg(
        grid, "Fig 6: years since HT diagnosis by age band",
        OUT_DIR / "fig6.svg",
    )

    reference = (_share_5_10(grid, "60-65") + _share_5_10(grid, "65-70")) / 2
    # paper: significant drop of 5-10y cases within 70-75 and 75-80
    assert _share_5_10(grid, "70-75") < reference * 0.75
    assert _share_5_10(grid, "75-80") < reference * 0.85
