"""P3 — substrate scalability: load and query cost vs cohort size.

Not a paper figure (the paper reports no performance numbers); this bench
characterises our substitute substrate so EXPERIMENTS.md can state the
scale at which the reproduction runs, and ablates eager flattened-view
reuse vs rebuilding it per query (DESIGN.md §5).
"""

import pytest

from repro.discri.generator import DiScRiGenerator
from repro.discri.warehouse import build_discri_warehouse
from repro.olap.cube import Cube


@pytest.mark.parametrize("patients", [100, 300, 900])
def test_p3_generate_and_load(benchmark, patients, emit):
    def build():
        cohort = DiScRiGenerator(n_patients=patients, seed=3).generate()
        return build_discri_warehouse(cohort)

    built = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        f"p3_load_{patients}",
        f"{patients} patients -> {built.warehouse.schema.fact.num_rows} facts",
    )
    assert built.warehouse.schema.fact.num_rows >= patients


def test_p3_query_latency_cached_view(benchmark, cube, emit):
    """Steady-state query: the flattened view is already materialised."""
    def query():
        return (
            cube.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id").execute()
        )

    grid = benchmark(query)
    emit("p3_query_cached", f"cells: {len(grid.cells)}")
    assert grid.grand_total() > 0


def test_p3_query_latency_cold_view(benchmark, built, emit):
    """Ablation: rebuild the flattened view before every query."""
    def query():
        cold = Cube(built.warehouse)
        cold.refresh()
        return (
            cold.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id").execute()
        )

    grid = benchmark(query)
    emit("p3_query_cold", f"cells: {len(grid.cells)}")
    assert grid.grand_total() > 0


def test_p3_mdx_latency(benchmark, cube, emit):
    from repro.olap.mdx.evaluator import execute_mdx

    mdx = (
        "SELECT {[Measures].[records], [Measures].[fbg]} ON COLUMNS, "
        "CROSSJOIN([conditions].[age_band10].MEMBERS, "
        "[personal].[gender].MEMBERS) ON ROWS FROM discri"
    )
    grid = benchmark(execute_mdx, cube, mdx)
    emit("p3_mdx", f"rows: {len(grid.row_keys)}, cols: {len(grid.col_keys)}")
    assert len(grid.row_keys) > 4


def test_p3_oltp_point_lookup(benchmark, system, emit):
    lookup = benchmark(system.oltp_lookup, 100)
    emit("p3_oltp_lookup", f"visit 100 found: {lookup is not None}")
    assert lookup is not None


def test_p3_ingest_batch(benchmark, emit):
    """Accumulation throughput: ingest a yearly intake into a live system."""
    from repro.dgms.system import DDDGMS
    from repro.discri.generator import offset_identifiers

    base = DiScRiGenerator(n_patients=300, seed=61).generate()
    batch = DiScRiGenerator(n_patients=60, seed=62).generate()

    def ingest_once():
        system = DDDGMS(base)
        shifted = offset_identifiers(
            batch,
            max(system.source.column("patient_id").to_list()),
            max(system.source.column("visit_id").to_list()),
        )
        system.ingest_visits(shifted)
        return system

    system = benchmark.pedantic(ingest_once, rounds=1, iterations=1)
    patients = system.cube.grand_total(
        {"patients": ("cardinality.patient_id", "nunique")}
    )["patients"]
    emit(
        "p3_ingest",
        f"360 patients after intake; cube sees {patients} distinct patients "
        f"across {system.cube.flat.num_rows} attendances "
        f"(data version {system.data_version})",
    )
    assert patients == 360


def test_p3_materialized_lattice(benchmark, cube, emit):
    """Ablation: answer the Fig 5 roll-up from a precomputed lattice node."""
    from repro.olap.materialized import MaterializedCube

    lattice = MaterializedCube(cube).materialize(
        [["conditions.age_band10", "personal.gender", "conditions.diabetes_status"]]
    )

    def query():
        return lattice.aggregate(
            ["conditions.age_band10", "personal.gender"],
            {"n": ("records", "size"), "mean_fbg": ("fbg", "mean")},
        )

    result = benchmark(query)
    base = cube.aggregate(
        ["conditions.age_band10", "personal.gender"],
        {"n": ("records", "size"), "mean_fbg": ("fbg", "mean")},
    )
    got = {tuple(r[k] for k in ("conditions.age_band10", "personal.gender")): r["n"]
           for r in result.to_rows()}
    expected = {tuple(r[k] for k in ("conditions.age_band10", "personal.gender")): r["n"]
                for r in base.to_rows()}
    assert got == expected
    emit(
        "p3_materialized",
        f"lattice: {lattice.storage_cells()} precomputed cells; "
        f"stats: {lattice.stats.summary()}",
    )
