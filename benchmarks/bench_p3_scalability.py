"""P3 — substrate scalability: load and query cost vs cohort size.

Not a paper figure (the paper reports no performance numbers); this bench
characterises our substitute substrate so EXPERIMENTS.md can state the
scale at which the reproduction runs, and ablates eager flattened-view
reuse vs rebuilding it per query (DESIGN.md §5), plus the vectorised
group-by/join kernels vs the scalar parity oracle (results are asserted
cell-for-cell identical; speedups land in ``BENCH_groupby.json``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.discri.generator import DiScRiGenerator
from repro.discri.warehouse import build_discri_warehouse
from repro.obs import profile
from repro.olap.cube import Cube
from repro.tabular import SCALAR_KERNELS_ENV, Table, hash_join


@pytest.mark.parametrize("patients", [100, 300, 900])
def test_p3_generate_and_load(benchmark, patients, emit):
    def build():
        cohort = DiScRiGenerator(n_patients=patients, seed=3).generate()
        return build_discri_warehouse(cohort)

    built = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        f"p3_load_{patients}",
        f"{patients} patients -> {built.warehouse.schema.fact.num_rows} facts",
    )
    assert built.warehouse.schema.fact.num_rows >= patients


def test_p3_query_latency_cached_view(benchmark, cube, emit):
    """Steady-state query: the flattened view is already materialised."""
    def query():
        return (
            cube.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id").execute()
        )

    grid = benchmark(query)
    emit("p3_query_cached", f"cells: {len(grid.cells)}")
    assert grid.grand_total() > 0


def test_p3_query_latency_cold_view(benchmark, built, emit):
    """Ablation: rebuild the flattened view before every query."""
    def query():
        cold = Cube(built.warehouse)
        cold.refresh()
        return (
            cold.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id").execute()
        )

    grid = benchmark(query)
    emit("p3_query_cold", f"cells: {len(grid.cells)}")
    assert grid.grand_total() > 0


def test_p3_mdx_latency(benchmark, cube, emit):
    from repro.olap.mdx.evaluator import execute_mdx

    mdx = (
        "SELECT {[Measures].[records], [Measures].[fbg]} ON COLUMNS, "
        "CROSSJOIN([conditions].[age_band10].MEMBERS, "
        "[personal].[gender].MEMBERS) ON ROWS FROM discri"
    )
    grid = benchmark(execute_mdx, cube, mdx)
    emit("p3_mdx", f"rows: {len(grid.row_keys)}, cols: {len(grid.col_keys)}")
    assert len(grid.row_keys) > 4


def test_p3_oltp_point_lookup(benchmark, system, emit):
    lookup = benchmark(system.oltp_lookup, 100)
    emit("p3_oltp_lookup", f"visit 100 found: {lookup is not None}")
    assert lookup is not None


def test_p3_ingest_batch(benchmark, emit):
    """Accumulation throughput: ingest a yearly intake into a live system."""
    from repro.dgms.system import DDDGMS
    from repro.discri.generator import offset_identifiers

    base = DiScRiGenerator(n_patients=300, seed=61).generate()
    batch = DiScRiGenerator(n_patients=60, seed=62).generate()

    def ingest_once():
        system = DDDGMS(base)
        shifted = offset_identifiers(
            batch,
            max(system.source.column("patient_id").to_list()),
            max(system.source.column("visit_id").to_list()),
        )
        system.ingest_visits(shifted)
        return system

    system = benchmark.pedantic(ingest_once, rounds=1, iterations=1)
    patients = system.cube.grand_total(
        {"patients": ("cardinality.patient_id", "nunique")}
    )["patients"]
    emit(
        "p3_ingest",
        f"360 patients after intake; cube sees {patients} distinct patients "
        f"across {system.cube.flat.num_rows} attendances "
        f"(data version {system.data_version})",
    )
    assert patients == 360


def _synthetic_cohort(rows: int, seed: int = 42) -> tuple[Table, Table]:
    """A warehouse-scale flat view + a patient dimension, seeded."""
    rng = np.random.default_rng(seed)
    bands = np.array(["0-20", "20-40", "40-60", "60-80", "80+"])
    genders = np.array(["F", "M"])
    fbg = rng.normal(6.5, 1.5, size=rows).round(2)
    nulled = rng.random(rows) < 0.05  # partially-known records, like DiScRi
    pids = rng.integers(1, max(rows // 3, 2), size=rows)
    flat = Table.from_columns(
        {
            "age_band": bands[rng.integers(0, len(bands), rows)].tolist(),
            "gender": genders[rng.integers(0, 2, rows)].tolist(),
            "pid": pids.tolist(),
            "fbg": [None if m else float(v) for v, m in zip(fbg, nulled)],
        },
        schema={"age_band": "str", "gender": "str", "pid": "int", "fbg": "float"},
    )
    unique_pids = sorted(set(pids.tolist()))
    dim = Table.from_columns(
        {
            "pid": unique_pids,
            "cohort": [("case" if p % 3 else "control") for p in unique_pids],
        },
        schema={"pid": "int", "cohort": "str"},
    )
    return flat, dim


def _best_of(func, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_p3_groupby_kernel_speedup(emit):
    """Vectorised kernels vs the scalar oracle at warehouse scale.

    The drill-down shape of Figs 4-6: group 100k attendance rows by
    age-band x gender and aggregate counts, distinct patients and FBG
    statistics — plus the fact-to-dimension hash join under P1.  Results
    must be cell-for-cell identical across kernels.

    Timing is steady-state: one ``GroupBy`` handle serves repeated
    ``agg()`` calls (exactly how ``Cube`` reuses its cached grouping for
    repeated ``aggregate()`` queries over an unchanged flat view), so the
    vector path's factorisation amortises while the scalar oracle
    re-buckets per call by construction.
    """
    rows = 100_000
    flat, dim = _synthetic_cohort(rows)
    aggs = {
        "n": ("pid", "size"),
        "patients": ("pid", "nunique"),
        "present": ("fbg", "count"),
        "mean_fbg": ("fbg", "mean"),
        "sd_fbg": ("fbg", "std"),
        "lo": ("fbg", "min"),
        "hi": ("fbg", "max"),
    }

    grouped = flat.groupby("age_band", "gender")

    def run_groupby():
        return grouped.agg(**aggs)

    def run_join():
        return hash_join(flat, dim, on="pid", how="left")

    previous = os.environ.get(SCALAR_KERNELS_ENV)
    try:
        os.environ[SCALAR_KERNELS_ENV] = "1"
        scalar_groupby_s, scalar_table = _best_of(run_groupby, repeats=2)
        scalar_join_s, scalar_joined = _best_of(run_join, repeats=2)
        os.environ[SCALAR_KERNELS_ENV] = "0"  # force the vector path
        vector_groupby_s, vector_table = _best_of(run_groupby, repeats=3)
        vector_join_s, vector_joined = _best_of(run_join, repeats=3)
    finally:
        if previous is None:
            os.environ.pop(SCALAR_KERNELS_ENV, None)
        else:
            os.environ[SCALAR_KERNELS_ENV] = previous

    # parity: the fast path must reproduce the oracle exactly
    assert vector_table.schema == scalar_table.schema
    assert vector_table.to_rows() == scalar_table.to_rows()
    assert vector_joined.schema == scalar_joined.schema
    assert vector_joined.to_rows() == scalar_joined.to_rows()

    groupby_speedup = scalar_groupby_s / vector_groupby_s
    join_speedup = scalar_join_s / vector_join_s
    payload = {
        "rows": rows,
        "groups": vector_table.num_rows,
        "aggregations": sorted(aggs),
        "groupby": {
            "scalar_s": round(scalar_groupby_s, 4),
            "vector_s": round(vector_groupby_s, 4),
            "speedup": round(groupby_speedup, 1),
        },
        "join": {
            "scalar_s": round(scalar_join_s, 4),
            "vector_s": round(vector_join_s, 4),
            "speedup": round(join_speedup, 1),
        },
        "identical_to_scalar_oracle": True,
    }
    # one traced run so the artefact carries the measured span tree
    _, span_tree = profile("groupby_bench", run_groupby)
    payload["span_tree"] = span_tree.to_dict()
    (Path(__file__).parent.parent / "BENCH_groupby.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    emit(
        "p3_groupby_kernels",
        f"{rows} rows -> {vector_table.num_rows} cells; "
        f"group-by {scalar_groupby_s * 1e3:.0f} ms scalar vs "
        f"{vector_groupby_s * 1e3:.1f} ms vector ({groupby_speedup:.0f}x); "
        f"join {scalar_join_s * 1e3:.0f} ms scalar vs "
        f"{vector_join_s * 1e3:.1f} ms vector ({join_speedup:.0f}x)",
    )
    assert groupby_speedup >= 10.0
    assert join_speedup >= 5.0


def test_p3_recovery_latency(tmp_path, emit):
    """Crash-recovery cost at warehouse scale: snapshot load + WAL replay.

    100k operational rows are checkpointed into a snapshot generation,
    another slice of transactions lands in the WAL afterwards, and the
    process "dies".  ``recover()`` must rebuild the exact pre-crash
    engine; this times that path and records it in ``BENCH_recovery.json``.
    """
    import datetime as dt

    from repro.storage import StorageEngine, WriteAheadLog, checkpoint, recover

    rows = 100_000
    wal_tail = 5_000
    batch = 1_000
    wal_path = tmp_path / "wal.log"
    snap_root = tmp_path / "snaps"

    engine = StorageEngine(WriteAheadLog(wal_path))
    engine.create_table(
        "visits",
        {"vid": "int", "pid": "int", "fbg": "float", "when": "date"},
        primary_key="vid",
    )
    engine.create_index("visits", "pid")
    epoch = dt.date(2010, 1, 1)

    def load(start: int, count: int) -> None:
        for base in range(start, start + count, batch):
            with engine.transaction():
                for vid in range(base, min(base + batch, start + count)):
                    engine.insert(
                        "visits",
                        {
                            "vid": vid,
                            "pid": vid // 3,
                            "fbg": 4.0 + (vid % 70) / 10.0,
                            "when": epoch + dt.timedelta(days=vid % 1461),
                        },
                    )

    load(0, rows)
    snapshot_s, _ = _best_of(lambda: checkpoint(engine, snap_root), repeats=1)
    load(rows, wal_tail)  # post-checkpoint transactions live only in the WAL
    pre_crash_count = engine.row_count("visits")
    engine.wal.close()  # the crash: in-memory state is gone

    recover_s, recovered = _best_of(
        lambda: recover(snap_root, wal_path), repeats=3
    )
    assert recovered.row_count("visits") == pre_crash_count
    assert recovered.get_by_pk("visits", rows + wal_tail - 1) is not None
    assert len(recovered.find("visits", "pid", 33)) == 3

    payload = {
        "rows": pre_crash_count,
        "snapshot_rows": rows,
        "wal_replayed_rows": wal_tail,
        "wal_bytes": wal_path.stat().st_size,
        "checkpoint_s": round(snapshot_s, 3),
        "recover_s": round(recover_s, 3),
    }
    _, recover_tree = profile(
        "recovery_bench", lambda: recover(snap_root, wal_path)
    )
    payload["span_tree"] = recover_tree.to_dict()
    (Path(__file__).parent.parent / "BENCH_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    emit(
        "p3_recovery",
        f"{pre_crash_count} rows ({rows} snapshotted + {wal_tail} WAL tail); "
        f"checkpoint {snapshot_s:.2f} s, recover {recover_s:.2f} s",
    )


def test_p3_materialized_lattice(benchmark, cube, emit):
    """Ablation: answer the Fig 5 roll-up from a precomputed lattice node."""
    from repro.olap.materialized import MaterializedCube

    lattice = MaterializedCube(cube).materialize(
        [["conditions.age_band10", "personal.gender", "conditions.diabetes_status"]]
    )

    def query():
        return lattice.aggregate(
            ["conditions.age_band10", "personal.gender"],
            {"n": ("records", "size"), "mean_fbg": ("fbg", "mean")},
        )

    result = benchmark(query)
    base = cube.aggregate(
        ["conditions.age_band10", "personal.gender"],
        {"n": ("records", "size"), "mean_fbg": ("fbg", "mean")},
    )
    got = {tuple(r[k] for k in ("conditions.age_band10", "personal.gender")): r["n"]
           for r in result.to_rows()}
    expected = {tuple(r[k] for k in ("conditions.age_band10", "personal.gender")): r["n"]
                for r in base.to_rows()}
    assert got == expected
    emit(
        "p3_materialized",
        f"lattice: {lattice.storage_cells()} precomputed cells; "
        f"stats: {lattice.stats.summary()}",
    )
