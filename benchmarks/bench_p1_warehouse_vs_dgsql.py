"""P1 — architectural comparison: warehouse vs DG-SQL intermediation.

The paper's core claim is that replacing DG-SQL with a data warehouse
improves multivariate decision guidance.  This bench compares the two
paths on the same cohort along both axes the paper argues:

* **latency** of repeated multivariate aggregations (the cube's cached
  flattened view vs fresh flat scans through the SQL engine), and
* **expressiveness** — drill-down, distinct-patient counting via the
  cardinality dimension, and dynamic feedback dimensions exist only on
  the warehouse path (asserted structurally).
"""

import pytest


def _warehouse_query(cube):
    return (
        cube.query()
        .rows("age_band10")
        .columns("gender")
        .count_records("n")
        .where("conditions.diabetes_status", "yes")
        .execute()
    )


def _dgsql_query(classic):
    return classic.query(
        "SELECT gender, COUNT(*) AS n FROM attendances "
        "WHERE diabetes_status = 'yes' GROUP BY gender"
    )


def test_p1_warehouse_multivariate_latency(benchmark, cube, emit):
    grid = benchmark(_warehouse_query, cube)
    emit("p1_warehouse_query", grid.sorted_rows().to_text(with_totals=True))
    assert grid.grand_total() > 0


def test_p1_dgsql_flat_latency(benchmark, classic, emit):
    result = benchmark(_dgsql_query, classic)
    emit("p1_dgsql_query", result.to_text())
    assert result.num_rows == 2


def test_p1_results_agree_where_expressible(cube, classic, benchmark, emit):
    """Where DG-SQL *can* express the question, both answers match —
    the comparison is architecture, not correctness."""

    def both():
        warehouse = (
            cube.query().rows("gender")
            .columns("conditions.diabetes_status")
            .count_records().execute()
        )
        flat = classic.crosstab("gender", "diabetes_status")
        return warehouse, flat

    warehouse, flat = benchmark(both)
    for row in flat.to_rows():
        assert warehouse.value(
            (row["gender"],), (row["diabetes_status"],)
        ) == row["n"]
    emit(
        "p1_agreement",
        "warehouse and DG-SQL agree on the expressible subset\n"
        + flat.to_text(),
    )


def test_p1_expressiveness_gap(cube, classic, benchmark, emit):
    """What the flat path cannot do without manual schema work."""

    def warehouse_only_features():
        # 1. drill-down: hierarchy metadata lives in the warehouse
        from repro.olap.operations import drill_down

        query = (
            cube.query().rows("age_band10").columns("gender")
            .count_records().build()
        )
        drilled = drill_down(query, cube, "age_band10")
        # 2. distinct patients per cell via the cardinality dimension
        patients = (
            cube.query().rows("age_band5").columns("gender")
            .count_distinct("cardinality.patient_id").execute()
        )
        return drilled.rows, patients.grand_total()

    drilled_rows, patient_total = benchmark(warehouse_only_features)
    assert drilled_rows == ("conditions.age_band5",)
    assert patient_total > 0
    # the flat baseline has no hierarchy metadata at all
    assert not hasattr(classic, "drill_down")
    emit(
        "p1_expressiveness",
        "warehouse-only capabilities exercised: drill-down via hierarchy, "
        f"distinct-patient grand total = {patient_total:g}.\n"
        "DG-SQL baseline requires hand-written queries per granularity and "
        "has no dimension metadata.",
    )
