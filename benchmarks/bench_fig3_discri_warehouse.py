"""Fig 3 — the DiScRi dimensional model built from the full cohort.

Times the complete ETL + load path (clean → discretise → derive →
cardinality → dimension population → fact load) and verifies the model:
eight dimensions including Cardinality, referential integrity, and that
the cardinality dimension distinguishes patients from records (paper
§V.B: "while the fact table would distinguish between records, the
cardinality dimension was necessary to distinguish between patients").
"""

from repro.discri.warehouse import build_discri_warehouse
from repro.olap.cube import Cube


def test_fig3_warehouse_build(benchmark, cohort, emit):
    result = benchmark(build_discri_warehouse, cohort)
    schema = result.warehouse.schema
    lines = [f"DiScRi warehouse (fact rows: {schema.fact.num_rows})"]
    for name, dimension in schema.dimensions.items():
        lines.append(f"  dimension {name}: {dimension.size} members")
    lines.append("ETL audit:")
    lines.extend(f"  {entry}" for entry in result.etl_result.audit)
    emit("fig3_discri_warehouse", "\n".join(lines))

    assert set(result.warehouse.dimension_names) == {
        "personal", "conditions", "bloods", "limbs",
        "exercise", "pressure", "ecg", "cardinality",
    }
    assert schema.check_integrity() == []
    assert schema.fact.num_rows == cohort.num_rows


def test_fig3_cardinality_distinguishes_patients(benchmark, built, cohort, emit):
    cube = Cube(built.warehouse)

    def counts():
        records = cube.grand_total()["records"]
        patients = cube.grand_total(
            {"patients": ("cardinality.patient_id", "nunique")}
        )["patients"]
        return records, patients

    records, patients = benchmark(counts)
    emit(
        "fig3_cardinality",
        f"fact records (attendances): {records}\n"
        f"distinct patients via cardinality dimension: {patients}\n"
        f"attendances per patient: {records / patients:.2f}",
    )
    assert records == cohort.num_rows
    assert patients == cohort.column("patient_id").n_unique()
    # the paper's scale: ~2500 attendances of ~900 patients
    assert 2.0 <= records / patients <= 3.6
