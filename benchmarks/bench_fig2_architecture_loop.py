"""Fig 2 — the DD-DGMS architecture exercised as one closed loop.

Runs learn → predict → optimise → acquire over a fresh DD-DGMS instance,
touching every Fig 2 component (operational store, warehouse, OLAP,
prediction, optimisation, feedback fold, knowledge base).  The bench times
one full cycle; assertions verify every phase produced its artefact and
the feedback dimension landed in the warehouse.
"""

from repro.dgms.phases import ClosedLoop
from repro.dgms.system import DDDGMS
from repro.discri.generator import DiScRiGenerator

_LOOP_PATIENTS = 250  # the cycle refits models; keep the timed unit moderate


def _run_cycle():
    source = DiScRiGenerator(n_patients=_LOOP_PATIENTS, seed=7).generate()
    system = DDDGMS(source)
    loop = ClosedLoop(system)
    outcomes = loop.run_cycle(budget=30_000)
    return system, outcomes


def test_fig2_closed_loop(benchmark, emit):
    system, outcomes = benchmark(_run_cycle)
    lines = [f"closed loop over {_LOOP_PATIENTS} patients"]
    lines.extend(f"  {outcome}" for outcome in outcomes)
    lines.append(
        "warehouse dimensions after acquire: "
        + ", ".join(system.warehouse.dimension_names)
    )
    lines.append(f"knowledge base: {len(system.knowledge_base)} findings")
    emit("fig2_architecture_loop", "\n".join(lines))

    assert [o.phase for o in outcomes] == ["learn", "predict", "optimize", "acquire"]
    assert outcomes[0].details["accuracy"] > 0.8
    assert "risk_stratum" in system.warehouse.dimension_names
    assert len(system.knowledge_base) >= 1
